"""Ablation of the Section 5 optimizations (discussed in Section 7.3).

The paper reports that disabling leaps blows the smallest benchmark up from
30 seconds / 1.7 GB to 42 minutes / 36 GB, and that it does not finish at all
without reachable-pair pruning.  These benchmarks reproduce the *shape* of that
result on a small speculative-loop instance: every configuration is verified to
still prove equivalence, and the recorded rows show how the number of template
pairs, relation conjuncts and solver queries grows as each optimization is
turned off.  The explicit-state baseline is included as the extreme point.
"""

import pytest

from repro.core.algorithm import CheckerConfig
from repro.core.engine import EquivalenceJob
from repro.core.naive import explicit_bisimulation_check
from repro.protocols import mpls
from repro.reporting import attach_run_statistics, structural_metrics

LABEL_BITS = 2  # small instance so the unpruned variants stay tractable


def _parsers():
    return (
        mpls.scaled_reference(LABEL_BITS),
        mpls.REFERENCE_START,
        mpls.scaled_vectorized(LABEL_BITS),
        mpls.VECTORIZED_START,
    )


# The query cache is pinned off so the ablation measures only the two paper
# optimizations: with the memo on, repeated queries would be absorbed and the
# growth in solver queries across variants — the point of this benchmark —
# would be distorted.
_CONFIGS = {
    "leaps+reach (paper default)": CheckerConfig(
        use_leaps=True, use_reachability=True, use_query_cache=False
    ),
    "no leaps": CheckerConfig(use_leaps=False, use_reachability=True, use_query_cache=False),
    "no reachability": CheckerConfig(
        use_leaps=True, use_reachability=False, use_query_cache=False
    ),
    "no leaps, no reachability": CheckerConfig(
        use_leaps=False, use_reachability=False, use_query_cache=False
    ),
}

# The incremental-session ablation: the same instance with the session on and
# off must agree on everything the algorithm observes — verdict and relation
# size — while the solving strategy underneath changes completely.
_INCREMENTAL_CONFIGS = {
    "incremental session": CheckerConfig(use_query_cache=False, use_incremental=True),
    "one-shot solving": CheckerConfig(use_query_cache=False, use_incremental=False),
}

# The AIG-pipeline ablation: simplifying AIG lowering (with the graph-level
# UNSAT short-circuit) versus the interning-only pipeline.  The lowering layer
# must be invisible to the algorithm above it.
_AIG_CONFIGS = {
    "aig pipeline": CheckerConfig(use_query_cache=False, use_aig=True),
    "no aig": CheckerConfig(use_query_cache=False, use_aig=False),
}


@pytest.mark.parametrize("variant", list(_CONFIGS))
def test_optimization_ablation(benchmark, record_case, engine, variant):
    left, left_start, right, right_start = _parsers()
    config = _CONFIGS[variant]

    def run():
        [result] = engine.run([
            EquivalenceJob(
                left, left_start, right, right_start,
                config=config, find_counterexamples=False, job_id=variant,
            )
        ])
        assert result.ok, result.error
        return result.value

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.proved
    metrics = structural_metrics(f"Speculative loop [{variant}]", left, right)
    attach_run_statistics(metrics, result.statistics, result.verdict)
    record_case(metrics)


def test_incremental_ablation_verdict_parity(benchmark, record_case):
    """Incremental on/off: identical verdicts and relation sizes, both recorded."""
    from repro import envconfig
    from repro.core.engine import EquivalenceEngine

    left, left_start, right, right_start = _parsers()
    # A local engine without the LEAPFROG_INCREMENTAL override: this benchmark
    # *is* the on-vs-off comparison, so the per-job configs must stand.
    engine = EquivalenceEngine(jobs=envconfig.jobs_from_env())

    def run():
        jobs = [
            EquivalenceJob(
                left, left_start, right, right_start,
                config=config, find_counterexamples=False, job_id=variant,
            )
            for variant, config in _INCREMENTAL_CONFIGS.items()
        ]
        results = engine.run(jobs)
        for result in results:
            assert result.ok, result.error
        return [result.value for result in results]

    incremental, one_shot = benchmark.pedantic(run, iterations=1, rounds=1)
    assert incremental.verdict is True and one_shot.verdict is True
    assert incremental.verdict == one_shot.verdict
    assert (incremental.statistics.relation_size
            == one_shot.statistics.relation_size)
    assert (incremental.statistics.reachable_pairs
            == one_shot.statistics.reachable_pairs)
    for variant, result in zip(_INCREMENTAL_CONFIGS, (incremental, one_shot)):
        metrics = structural_metrics(f"Speculative loop [{variant}]", left, right)
        attach_run_statistics(metrics, result.statistics, result.verdict)
        record_case(metrics)


def test_aig_ablation_verdict_parity(benchmark, record_case):
    """AIG on/off: identical verdicts, relation sizes and reachable pairs.

    A local engine without the LEAPFROG_AIG override, since this benchmark
    *is* the on-vs-off comparison.  Both rows report the pipeline counters
    (the off mode still lowers through the interning-only graph), but only
    the simplifying mode saves clauses and answers queries on the graph.
    """
    from repro import envconfig
    from repro.core.engine import EquivalenceEngine

    left, left_start, right, right_start = _parsers()
    engine = EquivalenceEngine(jobs=envconfig.jobs_from_env())

    def run():
        jobs = [
            EquivalenceJob(
                left, left_start, right, right_start,
                config=config, find_counterexamples=False, job_id=variant,
            )
            for variant, config in _AIG_CONFIGS.items()
        ]
        results = engine.run(jobs)
        for result in results:
            assert result.ok, result.error
        return [result.value for result in results]

    with_aig, without_aig = benchmark.pedantic(run, iterations=1, rounds=1)
    assert with_aig.verdict is True and without_aig.verdict is True
    assert with_aig.verdict == without_aig.verdict
    assert (with_aig.statistics.relation_size
            == without_aig.statistics.relation_size)
    assert (with_aig.statistics.reachable_pairs
            == without_aig.statistics.reachable_pairs)
    assert int(with_aig.statistics.entailment.get("aig_nodes", 0)) > 0
    assert int(with_aig.statistics.entailment.get("aig_clauses_saved", 0)) > 0
    assert int(without_aig.statistics.entailment.get("aig_shortcuts", 0)) == 0
    for variant, result in zip(_AIG_CONFIGS, (with_aig, without_aig)):
        metrics = structural_metrics(f"Speculative loop [{variant}]", left, right)
        attach_run_statistics(metrics, result.statistics, result.verdict)
        record_case(metrics)


def test_explicit_state_baseline(benchmark, record_case):
    """The fully concrete product exploration the paper argues against."""
    left, left_start, right, right_start = _parsers()

    def run():
        return explicit_bisimulation_check(left, left_start, right, right_start)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.equivalent
    metrics = structural_metrics("Speculative loop [explicit states]", left, right)
    metrics.extra["visited_configuration_pairs"] = result.visited_pairs
    record_case(metrics)
