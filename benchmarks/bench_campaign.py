"""Campaign throughput: labeled pairs checked per second, agreement-gated.

The campaign runner is the repo's scale surface — synthesized pairs streamed
through the engine in chunks, verdicts cross-checked against ground truth —
so its benchmark doubles as a correctness gate: a round only counts if every
verdict agreed with its label and nothing failed or timed out.  The headline
number is ``pairs_per_second`` off the campaign report (wall-clock lives on
the report object, deliberately outside its deterministic JSON payload).

``LEAPFROG_JOBS`` spreads each chunk over worker processes, ``LEAPFROG_SEED``
moves the campaign to a different region of the seed space.  The module-level
``_campaign_round`` workload is importable by history recorders
(``benchmarks/history/0009-campaign.json`` was measured through it).
"""

import time

from repro import envconfig
from repro.campaign import CampaignConfig, run_campaign

_SEED = envconfig.seed_from_env()
if _SEED is None:
    _SEED = 20220613
_PAIRS = 16


def _campaign_round(jobs: int = 1, shards: int = 1, pairs: int = _PAIRS):
    """One full campaign; returns ``(seconds, report)`` after gating."""
    config = CampaignConfig(pairs=pairs, shards=shards, seed=_SEED, jobs=jobs)
    started = time.perf_counter()
    report = run_campaign(config)
    elapsed = time.perf_counter() - started
    totals = report.totals
    assert totals["completed"] == pairs, totals
    assert totals["disagreements"] == 0, totals
    assert totals["failures"] == 0, totals
    assert totals["cross_stack"] == 0, totals
    return elapsed, report


def test_campaign_throughput(benchmark):
    """The headline number: campaign pairs per second, 100% agreement."""
    jobs = envconfig.jobs_from_env()
    _, report = benchmark.pedantic(
        _campaign_round, kwargs={"jobs": jobs}, iterations=1, rounds=1
    )
    assert report.pairs_per_second > 0


def test_campaign_sharded_overhead(benchmark):
    """Sharding is bookkeeping, not work: a 4-shard run checks the same
    pairs and must merge to the same deterministic totals."""
    _, report = benchmark.pedantic(
        _campaign_round, kwargs={"shards": 4}, iterations=1, rounds=1
    )
    single = run_campaign(CampaignConfig(pairs=_PAIRS, seed=_SEED))
    assert report.as_dict()["totals"] == single.as_dict()["totals"]


def test_campaign_synthesis_share(benchmark):
    """Generation alone (campaign envelopes: loops, lookahead, store
    guards) — the floor below which checking throughput cannot rise."""
    from repro.synth import campaign_config_for_size, synthesize_pair

    config = campaign_config_for_size("mini")

    def generate():
        return [
            synthesize_pair(
                _SEED + index,
                config=config,
                verdict="equivalent" if index % 2 == 0 else "not_equivalent",
            )
            for index in range(_PAIRS)
        ]

    pairs = benchmark.pedantic(generate, iterations=1, rounds=1)
    assert len(pairs) == _PAIRS
