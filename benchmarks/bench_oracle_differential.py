"""Differential concrete-oracle benchmark: fuzz every registered scenario.

Runs the oracle's cross-check over every scenario in the tagged registry —
the parser-gen deployment graphs (self-comparison plus compiled-hardware
translation) and the protocol-family pairs (reference vs. refactoring, plus
the deliberately broken variants, which must demonstrably diverge) — with a
fixed seed, and fails whenever a row contradicts its expected verdict: the
concrete interpreter is the ground truth the whole symbolic pipeline is
measured against, so a red run here means a real soundness bug (or a sampler
bug), never flakiness.

One benchmark additionally measures the oracle riding on a verification run
(`CheckerConfig.oracle_packets`), which is the configuration the CI smoke job
uses.  ``LEAPFROG_SEED`` overrides the seed, ``LEAPFROG_ORACLE`` the packet
budget.
"""

import pytest

from repro import envconfig
from repro.core.engine import CaseJob
from repro.oracle.suite import run_differential_suite
from repro.reporting import full_scale_requested
from repro.scenarios import filter_scenarios

_SEED = envconfig.seed_from_env()
if _SEED is None:
    _SEED = 20220613  # PLDI 2022; any fixed value works, it just must be fixed
_PACKETS = envconfig.oracle_packets_from_env() or 128

_MINI_SCENARIOS = [s.name for s in filter_scenarios(size="mini")]
_FULL_SCENARIOS = [s.name for s in filter_scenarios(size="full")]


@pytest.mark.parametrize("name", _MINI_SCENARIOS)
def test_oracle_mini_scenario(benchmark, name):
    [row] = benchmark.pedantic(
        run_differential_suite,
        kwargs=dict(names=[name], packets=_PACKETS, seed=_SEED),
        iterations=1, rounds=1,
    )
    assert row.ok, f"{name}: {row.divergences} divergences (seed {_SEED})"
    if row.kind == "graph":
        assert row.self_report.accepted_left > 0, "sampler never reached acceptance"


@pytest.mark.parametrize("name", _FULL_SCENARIOS)
def test_oracle_full_scenario(benchmark, name):
    """The full protocol stacks are cheap to fuzz even when they are too
    expensive to verify by default — concrete simulation is linear."""
    [row] = benchmark.pedantic(
        run_differential_suite,
        kwargs=dict(names=[name], packets=_PACKETS, seed=_SEED),
        iterations=1, rounds=1,
    )
    assert row.ok, f"{name}: {row.divergences} divergences (seed {_SEED})"


def test_oracle_riding_on_verification(benchmark, record_case, engine):
    """Cross-check a Table 2 verdict in the same run that produces it."""
    engine.oracle_packets = engine.oracle_packets or _PACKETS
    engine.oracle_seed = engine.oracle_seed if engine.oracle_seed is not None else _SEED
    full = full_scale_requested()

    def run():
        [result] = engine.run([CaseJob(case="Translation Validation", full=full)])
        assert result.ok, result.error
        return result.value

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.verdict is True
    statistics = outcome.metrics.extra
    assert statistics.get("divergences", 0) == 0
    record_case(outcome.metrics)
