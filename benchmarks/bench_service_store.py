"""Verdict-store replay vs fresh solve: the daemon's headline speedup.

The service's claim is that a store hit is served by *replaying* the stored
certificate (or witness), which is strictly cheaper than re-running the
proof search.  This benchmark runs a batch of mini scenario pairs cold
(fresh store: every request solves and stores) and then warm (same store
directory, fresh client: every request replays), asserts the warm pass is
answered entirely from the store with identical output, and holds the
replay speedup above a conservative floor.

``LEAPFROG_SEED`` has no effect here — the checks are deterministic — but
the batch goes through the same registry the daemon serves, so the numbers
track the real workload.
"""

import time

from repro.scenarios.registry import filter_scenarios
from repro.service.client import InProcessClient
from repro.service.core import ServiceConfig

#: Replay must beat re-solving by at least this factor over the batch.  The
#: measured ratio is ~5x on the pure-Python solver; 1.5x keeps the gate
#: meaningful without being flaky on noisy shared runners.
REPLAY_SPEEDUP_FLOOR = 1.5


def _mini_pairs():
    return [
        scenario for scenario in filter_scenarios(size="mini")
        if scenario.kind == "pair"
    ]


def _run_batch(store_dir: str):
    """One pass over every mini pair through one client; returns outcomes."""
    outcomes = []
    with InProcessClient(ServiceConfig(workers=0, store_dir=store_dir)) as client:
        for scenario in _mini_pairs():
            left, left_start, right, right_start = scenario.automata()
            outcomes.append(client.check(left, left_start, right, right_start))
    return outcomes


def test_store_replay_beats_fresh_solve(benchmark, tmp_path):
    store_dir = str(tmp_path / "store")
    pairs = _mini_pairs()
    assert pairs, "the scenario registry has no mini pairs to benchmark"

    cold_start = time.perf_counter()
    cold = _run_batch(store_dir)
    cold_elapsed = time.perf_counter() - cold_start

    warm = benchmark.pedantic(
        _run_batch, args=(store_dir,), iterations=1, rounds=1
    )
    warm_elapsed = sum(outcome.elapsed_seconds for outcome in warm)

    # Correctness gates first: the warm pass is 100% store hits and its
    # output is byte-identical to the cold pass.
    assert all(outcome.source == "solve" for outcome in cold
               if outcome.verdict is not None)
    definitive = [
        (before, after) for before, after in zip(cold, warm)
        if before.verdict is not None
    ]
    assert definitive, "every mini pair came back unknown; nothing was stored"
    assert all(after.source == "store" for _, after in definitive)
    assert all(str(before) == str(after) for before, after in definitive)

    # The headline number: replay time vs solve time over the same batch.
    solve_elapsed = sum(outcome.elapsed_seconds for outcome in cold)
    assert warm_elapsed > 0
    speedup = solve_elapsed / warm_elapsed
    assert speedup >= REPLAY_SPEEDUP_FLOOR, (
        f"store replay is only {speedup:.2f}x faster than solving "
        f"(floor {REPLAY_SPEEDUP_FLOOR}x); cold batch {cold_elapsed:.3f}s"
    )
