"""Solver-query statistics (Section 7.3, "SMT Solver Performance").

The paper reports that all queries were solved within 10 seconds and 99%
within 5 seconds.  This benchmark runs a representative verification, collects
the per-query timing distribution from the internal solver and checks the same
shape: the p99 and maximum query times are recorded alongside the run.  A
micro-benchmark of a single representative entailment query is also included.
"""

from repro.core.entailment import EntailmentChecker
from repro.core.equivalence import check_language_equivalence
from repro.logic.confrel import LEFT, RIGHT, CHdr
from repro.logic.simplify import mk_eq
from repro.protocols import mpls
from repro.reporting import attach_run_statistics, structural_metrics
from repro.smt.backend import InternalBackend


def test_query_time_distribution(benchmark, record_case):
    left, right = mpls.reference_parser(), mpls.vectorized_parser()
    backend = InternalBackend()

    def run():
        return check_language_equivalence(
            left, mpls.REFERENCE_START, right, mpls.VECTORIZED_START,
            backend=backend, find_counterexamples=False,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.proved
    stats = backend.statistics
    metrics = structural_metrics("Speculative loop [query stats]", left, right)
    attach_run_statistics(metrics, result.statistics, result.verdict)
    metrics.extra["query_p99_seconds"] = round(stats.percentile_time(0.99), 4)
    metrics.extra["query_max_seconds"] = round(stats.max_time, 4)
    record_case(metrics)
    # The paper's observation, scaled to this solver: no query should take
    # longer than a handful of seconds.
    assert stats.max_time < 10.0


def test_single_entailment_query(benchmark):
    """Micro-benchmark: one 64-bit store-equality entailment check."""
    checker = EntailmentChecker()
    premise = mk_eq(CHdr(LEFT, "udp", 64), CHdr(RIGHT, "udp", 64))
    goal = mk_eq(CHdr(RIGHT, "udp", 64), CHdr(LEFT, "udp", 64))

    outcome = benchmark(lambda: checker.check([premise], goal))
    assert outcome.entailed
