"""Solver-query statistics (Section 7.3, "SMT Solver Performance").

The paper reports that all queries were solved within 10 seconds and 99%
within 5 seconds.  This benchmark runs a representative verification, collects
the per-query timing distribution from the internal solver and checks the same
shape: the p99 and maximum query times are recorded alongside the run.  A
micro-benchmark of a single representative entailment query is also included.
"""

import time

from repro import envconfig
from repro.core.algorithm import CheckerConfig
from repro.core.entailment import EntailmentChecker
from repro.core.equivalence import check_language_equivalence
from repro.logic.confrel import LEFT, RIGHT, CHdr, CSlice
from repro.logic.folbv import BEq, BNot, BVVar, b_and
from repro.logic.simplify import mk_eq
from repro.protocols import mpls
from repro.reporting import attach_run_statistics, structural_metrics
from repro.smt.backend import InternalBackend, PortfolioBackend
from repro.smt.bvsolver import InternalBVSolver
from repro.smt.cache import CachingBackend
from repro.smt.clauses import ClauseChannel

# LEAPFROG_INCREMENTAL=0/1 pins the incremental solver session for the
# distribution and micro benchmarks, and LEAPFROG_PORTFOLIO=0/1 pins the
# backend the distribution benchmark routes queries through, so CI can
# record both timing profiles as separate artifacts.  The explicit
# on-vs-off comparisons below always measure both sides regardless of the
# environment.
_INCREMENTAL = envconfig.incremental_from_env()
_PORTFOLIO = envconfig.portfolio_from_env()
_CONFIG = CheckerConfig(
    use_incremental=True if _INCREMENTAL is None else _INCREMENTAL,
    use_query_cache=False,
)


def _distribution_backend():
    return PortfolioBackend() if _PORTFOLIO else InternalBackend()


def test_query_time_distribution(benchmark, record_case):
    left, right = mpls.reference_parser(), mpls.vectorized_parser()
    backend = _distribution_backend()

    def run():
        return check_language_equivalence(
            left, mpls.REFERENCE_START, right, mpls.VECTORIZED_START,
            backend=backend, config=_CONFIG, find_counterexamples=False,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.proved
    stats = backend.statistics
    metrics = structural_metrics("Speculative loop [query stats]", left, right)
    attach_run_statistics(metrics, result.statistics, result.verdict)
    metrics.extra["query_p99_seconds"] = round(stats.percentile_time(0.99), 4)
    metrics.extra["query_max_seconds"] = round(stats.max_time, 4)
    record_case(metrics)
    # The paper's observation, scaled to this solver: no query should take
    # longer than a handful of seconds.
    assert stats.max_time < 10.0


def test_query_cache_speedup(benchmark, record_case):
    """The fingerprint cache makes a repeated verification measurably faster.

    The same speculative-loop equivalence is proved three times: once against
    a bare internal backend (the uncached baseline), once against a cold
    caching backend (populating it), and once — the benchmarked run — against
    the now-warm cache.  The warm run answers every fast-path query from the
    memo, so it reaches the solver strictly less often than the baseline and
    reports a positive hit rate; wall-clock times for both are recorded in
    the metrics row.
    """
    left, right = mpls.reference_parser(), mpls.vectorized_parser()

    def check(backend):
        return check_language_equivalence(
            left, mpls.REFERENCE_START, right, mpls.VECTORIZED_START,
            backend=backend, find_counterexamples=False,
        )

    start = time.perf_counter()
    uncached_result = check(InternalBackend())
    uncached_seconds = time.perf_counter() - start
    assert uncached_result.proved

    cached_backend = CachingBackend(InternalBackend())
    assert check(cached_backend).proved  # cold run populates the cache
    solves_before_warm = cached_backend.statistics.queries

    result = benchmark.pedantic(lambda: check(cached_backend), iterations=1, rounds=1)
    warm_seconds = result.statistics.runtime_seconds
    assert result.proved

    # The checker's statistics delta the shared backend's counters, so this
    # is the warm run's own hit rate (not the cold+warm cumulative one).
    warm_cache = result.statistics.cache
    assert warm_cache["hits"] > 0, "the warm run should answer queries from the cache"
    assert warm_cache["hit_rate"] > 0
    # Deterministic proxy for the speedup: the warm run reaches the solver
    # strictly less often than the uncached baseline (the backend's counter
    # is cumulative across the cold and warm runs, hence the delta).  The
    # wall-clock times are recorded in the metrics row rather than asserted —
    # a one-shot timing comparison is a flake risk on a loaded CI runner.
    warm_solver_queries = cached_backend.statistics.queries - solves_before_warm
    assert warm_solver_queries < uncached_result.statistics.solver["queries"]

    metrics = structural_metrics("Speculative loop [warm query cache]", left, right)
    attach_run_statistics(metrics, result.statistics, result.verdict)
    metrics.extra["uncached_seconds"] = round(uncached_seconds, 4)
    metrics.extra["warm_seconds"] = round(warm_seconds, 4)
    record_case(metrics)


def test_single_entailment_query(benchmark):
    """Micro-benchmark: one 64-bit store-equality entailment check."""
    checker = EntailmentChecker(
        use_incremental=True if _INCREMENTAL is None else _INCREMENTAL
    )
    premise = mk_eq(CHdr(LEFT, "udp", 64), CHdr(RIGHT, "udp", 64))
    goal = mk_eq(CHdr(RIGHT, "udp", 64), CHdr(LEFT, "udp", 64))

    outcome = benchmark(lambda: checker.check([premise], goal))
    assert outcome.entailed


# ---------------------------------------------------------------------------
# Incremental session: repeated-premise entailment workload
# ---------------------------------------------------------------------------

_WIDTH = 128
_SLICE = 8


def _repeated_premise_workload(use_incremental):
    """The inner-loop query pattern of Algorithm 1, distilled.

    A relation of slice equalities over a pair of 128-bit headers grows one
    conjunct at a time; every step checks a prefix goal before and after the
    extension (the skip/extend pattern), and a final sweep re-proves every
    prefix against the full relation (the done step).  Premises only ever
    accumulate, which is exactly the monotone shape the incremental session
    exploits: with the session off, every query re-lowers and re-bit-blasts
    the whole conjunction from scratch.
    """
    checker = EntailmentChecker(InternalBackend(), use_incremental=use_incremental)
    verdicts = []
    premises = []
    start = time.perf_counter()
    for i in range(_WIDTH // _SLICE):
        lo, hi = i * _SLICE, (i + 1) * _SLICE - 1
        goal = mk_eq(CSlice(CHdr(RIGHT, "h", _WIDTH), 0, hi),
                     CSlice(CHdr(LEFT, "h", _WIDTH), 0, hi))
        verdicts.append(bool(checker.check(premises, goal)))
        premises.append(mk_eq(CSlice(CHdr(LEFT, "h", _WIDTH), lo, hi),
                              CSlice(CHdr(RIGHT, "h", _WIDTH), lo, hi)))
        verdicts.append(bool(checker.check(premises, goal)))
    for i in range(_WIDTH // _SLICE):
        hi = (i + 1) * _SLICE - 1
        goal = mk_eq(CSlice(CHdr(LEFT, "h", _WIDTH), 0, hi),
                     CSlice(CHdr(RIGHT, "h", _WIDTH), 0, hi))
        verdicts.append(bool(checker.check(premises, goal)))
    return time.perf_counter() - start, verdicts, checker


def test_incremental_session_speedup(benchmark, record_case):
    """The incremental session is ≥1.5× faster on repeated-premise queries.

    Both sides run cold — no query cache, fresh backends — so the comparison
    isolates the solving layer itself: one live CNF with assumption-based
    queries versus a fresh lowering + bit-blast + CDCL run per query.  The
    verdict sequences must agree exactly.
    """
    # Warm-up outside the timed region (imports, first-touch allocations).
    _repeated_premise_workload(True)
    _repeated_premise_workload(False)

    baseline_seconds, baseline_verdicts, _ = min(
        (_repeated_premise_workload(False) for _ in range(3)),
        key=lambda run: run[0],
    )
    incremental_runs = [_repeated_premise_workload(True) for _ in range(2)]
    incremental_runs.append(
        benchmark.pedantic(lambda: _repeated_premise_workload(True),
                           iterations=1, rounds=1)
    )
    incremental_seconds, incremental_verdicts, checker = min(
        incremental_runs, key=lambda run: run[0]
    )

    assert incremental_verdicts == baseline_verdicts
    speedup = baseline_seconds / incremental_seconds
    metrics = structural_metrics(
        "Repeated-premise entailment [incremental session]",
        mpls.reference_parser(), mpls.vectorized_parser(),
    )
    metrics.extra["baseline_seconds"] = round(baseline_seconds, 4)
    metrics.extra["incremental_seconds"] = round(incremental_seconds, 4)
    metrics.extra["speedup"] = round(speedup, 2)
    metrics.extra["session_clauses"] = checker._session.num_clauses
    record_case(metrics)
    assert speedup >= 1.5, (
        f"incremental session speedup {speedup:.2f}x below the 1.5x floor "
        f"(baseline {baseline_seconds:.3f}s, incremental {incremental_seconds:.3f}s)"
    )


# ---------------------------------------------------------------------------
# AIG lowering pipeline: entailed-sweep workload
# ---------------------------------------------------------------------------


def _entailed_sweep_workload(use_aig, sweeps=4):
    """Algorithm 1's dominant query profile, distilled: entailed checks.

    Most solver queries in a successful verification are *entailed* ones —
    the skip checks that prune already-covered template pairs and the final
    done-step sweep.  This workload pushes all slice-equality premises over a
    pair of 128-bit headers, then repeatedly re-proves every prefix goal
    against the full relation (goals swap the LEFT/RIGHT operand order so the
    checker's syntactic premise==goal test never fires).  With the AIG
    pipeline on, each such query collapses to FALSE on the graph — constant
    propagation and complement folding answer it with zero CDCL work; with it
    off, every query is a fresh assumption-based CDCL solve.
    """
    checker = EntailmentChecker(
        InternalBackend(use_aig=use_aig), use_incremental=True
    )
    verdicts = []
    premises = []
    start = time.perf_counter()
    for i in range(_WIDTH // _SLICE):
        lo, hi = i * _SLICE, (i + 1) * _SLICE - 1
        premises.append(mk_eq(CSlice(CHdr(LEFT, "h", _WIDTH), lo, hi),
                              CSlice(CHdr(RIGHT, "h", _WIDTH), lo, hi)))
        goal = mk_eq(CSlice(CHdr(RIGHT, "h", _WIDTH), 0, hi),
                     CSlice(CHdr(LEFT, "h", _WIDTH), 0, hi))
        verdicts.append(bool(checker.check(premises, goal)))
    for _ in range(sweeps):
        for i in range(_WIDTH // _SLICE):
            hi = (i + 1) * _SLICE - 1
            goal = mk_eq(CSlice(CHdr(RIGHT, "h", _WIDTH), 0, hi),
                         CSlice(CHdr(LEFT, "h", _WIDTH), 0, hi))
            verdicts.append(bool(checker.check(premises, goal)))
    return time.perf_counter() - start, verdicts, checker


def test_aig_speedup(benchmark, record_case):
    """The AIG pipeline is ≥1.5× faster on entailed-query workloads.

    Both sides run cold — fresh backends, no query cache, incremental
    sessions on — so the comparison isolates the lowering layer: simplifying
    AIG construction with the graph-level UNSAT short-circuit versus the
    interning-only pipeline that hands every query to CDCL.  The verdict
    sequences must agree exactly, and every query in the workload must be
    answered on the graph (the shortcut counter covers the whole run).
    """
    # Warm-up outside the timed region (imports, first-touch allocations).
    _entailed_sweep_workload(True)
    _entailed_sweep_workload(False)

    baseline_seconds, baseline_verdicts, _ = min(
        (_entailed_sweep_workload(False) for _ in range(3)),
        key=lambda run: run[0],
    )
    aig_runs = [_entailed_sweep_workload(True) for _ in range(2)]
    aig_runs.append(
        benchmark.pedantic(lambda: _entailed_sweep_workload(True),
                           iterations=1, rounds=1)
    )
    aig_seconds, aig_verdicts, checker = min(aig_runs, key=lambda run: run[0])

    assert aig_verdicts == baseline_verdicts
    assert all(aig_verdicts), "every sweep query should be entailed"
    stats = checker.statistics
    assert stats.aig_shortcuts == len(aig_verdicts), (
        "every entailed query should be answered by the graph short-circuit"
    )
    assert stats.aig_clauses_saved > 0

    speedup = baseline_seconds / aig_seconds
    metrics = structural_metrics(
        "Entailed-sweep entailment [AIG pipeline]",
        mpls.reference_parser(), mpls.vectorized_parser(),
    )
    metrics.extra["baseline_seconds"] = round(baseline_seconds, 4)
    metrics.extra["aig_seconds"] = round(aig_seconds, 4)
    metrics.extra["speedup"] = round(speedup, 2)
    metrics.extra["aig_nodes"] = stats.aig_nodes
    metrics.extra["aig_saved"] = stats.aig_clauses_saved
    metrics.extra["aig_shortcuts"] = stats.aig_shortcuts
    record_case(metrics)
    assert speedup >= 1.5, (
        f"AIG pipeline speedup {speedup:.2f}x below the 1.5x floor "
        f"(baseline {baseline_seconds:.3f}s, AIG {aig_seconds:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Cross-worker clause sharing: cold-cache churn workload
# ---------------------------------------------------------------------------

_CHURN_WIDTH = 32
_CHURN_CHAIN = 5
_CHURN_QUERIES = 12
_CHURN_WORKERS = 4


def _churn_queries():
    """Distinct equality-chain queries: UNSAT, but not AIG-collapsible.

    ``v0 = v1, ..., v3 = v4 |= v0 = v4`` needs transitivity, which the graph
    cannot see, so CDCL earns every refutation with real conflicts — the
    exact by-product clause sharing exists to amortize.  Each query uses its
    own variables so the query cache (off here anyway) could never help.
    """
    queries = []
    for q in range(_CHURN_QUERIES):
        chain = [BVVar(f"q{q}_v{i}", _CHURN_WIDTH) for i in range(_CHURN_CHAIN)]
        premises = [BEq(chain[i], chain[i + 1]) for i in range(_CHURN_CHAIN - 1)]
        queries.append((premises, BNot(BEq(chain[0], chain[-1]))))
    return queries


def _churn_worker(queries, share_dir=None):
    """One cold worker: a fresh solver session per query, no query cache."""
    start = time.perf_counter()
    verdicts = []
    conflicts = exported = imported = 0
    for premises, goal in queries:
        channel = ClauseChannel(share_dir) if share_dir else None
        session = InternalBVSolver(clause_channel=channel).incremental_session()
        assumptions = [session.activation(p) for p in premises]
        combined = b_and(list(premises) + [goal])
        verdicts.append(
            session.check(assumptions, goal=goal, validate_formula=combined).status
        )
        conflicts += session._solver.stats.conflicts
        exported += session.statistics.clauses_exported
        imported += session.statistics.clauses_imported
        if channel is not None:
            channel.close()
    elapsed = time.perf_counter() - start
    return elapsed, verdicts, conflicts, exported, imported


def _churn_round(share_dir):
    """All workers run the same cold query stream, sequentially.

    Sequential execution deliberately removes scheduling noise: the measured
    difference is pure solving work, exactly what a process pool would save
    per worker.  With a shared directory the first worker pays the full CDCL
    cost and publishes its refutations; every later worker imports them and
    decides nothing it has to retract.
    """
    queries = _churn_queries()
    runs = [_churn_worker(queries, share_dir) for _ in range(_CHURN_WORKERS)]
    total = sum(run[0] for run in runs)
    verdicts = [run[1] for run in runs]
    return total, verdicts, runs


def test_clause_sharing_speedup(benchmark, record_case, tmp_path_factory):
    """Clause sharing makes a multi-worker cold-cache churn run ≥1.2× faster.

    Baseline: every worker refutes every equality chain from scratch.
    Shared: workers point at one clause channel; the exporter's learned
    clauses carry the whole refutation, so importers finish with zero
    conflicts.  Verdicts must agree exactly, and the import/export counters
    must show the channel actually carried the clauses.
    """
    # Warm-up outside the timed region (imports, first-touch allocations).
    _churn_worker(_churn_queries())

    baseline_seconds, baseline_verdicts, _ = min(
        (_churn_round(None) for _ in range(3)), key=lambda run: run[0]
    )
    shared_runs = [
        _churn_round(str(tmp_path_factory.mktemp("clauses"))) for _ in range(2)
    ]
    shared_runs.append(
        benchmark.pedantic(
            lambda: _churn_round(str(tmp_path_factory.mktemp("clauses"))),
            iterations=1, rounds=1,
        )
    )
    shared_seconds, shared_verdicts, workers = min(
        shared_runs, key=lambda run: run[0]
    )

    assert shared_verdicts == baseline_verdicts
    exporter, importers = workers[0], workers[1:]
    assert exporter[3] > 0, "the first worker should publish learned clauses"
    for run in importers:
        assert run[4] > 0, "every later worker should import clauses"
        assert run[2] == 0, "imported clauses should pre-empt every conflict"

    speedup = baseline_seconds / shared_seconds
    metrics = structural_metrics(
        "Equality-chain churn [clause sharing]",
        mpls.reference_parser(), mpls.vectorized_parser(),
    )
    metrics.extra["baseline_seconds"] = round(baseline_seconds, 4)
    metrics.extra["shared_seconds"] = round(shared_seconds, 4)
    metrics.extra["speedup"] = round(speedup, 2)
    metrics.extra["clauses_exported"] = exporter[3]
    metrics.extra["clauses_imported"] = sum(run[4] for run in importers)
    record_case(metrics)
    assert speedup >= 1.2, (
        f"clause-sharing speedup {speedup:.2f}x below the 1.2x floor "
        f"(baseline {baseline_seconds:.3f}s, shared {shared_seconds:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Learned-clause database management: long incremental churn
# ---------------------------------------------------------------------------

_DB_VARS = 150
_DB_CLAUSES = 620
_DB_ROUNDS = 80
_DB_ASSUMPTIONS = 8
_DB_CAP = 500
_DB_SEED = 7


def _clause_db_problem(seed=_DB_SEED):
    """A fixed random 3-CNF near the satisfiability threshold.

    Every assumption round below hits the same variable pool, so learned
    clauses from earlier rounds stay on hot watch lists — without reduction
    the solver drags an ever-growing database through every propagation.
    """
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(_DB_CLAUSES):
        chosen = rng.sample(range(1, _DB_VARS + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    return clauses


def _clause_db_churn(clause_db_max, rounds=_DB_ROUNDS, seed=_DB_SEED):
    """One long incremental session: ``rounds`` assumption-based solves.

    Returns (seconds, verdicts, stats, live learned clauses at the end).
    """
    import random

    from repro.smt.sat.solver import CdclSolver

    solver = CdclSolver(clause_db_max=clause_db_max)
    for clause in _clause_db_problem(seed):
        solver.add_clause(clause)
    rng = random.Random(seed + 1)
    start = time.perf_counter()
    verdicts = []
    for _ in range(rounds):
        assumptions = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, _DB_VARS + 1), _DB_ASSUMPTIONS)
        ]
        sat, _ = solver.solve(assumptions=assumptions)
        verdicts.append(sat)
    return time.perf_counter() - start, verdicts, solver.stats, solver.learned_live


def test_clause_db_reduction_speedup(benchmark, record_case):
    """DB reduction is ≥1.5× faster on long incremental churn, same verdicts.

    Both sides run the identical deterministic assumption stream through one
    incremental CDCL solver; the capped side periodically deletes high-LBD
    inactive learned clauses, the uncapped side keeps every one forever.  The
    verdict sequences must agree exactly, the capped database must stay
    bounded, and the uncapped one must actually have grown past the cap
    (otherwise the comparison measured nothing).
    """
    # Warm-up outside the timed region (imports, first-touch allocations).
    _clause_db_churn(_DB_CAP, rounds=4)

    unbounded_seconds, unbounded_verdicts, unbounded_stats, unbounded_live = min(
        (_clause_db_churn(0) for _ in range(2)), key=lambda run: run[0]
    )
    capped_runs = [_clause_db_churn(_DB_CAP)]
    capped_runs.append(
        benchmark.pedantic(lambda: _clause_db_churn(_DB_CAP),
                           iterations=1, rounds=1)
    )
    capped_seconds, capped_verdicts, capped_stats, capped_live = min(
        capped_runs, key=lambda run: run[0]
    )

    assert capped_verdicts == unbounded_verdicts
    assert capped_stats.db_reductions > 0
    assert capped_stats.clauses_deleted > 0
    assert capped_live <= _DB_CAP, (
        f"reduction left {capped_live} live learned clauses above the "
        f"{_DB_CAP}-clause cap"
    )
    assert unbounded_live > _DB_CAP, (
        "the unbounded run never outgrew the cap; the workload is too easy "
        "to measure reduction"
    )
    assert unbounded_stats.db_reductions == 0

    speedup = unbounded_seconds / capped_seconds
    metrics = structural_metrics(
        "Assumption churn [clause-DB reduction]",
        mpls.reference_parser(), mpls.vectorized_parser(),
    )
    metrics.extra["unbounded_seconds"] = round(unbounded_seconds, 4)
    metrics.extra["capped_seconds"] = round(capped_seconds, 4)
    metrics.extra["speedup"] = round(speedup, 2)
    metrics.extra["clauses_deleted"] = capped_stats.clauses_deleted
    metrics.extra["db_reductions"] = capped_stats.db_reductions
    metrics.extra["avg_lbd"] = round(capped_stats.avg_lbd, 1)
    record_case(metrics)
    assert speedup >= 1.5, (
        f"clause-DB reduction speedup {speedup:.2f}x below the 1.5x floor "
        f"(unbounded {unbounded_seconds:.3f}s, capped {capped_seconds:.3f}s)"
    )


def test_clause_db_verdict_parity():
    """The clause-DB cap never changes a verdict or the bisimulation.

    Every registry mini scenario is checked twice — reduction at the solver
    default and reduction off (``clause_db_max=0``) — and the verdicts and
    relation sizes must match: deleting learned clauses only forgets lemmas,
    it can never change what is derivable.
    """
    from repro.core.equivalence import check_language_equivalence
    from repro.scenarios import get, mini_names

    for name in mini_names():
        left, left_start, right, right_start = get(name).automata()

        def check(cap):
            return check_language_equivalence(
                left, left_start, right, right_start,
                config=CheckerConfig(track_memory=False, clause_db_max=cap),
                find_counterexamples=False,
            )

        managed = check(None)   # the solver default: reduction on
        unbounded = check(0)    # keep every learned clause forever
        assert managed.verdict == unbounded.verdict, (
            f"{name}: clause-DB reduction changed the verdict "
            f"({managed.verdict} vs {unbounded.verdict})"
        )
        assert (managed.statistics.relation_size
                == unbounded.statistics.relation_size), (
            f"{name}: clause-DB reduction changed the bisimulation size"
        )


# ---------------------------------------------------------------------------
# Portfolio mode: on-vs-off parity on a full verification
# ---------------------------------------------------------------------------


def test_portfolio_on_off_parity(benchmark, record_case):
    """Portfolio mode never changes a verdict and accounts for every query.

    The speculative-loop equivalence is proved twice — once against a plain
    internal backend, once against the portfolio race (internal CDCL plus
    whatever external solvers are on PATH; in a bare container the race
    degenerates to the internal lane, which still exercises the full
    worker/cancellation machinery).  The verdicts must agree and the lane
    win counters must cover every query the portfolio answered.
    """
    left, right = mpls.reference_parser(), mpls.vectorized_parser()

    def check(backend):
        return check_language_equivalence(
            left, mpls.REFERENCE_START, right, mpls.VECTORIZED_START,
            backend=backend, config=_CONFIG, find_counterexamples=False,
        )

    start = time.perf_counter()
    plain_result = check(InternalBackend())
    plain_seconds = time.perf_counter() - start

    portfolio = PortfolioBackend()
    result = benchmark.pedantic(lambda: check(portfolio), iterations=1, rounds=1)
    portfolio_seconds = result.statistics.runtime_seconds

    assert result.verdict == plain_result.verdict
    assert result.proved
    wins = sum(counters["wins"] for counters in portfolio.lane_counters.values())
    assert wins == portfolio.statistics.queries, (
        "every portfolio query should be accounted to a winning lane"
    )

    metrics = structural_metrics("Speculative loop [portfolio race]", left, right)
    attach_run_statistics(metrics, result.statistics, result.verdict)
    metrics.extra["plain_seconds"] = round(plain_seconds, 4)
    metrics.extra["portfolio_seconds"] = round(portfolio_seconds, 4)
    metrics.extra["lanes"] = " ".join(
        f"{lane}:{counters['wins']}"
        for lane, counters in sorted(portfolio.lane_counters.items())
    )
    record_case(metrics)
