"""Solver-query statistics (Section 7.3, "SMT Solver Performance").

The paper reports that all queries were solved within 10 seconds and 99%
within 5 seconds.  This benchmark runs a representative verification, collects
the per-query timing distribution from the internal solver and checks the same
shape: the p99 and maximum query times are recorded alongside the run.  A
micro-benchmark of a single representative entailment query is also included.
"""

import time

from repro import envconfig
from repro.core.algorithm import CheckerConfig
from repro.core.entailment import EntailmentChecker
from repro.core.equivalence import check_language_equivalence
from repro.logic.confrel import LEFT, RIGHT, CHdr, CSlice
from repro.logic.simplify import mk_eq
from repro.protocols import mpls
from repro.reporting import attach_run_statistics, structural_metrics
from repro.smt.backend import InternalBackend
from repro.smt.cache import CachingBackend

# LEAPFROG_INCREMENTAL=0/1 pins the incremental solver session for the
# distribution and micro benchmarks, so CI can record both timing profiles
# as separate artifacts.  The explicit on-vs-off comparison below always
# measures both sides regardless of the environment.
_INCREMENTAL = envconfig.incremental_from_env()
_CONFIG = CheckerConfig(
    use_incremental=True if _INCREMENTAL is None else _INCREMENTAL,
    use_query_cache=False,
)


def test_query_time_distribution(benchmark, record_case):
    left, right = mpls.reference_parser(), mpls.vectorized_parser()
    backend = InternalBackend()

    def run():
        return check_language_equivalence(
            left, mpls.REFERENCE_START, right, mpls.VECTORIZED_START,
            backend=backend, config=_CONFIG, find_counterexamples=False,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.proved
    stats = backend.statistics
    metrics = structural_metrics("Speculative loop [query stats]", left, right)
    attach_run_statistics(metrics, result.statistics, result.verdict)
    metrics.extra["query_p99_seconds"] = round(stats.percentile_time(0.99), 4)
    metrics.extra["query_max_seconds"] = round(stats.max_time, 4)
    record_case(metrics)
    # The paper's observation, scaled to this solver: no query should take
    # longer than a handful of seconds.
    assert stats.max_time < 10.0


def test_query_cache_speedup(benchmark, record_case):
    """The fingerprint cache makes a repeated verification measurably faster.

    The same speculative-loop equivalence is proved three times: once against
    a bare internal backend (the uncached baseline), once against a cold
    caching backend (populating it), and once — the benchmarked run — against
    the now-warm cache.  The warm run answers every fast-path query from the
    memo, so it reaches the solver strictly less often than the baseline and
    reports a positive hit rate; wall-clock times for both are recorded in
    the metrics row.
    """
    left, right = mpls.reference_parser(), mpls.vectorized_parser()

    def check(backend):
        return check_language_equivalence(
            left, mpls.REFERENCE_START, right, mpls.VECTORIZED_START,
            backend=backend, find_counterexamples=False,
        )

    start = time.perf_counter()
    uncached_result = check(InternalBackend())
    uncached_seconds = time.perf_counter() - start
    assert uncached_result.proved

    cached_backend = CachingBackend(InternalBackend())
    assert check(cached_backend).proved  # cold run populates the cache
    solves_before_warm = cached_backend.statistics.queries

    result = benchmark.pedantic(lambda: check(cached_backend), iterations=1, rounds=1)
    warm_seconds = result.statistics.runtime_seconds
    assert result.proved

    # The checker's statistics delta the shared backend's counters, so this
    # is the warm run's own hit rate (not the cold+warm cumulative one).
    warm_cache = result.statistics.cache
    assert warm_cache["hits"] > 0, "the warm run should answer queries from the cache"
    assert warm_cache["hit_rate"] > 0
    # Deterministic proxy for the speedup: the warm run reaches the solver
    # strictly less often than the uncached baseline (the backend's counter
    # is cumulative across the cold and warm runs, hence the delta).  The
    # wall-clock times are recorded in the metrics row rather than asserted —
    # a one-shot timing comparison is a flake risk on a loaded CI runner.
    warm_solver_queries = cached_backend.statistics.queries - solves_before_warm
    assert warm_solver_queries < uncached_result.statistics.solver["queries"]

    metrics = structural_metrics("Speculative loop [warm query cache]", left, right)
    attach_run_statistics(metrics, result.statistics, result.verdict)
    metrics.extra["uncached_seconds"] = round(uncached_seconds, 4)
    metrics.extra["warm_seconds"] = round(warm_seconds, 4)
    record_case(metrics)


def test_single_entailment_query(benchmark):
    """Micro-benchmark: one 64-bit store-equality entailment check."""
    checker = EntailmentChecker(
        use_incremental=True if _INCREMENTAL is None else _INCREMENTAL
    )
    premise = mk_eq(CHdr(LEFT, "udp", 64), CHdr(RIGHT, "udp", 64))
    goal = mk_eq(CHdr(RIGHT, "udp", 64), CHdr(LEFT, "udp", 64))

    outcome = benchmark(lambda: checker.check([premise], goal))
    assert outcome.entailed


# ---------------------------------------------------------------------------
# Incremental session: repeated-premise entailment workload
# ---------------------------------------------------------------------------

_WIDTH = 128
_SLICE = 8


def _repeated_premise_workload(use_incremental):
    """The inner-loop query pattern of Algorithm 1, distilled.

    A relation of slice equalities over a pair of 128-bit headers grows one
    conjunct at a time; every step checks a prefix goal before and after the
    extension (the skip/extend pattern), and a final sweep re-proves every
    prefix against the full relation (the done step).  Premises only ever
    accumulate, which is exactly the monotone shape the incremental session
    exploits: with the session off, every query re-lowers and re-bit-blasts
    the whole conjunction from scratch.
    """
    checker = EntailmentChecker(InternalBackend(), use_incremental=use_incremental)
    verdicts = []
    premises = []
    start = time.perf_counter()
    for i in range(_WIDTH // _SLICE):
        lo, hi = i * _SLICE, (i + 1) * _SLICE - 1
        goal = mk_eq(CSlice(CHdr(RIGHT, "h", _WIDTH), 0, hi),
                     CSlice(CHdr(LEFT, "h", _WIDTH), 0, hi))
        verdicts.append(bool(checker.check(premises, goal)))
        premises.append(mk_eq(CSlice(CHdr(LEFT, "h", _WIDTH), lo, hi),
                              CSlice(CHdr(RIGHT, "h", _WIDTH), lo, hi)))
        verdicts.append(bool(checker.check(premises, goal)))
    for i in range(_WIDTH // _SLICE):
        hi = (i + 1) * _SLICE - 1
        goal = mk_eq(CSlice(CHdr(LEFT, "h", _WIDTH), 0, hi),
                     CSlice(CHdr(RIGHT, "h", _WIDTH), 0, hi))
        verdicts.append(bool(checker.check(premises, goal)))
    return time.perf_counter() - start, verdicts, checker


def test_incremental_session_speedup(benchmark, record_case):
    """The incremental session is ≥1.5× faster on repeated-premise queries.

    Both sides run cold — no query cache, fresh backends — so the comparison
    isolates the solving layer itself: one live CNF with assumption-based
    queries versus a fresh lowering + bit-blast + CDCL run per query.  The
    verdict sequences must agree exactly.
    """
    # Warm-up outside the timed region (imports, first-touch allocations).
    _repeated_premise_workload(True)
    _repeated_premise_workload(False)

    baseline_seconds, baseline_verdicts, _ = min(
        (_repeated_premise_workload(False) for _ in range(3)),
        key=lambda run: run[0],
    )
    incremental_runs = [_repeated_premise_workload(True) for _ in range(2)]
    incremental_runs.append(
        benchmark.pedantic(lambda: _repeated_premise_workload(True),
                           iterations=1, rounds=1)
    )
    incremental_seconds, incremental_verdicts, checker = min(
        incremental_runs, key=lambda run: run[0]
    )

    assert incremental_verdicts == baseline_verdicts
    speedup = baseline_seconds / incremental_seconds
    metrics = structural_metrics(
        "Repeated-premise entailment [incremental session]",
        mpls.reference_parser(), mpls.vectorized_parser(),
    )
    metrics.extra["baseline_seconds"] = round(baseline_seconds, 4)
    metrics.extra["incremental_seconds"] = round(incremental_seconds, 4)
    metrics.extra["speedup"] = round(speedup, 2)
    metrics.extra["session_clauses"] = checker._session.num_clauses
    record_case(metrics)
    assert speedup >= 1.5, (
        f"incremental session speedup {speedup:.2f}x below the 1.5x floor "
        f"(baseline {baseline_seconds:.3f}s, incremental {incremental_seconds:.3f}s)"
    )


# ---------------------------------------------------------------------------
# AIG lowering pipeline: entailed-sweep workload
# ---------------------------------------------------------------------------


def _entailed_sweep_workload(use_aig, sweeps=4):
    """Algorithm 1's dominant query profile, distilled: entailed checks.

    Most solver queries in a successful verification are *entailed* ones —
    the skip checks that prune already-covered template pairs and the final
    done-step sweep.  This workload pushes all slice-equality premises over a
    pair of 128-bit headers, then repeatedly re-proves every prefix goal
    against the full relation (goals swap the LEFT/RIGHT operand order so the
    checker's syntactic premise==goal test never fires).  With the AIG
    pipeline on, each such query collapses to FALSE on the graph — constant
    propagation and complement folding answer it with zero CDCL work; with it
    off, every query is a fresh assumption-based CDCL solve.
    """
    checker = EntailmentChecker(
        InternalBackend(use_aig=use_aig), use_incremental=True
    )
    verdicts = []
    premises = []
    start = time.perf_counter()
    for i in range(_WIDTH // _SLICE):
        lo, hi = i * _SLICE, (i + 1) * _SLICE - 1
        premises.append(mk_eq(CSlice(CHdr(LEFT, "h", _WIDTH), lo, hi),
                              CSlice(CHdr(RIGHT, "h", _WIDTH), lo, hi)))
        goal = mk_eq(CSlice(CHdr(RIGHT, "h", _WIDTH), 0, hi),
                     CSlice(CHdr(LEFT, "h", _WIDTH), 0, hi))
        verdicts.append(bool(checker.check(premises, goal)))
    for _ in range(sweeps):
        for i in range(_WIDTH // _SLICE):
            hi = (i + 1) * _SLICE - 1
            goal = mk_eq(CSlice(CHdr(RIGHT, "h", _WIDTH), 0, hi),
                         CSlice(CHdr(LEFT, "h", _WIDTH), 0, hi))
            verdicts.append(bool(checker.check(premises, goal)))
    return time.perf_counter() - start, verdicts, checker


def test_aig_speedup(benchmark, record_case):
    """The AIG pipeline is ≥1.5× faster on entailed-query workloads.

    Both sides run cold — fresh backends, no query cache, incremental
    sessions on — so the comparison isolates the lowering layer: simplifying
    AIG construction with the graph-level UNSAT short-circuit versus the
    interning-only pipeline that hands every query to CDCL.  The verdict
    sequences must agree exactly, and every query in the workload must be
    answered on the graph (the shortcut counter covers the whole run).
    """
    # Warm-up outside the timed region (imports, first-touch allocations).
    _entailed_sweep_workload(True)
    _entailed_sweep_workload(False)

    baseline_seconds, baseline_verdicts, _ = min(
        (_entailed_sweep_workload(False) for _ in range(3)),
        key=lambda run: run[0],
    )
    aig_runs = [_entailed_sweep_workload(True) for _ in range(2)]
    aig_runs.append(
        benchmark.pedantic(lambda: _entailed_sweep_workload(True),
                           iterations=1, rounds=1)
    )
    aig_seconds, aig_verdicts, checker = min(aig_runs, key=lambda run: run[0])

    assert aig_verdicts == baseline_verdicts
    assert all(aig_verdicts), "every sweep query should be entailed"
    stats = checker.statistics
    assert stats.aig_shortcuts == len(aig_verdicts), (
        "every entailed query should be answered by the graph short-circuit"
    )
    assert stats.aig_clauses_saved > 0

    speedup = baseline_seconds / aig_seconds
    metrics = structural_metrics(
        "Entailed-sweep entailment [AIG pipeline]",
        mpls.reference_parser(), mpls.vectorized_parser(),
    )
    metrics.extra["baseline_seconds"] = round(baseline_seconds, 4)
    metrics.extra["aig_seconds"] = round(aig_seconds, 4)
    metrics.extra["speedup"] = round(speedup, 2)
    metrics.extra["aig_nodes"] = stats.aig_nodes
    metrics.extra["aig_saved"] = stats.aig_clauses_saved
    metrics.extra["aig_shortcuts"] = stats.aig_shortcuts
    record_case(metrics)
    assert speedup >= 1.5, (
        f"AIG pipeline speedup {speedup:.2f}x below the 1.5x floor "
        f"(baseline {baseline_seconds:.3f}s, AIG {aig_seconds:.3f}s)"
    )
