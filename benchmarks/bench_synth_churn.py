"""Engine throughput on batches of synthesized automaton pairs.

The mutation-based synthesizer (:mod:`repro.synth`) labels every pair it
emits, so a batch doubles as a correctness gate: the engine must agree with
the ground truth on every pair, equivalent or broken, while the benchmark
clock measures end-to-end churn — proof search, counterexample extraction
and certificate construction across a mixed workload.

``LEAPFROG_JOBS`` spreads the batch over worker processes (the scale
configuration PR 1's engine was built for), ``LEAPFROG_SEED`` moves the
whole batch to a different region of the seed space, and
``LEAPFROG_ORACLE`` additionally cross-checks every verdict concretely.
"""

import time

from repro import envconfig
from repro.core.engine import EquivalenceJob
from repro.synth import synthesize_batch

_SEED = envconfig.seed_from_env()
if _SEED is None:
    _SEED = 20220613
_COUNT = 24


def _jobs(pairs):
    return [
        EquivalenceJob(
            pair.left, pair.left_start, pair.right, pair.right_start,
            find_counterexamples=True, job_id=pair.name,
        )
        for pair in pairs
    ]


def test_synthesis_throughput(benchmark):
    """Generation alone: pairs per second out of the synthesizer."""
    start = time.perf_counter()
    pairs = benchmark.pedantic(
        synthesize_batch, args=(_COUNT, _SEED), iterations=1, rounds=1
    )
    elapsed = time.perf_counter() - start
    assert len(pairs) == _COUNT
    assert elapsed < 60, "synthesis is supposed to be cheap relative to checking"
    # Ground-truth invariants: broken pairs ship a replayable witness.
    for pair in pairs:
        if not pair.expected_equivalent:
            assert pair.replay_witness(), pair.name


def test_synth_churn_agreement(benchmark, engine):
    """The headline number: checked pairs per second, with 100% agreement."""
    pairs = synthesize_batch(_COUNT, _SEED)

    def run():
        return engine.run(_jobs(pairs))

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    mismatches = []
    for pair, result in zip(pairs, results):
        assert result.ok, f"{pair.name}: {result.status} {result.error}"
        verdict = result.value.verdict
        observed = (
            "unknown" if verdict is None
            else "equivalent" if verdict else "not_equivalent"
        )
        if observed != pair.verdict:
            mismatches.append((pair.name, pair.verdict, observed, pair.transforms))
    assert not mismatches, mismatches


def test_synth_churn_broken_only(benchmark, engine):
    """Refutation-heavy batch: every job must find a counterexample."""
    pairs = [
        pair for pair in synthesize_batch(2 * _COUNT, _SEED + 1000)
        if not pair.expected_equivalent
    ][:_COUNT // 2]

    def run():
        return engine.run(_jobs(pairs))

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    for pair, result in zip(pairs, results):
        assert result.ok, f"{pair.name}: {result.status} {result.error}"
        assert result.value.verdict is False, pair.name
        assert result.value.counterexample is not None, pair.name
