"""Table 2, applicability rows (Section 7.2): self-comparison of the four
parser-gen scenarios (Edge, Service Provider, Datacenter, Enterprise) plus
the four protocol-family refactoring pairs of the scenario registry.

By default the mini variants of the scenarios are used so the whole benchmark
suite stays in the minutes range with the pure-Python solver; set
``LEAPFROG_FULL=1`` to verify the full protocol stacks (several minutes per
scenario, matching the paper's observation that these are the heavyweight
rows).
"""

import pytest

from repro.core.engine import CaseJob
from repro.reporting import full_scale_requested

_APPLICABILITY_ROWS = [
    "Edge", "Service Provider", "Datacenter", "Enterprise",
    "VXLAN/GRE Tunneling", "IPv6 Extension Chain",
    "QinQ Double Tagging", "ARP/ICMP Control Plane",
]


@pytest.mark.parametrize("name", _APPLICABILITY_ROWS)
def test_applicability_case(benchmark, record_case, engine, name):
    full = full_scale_requested()

    def run():
        [result] = engine.run([CaseJob(case=name, full=full)])
        assert result.ok, result.error
        return result.value

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.verdict is True, f"{name} self-comparison should be proved"
    record_case(outcome.metrics)
