"""Table 2, Translation Validation row (Section 7.2, Figure 8).

Compiles the Edge scenario with the parser-gen compiler, back-translates the
hardware table into a P4 automaton and proves it equivalent to the original
parser.  The default uses the mini Edge scenario; ``LEAPFROG_FULL=1`` runs the
full Edge router stack.
"""

from repro.core.engine import CaseJob
from repro.reporting import full_scale_requested


def test_translation_validation(benchmark, record_case, engine):
    full = full_scale_requested()

    def run():
        [result] = engine.run([CaseJob(case="Translation Validation", full=full)])
        assert result.ok, result.error
        return result.value

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.verdict is True, "the parser-gen compiler output should be validated"
    record_case(outcome.metrics)
