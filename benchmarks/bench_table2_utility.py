"""Table 2, utility rows (Section 7.1).

One benchmark per utility case study: State Rearrangement, Variable-length
parsing, Header initialization, Speculative loop, Relational verification and
External filtering.  Each benchmark runs the full verification (proof search +
entailment checking through the internal solver) and records the Table 2 row.
"""

import pytest

from repro.core.engine import CaseJob
from repro.reporting import full_scale_requested

_UTILITY_ROWS = [
    "State Rearrangement",
    "Variable-length parsing",
    "Header initialization",
    "Speculative loop",
    "Relational verification",
    "External filtering",
]


@pytest.mark.parametrize("name", _UTILITY_ROWS)
def test_utility_case(benchmark, record_case, engine, name):
    full = full_scale_requested()

    def run():
        [result] = engine.run([CaseJob(case=name, full=full)])
        assert result.ok, result.error
        return result.value

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.verdict is True, f"{name} should be proved"
    record_case(outcome.metrics)
