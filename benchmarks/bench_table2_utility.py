"""Table 2, utility rows (Section 7.1).

One benchmark per utility case study: State Rearrangement, Variable-length
parsing, Header initialization, Speculative loop, Relational verification and
External filtering.  Each benchmark runs the full verification (proof search +
entailment checking through the internal solver) and records the Table 2 row.
"""

import pytest

from repro.reporting import case_studies, full_scale_requested

_UTILITY_ROWS = [
    "State Rearrangement",
    "Variable-length parsing",
    "Header initialization",
    "Speculative loop",
    "Relational verification",
    "External filtering",
]


@pytest.mark.parametrize("name", _UTILITY_ROWS)
def test_utility_case(benchmark, record_case, name):
    study = case_studies()[name]
    full = full_scale_requested()

    def run():
        return study(full=full)

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.verdict is True, f"{name} should be proved"
    record_case(outcome.metrics)
