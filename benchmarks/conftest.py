"""Shared fixtures and reporting for the benchmark harness.

Each benchmark runs one Table 2 case study through the same runner the CLI
uses and registers the resulting row; at the end of the session the collected
rows are printed in the paper's column layout so the output can be compared
against Table 2 directly (and pasted into EXPERIMENTS.md).

``LEAPFROG_FULL=1`` switches the expensive studies to their paper-sized
configurations; the default keeps every benchmark in the seconds-to-minutes
range on a laptop with the pure-Python solver.
"""

from __future__ import annotations

from typing import List

import pytest

from repro import envconfig
from repro.core.engine import EquivalenceEngine
from repro.reporting import CaseMetrics, render_text

_COLLECTED: List[CaseMetrics] = []


@pytest.fixture
def engine() -> EquivalenceEngine:
    """The execution engine every benchmark routes its verification through.

    ``LEAPFROG_JOBS`` selects the worker count (default 1, the sequential
    baseline), ``LEAPFROG_CACHE_DIR`` enables the persistent solver-query
    cache, ``LEAPFROG_INCREMENTAL=0/1`` pins the incremental solver session
    on or off, ``LEAPFROG_AIG=0/1`` pins the simplifying AIG lowering
    pipeline, and ``LEAPFROG_ORACLE``/``LEAPFROG_SEED`` cross-check every
    verdict against that many seeded concrete packets, so the same benchmark
    files measure sequential, parallel, cold, warm, ablation and oracle
    configurations without edits.  All variables go through
    :mod:`repro.envconfig`, so a malformed value fails the session with a
    clear message instead of a bare ``ValueError``.
    """
    return EquivalenceEngine(
        jobs=envconfig.jobs_from_env(),
        cache_dir=envconfig.cache_dir_from_env(),
        use_incremental=envconfig.incremental_from_env(),
        use_aig=envconfig.aig_from_env(),
        oracle_packets=envconfig.oracle_packets_from_env(),
        oracle_seed=envconfig.seed_from_env(),
    )


@pytest.fixture
def record_case():
    """Benchmarks call this with the CaseMetrics row they produced."""

    def _record(metrics: CaseMetrics) -> CaseMetrics:
        _COLLECTED.append(metrics)
        return metrics

    return _record


def pytest_sessionfinish(session, exitstatus):
    if _COLLECTED:
        print("\n")
        print(render_text(_COLLECTED, title="Leapfrog reproduction — Table 2 rows measured this session"))
