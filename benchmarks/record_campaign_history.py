"""Record a campaign-throughput history entry (``benchmarks/history/``).

Runs the agreement-gated campaign workload from ``bench_campaign`` at three
execution shapes (inline single worker, a two-process pool, a four-way
sharded sweep), times each best-of-three, measures the calibration
microbenchmark on the same machine, and writes one schema-versioned JSON
entry.  Usage::

    python benchmarks/record_campaign_history.py [<label> [<filename>]]

``benchmarks/history/0009-campaign.json`` was produced by this script;
``tests/integration/test_history.py`` validates every file in the directory.
"""

import sys
from datetime import date
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))


def main(label="0009-campaign", filename=None):
    from bench_campaign import _campaign_round
    from repro.reporting.history import (
        HistoryEntry,
        calibration_seconds,
        history_dir,
        write_entry,
    )

    # Warm-up keeps first-touch imports/allocations out of the timings.
    _campaign_round(pairs=4)

    def best_of(repeats=3, **kwargs):
        return min(_campaign_round(**kwargs)[0] for _ in range(repeats))

    rows = {
        "campaign.single_worker": best_of(jobs=1),
        "campaign.two_workers": best_of(jobs=2),
        "campaign.sharded_x4": best_of(shards=4),
    }
    entry = HistoryEntry(
        label=label,
        date=date.today().isoformat(),
        calibration_seconds=calibration_seconds(),
        rows=rows,
        notes=(
            "campaign runner throughput (16 mini pairs, agreement-gated); "
            "measured via benchmarks/bench_campaign.py:_campaign_round"
        ),
    )
    path = write_entry(history_dir(REPO), filename or f"{label}.json", entry)
    print("wrote", path)
    for name in sorted(rows):
        print(f"  {name}: {rows[name]:.3f}s")


if __name__ == "__main__":
    main(*sys.argv[1:3])
