"""Record a normalized benchmark-history entry (``benchmarks/history/``).

Runs the solver-layer speedup workloads from ``bench_smt_queries`` (the
repeated-premise incremental-session comparison, the entailed-sweep AIG
comparison and the multi-worker clause-sharing churn comparison), times each
side best-of-three, measures the calibration microbenchmark on the same
machine, and writes one schema-versioned JSON entry.  Usage::

    PYTHONPATH=src python benchmarks/record_history.py <label> [<filename>]

The committed entries form the in-repo perf trajectory (ROADMAP item 5);
``tests/reporting/test_history.py`` validates every file in the directory.
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_smt_queries import (
    _DB_CAP,
    _churn_queries,
    _churn_round,
    _churn_worker,
    _clause_db_churn,
    _entailed_sweep_workload,
    _repeated_premise_workload,
)

from repro.reporting.history import (
    HistoryEntry,
    calibration_seconds,
    history_dir,
    write_entry,
)


def _best_of(workload, *args, repeats=3):
    return min(workload(*args)[0] for _ in range(repeats))


def _shared_churn_round():
    """One clause-sharing churn round over a fresh (cold) channel directory."""
    with tempfile.TemporaryDirectory() as share_dir:
        return _churn_round(share_dir)


def measure() -> dict:
    """Best-of-three seconds for every tracked benchmark."""
    # Warm-up: first-touch allocations and imports stay out of the timings.
    _repeated_premise_workload(True)
    _entailed_sweep_workload(True)
    _churn_worker(_churn_queries())
    _clause_db_churn(_DB_CAP, rounds=4)
    return {
        "repeated_premise.incremental_on": _best_of(_repeated_premise_workload, True),
        "repeated_premise.incremental_off": _best_of(_repeated_premise_workload, False),
        "entailed_sweep.aig_on": _best_of(_entailed_sweep_workload, True),
        "entailed_sweep.aig_off": _best_of(_entailed_sweep_workload, False),
        "clause_churn.shared": _best_of(_shared_churn_round),
        "clause_churn.unshared": _best_of(_churn_round, None),
        "clause_db_churn.capped": _best_of(_clause_db_churn, _DB_CAP),
        "clause_db_churn.unbounded": _best_of(_clause_db_churn, 0),
    }


def main(argv) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__)
        return 2
    label = argv[1]
    filename = argv[2] if len(argv) == 3 else f"{label}.json"
    from datetime import date

    entry = HistoryEntry(
        label=label,
        date=date.today().isoformat(),
        calibration_seconds=calibration_seconds(),
        rows=measure(),
        notes="recorded by benchmarks/record_history.py",
    )
    path = write_entry(
        history_dir(Path(__file__).resolve().parent.parent), filename, entry
    )
    print(f"wrote {path}")
    for name in sorted(entry.rows):
        print(f"  {name}: {entry.rows[name]:.4f}s  (normalized {entry.normalized(name):.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
