#!/usr/bin/env python3
"""External Filtering and Relational Verification (Section 7.1, Figure 10).

The *sloppy* parser treats every non-IPv4 EtherType as IPv6; the *strict*
parser rejects unknown types.  They are not equivalent — and Leapfrog finds a
distinguishing packet — but they are equivalent *modulo an external filter*
that only admits IPv4/IPv6 packets, and whenever both accept, their stores
agree on the EtherType and the selected IP header.

Run with:  python examples/external_filtering.py
"""

from repro import check_language_equivalence, check_store_relation
from repro.core.algorithm import PreBisimulationChecker
from repro.core.reachability import ReachabilityAnalysis
from repro.core.templates import Template, TemplatePair
from repro.protocols import ethernet_ip


def main() -> None:
    sloppy = ethernet_ip.sloppy_parser()
    strict = ethernet_ip.strict_parser()

    # 1. Plain equivalence fails, with a concrete witness.
    plain = check_language_equivalence(sloppy, ethernet_ip.START, strict, ethernet_ip.START,
                                       counterexample_max_leaps=6)
    print(f"plain equivalence:      {plain}")
    assert plain.refuted
    ether = plain.counterexample.packet.slice(96, 111)
    print(f"  witness EtherType = 0x{ether.to_int():04x} (neither IPv4 nor IPv6)")

    # 2. Equivalence modulo the external filter: acceptance may differ only on
    #    packets whose EtherType is not IPv4/IPv6.
    start_pair = TemplatePair(Template(ethernet_ip.START, 0), Template(ethernet_ip.START, 0))
    reach = ReachabilityAnalysis(sloppy, strict, [start_pair])
    extra = ethernet_ip.external_filter_initial_relation(sloppy, strict, reach)
    checker = PreBisimulationChecker(
        sloppy, strict, ethernet_ip.START, ethernet_ip.START,
        require_equal_acceptance=False, extra_initial=extra,
    )
    filtered = checker.run()
    print(f"modulo external filter: {'PROVED' if filtered.proved else 'NOT PROVED'} "
          f"({filtered.statistics.relation_size} conjuncts)")
    assert filtered.proved

    # 3. Relational verification: when both accept, the stores correspond.
    relation = ethernet_ip.store_correspondence(sloppy, strict)
    relational = check_store_relation(
        sloppy, ethernet_ip.START, strict, ethernet_ip.START, relation,
        require_equal_acceptance=False,
    )
    print(f"store correspondence:   {relational}")
    assert relational.proved


if __name__ == "__main__":
    main()
