#!/usr/bin/env python3
"""Header Initialization case study (Section 7.1, Figure 9).

A parser that branches on a VLAN tag must make sure every path writes the tag;
otherwise acceptance depends on uninitialised memory.  Leapfrog checks this by
comparing the parser against itself with unconstrained, *independent* initial
stores on the two sides: if the accepted packets can differ, acceptance leaks
the initial store.

Run with:  python examples/header_initialization.py
"""

from repro import check_initial_store_independence
from repro.protocols import ethernet_vlan


def main() -> None:
    good = ethernet_vlan.vlan_parser()
    result = check_initial_store_independence(good, ethernet_vlan.START)
    print(f"defaulted VLAN parser: {result}")
    assert result.proved, "every path initialises vlan, so acceptance is store independent"

    buggy = ethernet_vlan.buggy_parser()
    result = check_initial_store_independence(buggy, ethernet_vlan.START)
    print(f"buggy VLAN parser:     {result}")
    assert result.refuted, "the buggy parser branches on an uninitialised header"
    cex = result.counterexample
    print(f"  distinguishing packet: {cex.packet.width} bits")
    print(f"  left store vlan  = {cex.left_store['vlan']}")
    print(f"  right store vlan = {cex.right_store['vlan']}")
    print("  the same packet is accepted under one initial store and rejected under the other")


if __name__ == "__main__":
    main()
