#!/usr/bin/env python3
"""Quickstart: prove the two MPLS/UDP parsers of Figure 1 equivalent.

The reference parser reads one 32-bit MPLS label per iteration; the vectorized
parser speculatively reads two at a time and patches things up when it
overshoots.  Leapfrog proves they accept exactly the same packets and returns
a certificate that an independent checker re-validates.

Run with:  python examples/quickstart.py
"""

from repro import check_language_equivalence, verify_certificate
from repro.protocols import mpls


def main() -> None:
    reference = mpls.reference_parser()     # states q1, q2  (32-bit labels, 64-bit UDP)
    vectorized = mpls.vectorized_parser()   # states q3, q4, q5

    print("Reference parser:")
    print("\n".join("  " + line for line in str(reference).splitlines()))
    print("Vectorized parser:")
    print("\n".join("  " + line for line in str(vectorized).splitlines()))

    result = check_language_equivalence(
        reference, mpls.REFERENCE_START, vectorized, mpls.VECTORIZED_START
    )
    print()
    print(f"Verdict: {result}")
    stats = result.statistics
    print(
        f"  {stats.iterations} worklist iterations, "
        f"{stats.relation_size} relation conjuncts over "
        f"{stats.reachable_pairs} reachable template pairs, "
        f"{stats.solver['queries']} solver queries in {stats.runtime_seconds:.2f}s"
    )

    assert result.proved, "the Figure 1 parsers should be equivalent"

    # The certificate can be re-checked independently of the proof search.
    check = verify_certificate(result.certificate, reference, vectorized)
    print(f"  certificate re-check: {'OK' if check.ok else 'FAILED'} "
          f"({check.checked_obligations} obligations)")

    # A deliberately broken vectorized parser is refuted with a concrete packet.
    broken = mpls.broken_vectorized(4)
    refutation = check_language_equivalence(
        mpls.scaled_reference(4), mpls.REFERENCE_START, broken, mpls.VECTORIZED_START
    )
    print()
    print(f"Broken variant: {refutation}")
    assert refutation.refuted


if __name__ == "__main__":
    main()
