#!/usr/bin/env python3
"""Working with the textual P4A surface syntax.

Parsers can be written in the concrete syntax used by the paper's figures,
parsed into the automaton model, pretty-printed back, and checked for
equivalence — the same flow as the ``leapfrog-repro check`` command-line tool.

Run with:  python examples/surface_syntax.py
"""

from repro import check_language_equivalence, parse_automaton
from repro.p4a import pretty

INCREMENTAL = """
// Reads a two-bit packet one bit at a time and accepts if the first bit is 1.
header first : 1;
header second : 1;

Start {
  extract(first);
  select(first) {
    1 => Next
    _ => reject
  }
}

Next {
  extract(second);
  goto accept;
}
"""

COMBINED = """
// Reads both bits at once.
header both : 2;

Parse {
  extract(both);
  select(both[0:0]) {
    1 => accept
    _ => reject
  }
}
"""


def main() -> None:
    incremental = parse_automaton(INCREMENTAL, name="incremental")
    combined = parse_automaton(COMBINED, name="combined")

    print("Parsed and pretty-printed back:")
    print(pretty(incremental))

    # The pretty-printed form parses back to the same automaton.
    assert parse_automaton(pretty(incremental), name="incremental") == incremental

    result = check_language_equivalence(incremental, "Start", combined, "Parse")
    print(f"equivalence: {result}")
    assert result.proved


if __name__ == "__main__":
    main()
