#!/usr/bin/env python3
"""Translation validation of the parser-gen compiler (Section 7.2, Figure 8).

A parse graph for an edge router is compiled onto the TCAM-driven hardware
parser engine, the resulting table is translated back into a P4 automaton, and
Leapfrog proves the round trip preserves the accepted language.

Run with:  python examples/translation_validation.py          (mini scenario, seconds)
           LEAPFROG_FULL=1 python examples/translation_validation.py   (full Edge router)
"""

import os

from repro import check_language_equivalence
from repro.parsergen import compile_graph, graph_to_p4a, hardware_to_p4a, scenario


def main() -> None:
    full = os.environ.get("LEAPFROG_FULL", "0") == "1"
    name = "edge" if full else "mini_edge"
    graph = scenario(name)
    print(f"Scenario: {name} ({len(graph.nodes)} parse-graph nodes)")

    original, start = graph_to_p4a(graph)
    hardware = compile_graph(graph)
    print(f"Compiled hardware table: {len(hardware.entries)} entries, "
          f"{len(hardware.states())} states")
    print()
    print("\n".join(hardware.dump().splitlines()[:10]))
    print("  ...")

    translated, translated_start = hardware_to_p4a(hardware)
    print(f"\nBack-translated P4 automaton: {len(translated.states)} states")

    result = check_language_equivalence(
        original, start, translated, translated_start, find_counterexamples=False
    )
    print(f"\nTranslation validation verdict: {result}")
    stats = result.statistics
    print(f"  ({stats.relation_size} conjuncts, {stats.solver['queries']} solver queries, "
          f"{stats.runtime_seconds:.1f}s)")
    assert result.proved, "the compiler should preserve the accepted language"


if __name__ == "__main__":
    main()
