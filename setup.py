"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
the package can be installed in editable mode on systems without the ``wheel``
package or network access (``pip install -e . --no-build-isolation`` falls back
to the legacy code path through this shim).
"""

from setuptools import setup

setup()
