"""Leapfrog reproduction: certified equivalence checking for protocol parsers.

The package is organised as follows:

* :mod:`repro.p4a` — the P4 automaton model (syntax, typing, semantics,
  builders, surface syntax).
* :mod:`repro.logic` — the configuration-relation logic and the lowering chain
  to FOL(BV).
* :mod:`repro.smt` — the solver substrate: bit-blasting, CDCL SAT, CEGIS, and
  pluggable internal/external backends.
* :mod:`repro.core` — the symbolic pre-bisimulation algorithm with leaps and
  reachability pruning, certificates, counterexample search and the
  explicit-state baseline.
* :mod:`repro.protocols` — the case-study parsers (MPLS, IP/TCP/UDP, VLAN,
  IP options, Ethernet/IP, and small examples).
* :mod:`repro.parsergen` — the parse-graph IR, hardware parser tables, the
  compiler between them and the four benchmark scenarios used for the
  applicability and translation-validation studies.
* :mod:`repro.reporting` — measurement and table rendering for the benchmark
  harness.

Quickstart::

    from repro import check_language_equivalence
    from repro.protocols import mpls

    result = check_language_equivalence(
        mpls.reference_parser(), mpls.REFERENCE_START,
        mpls.vectorized_parser(), mpls.VECTORIZED_START,
    )
    assert result.proved
"""

from .core import (
    CheckerConfig,
    EquivalenceResult,
    check_initial_store_independence,
    check_language_equivalence,
    check_store_relation,
    find_counterexample,
    verify_certificate,
)
from .p4a import AutomatonBuilder, Bits, P4Automaton, parse_automaton

__version__ = "1.0.0"

__all__ = [
    "AutomatonBuilder",
    "Bits",
    "CheckerConfig",
    "EquivalenceResult",
    "P4Automaton",
    "check_initial_store_independence",
    "check_language_equivalence",
    "check_store_relation",
    "find_counterexample",
    "parse_automaton",
    "verify_certificate",
    "__version__",
]
