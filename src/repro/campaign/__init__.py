"""Campaign-scale fuzzing of the equivalence engine.

The subsystem behind ``repro campaign run``: sharded batches of self-labeled
synthesized pairs (:mod:`repro.synth`, stretched past acyclic cascades by the
campaign generator configs), every verdict cross-checked against its
ground-truth label and — differentially — across backend stacks, with every
disagreement delta-debugged, witness-minimized and serialized into the
``distilled`` scenario family as a permanent regression test.

* :mod:`repro.campaign.runner` — sharding, chunked engine execution,
  resumable checkpoints, deterministic JSON reports;
* :mod:`repro.campaign.distill` — transform-level delta debugging, witness
  shrinking, scenario-module serialization.
"""

from .distill import (
    delta_debug_chain,
    minimize_pair_witness,
    rebuild_pair,
    render_scenario_module,
    scenario_name_for,
)
from .runner import (
    BACKEND_STACKS,
    CampaignConfig,
    CampaignError,
    CampaignReport,
    available_stacks,
    run_campaign,
)

__all__ = [
    "BACKEND_STACKS",
    "CampaignConfig",
    "CampaignError",
    "CampaignReport",
    "available_stacks",
    "delta_debug_chain",
    "minimize_pair_witness",
    "rebuild_pair",
    "render_scenario_module",
    "run_campaign",
    "scenario_name_for",
]
