"""Disagreement distillation: minimize, serialize, auto-register.

When a fuzz campaign catches the engine contradicting a pair's ground-truth
label, the raw pair is a lousy regression test: its right-hand side is the
product of several camouflage rewrites that have nothing to do with the bug,
and its witness packet (if any) is as wide as the generator happened to draw.
This module turns the catch into a permanent, reviewable tier-1 test in three
steps:

1. **transform-level delta debugging** (:func:`delta_debug_chain`): greedily
   drop equivalence rewrites from the pair's recorded ``(name, step_seed)``
   chain — the breaking mutation, when present, is never dropped — keeping a
   candidate only when the reduced chain still replays, the ground-truth
   label still holds (broken pairs must re-confirm a fresh concrete witness),
   and the caller's predicate still observes the disagreement;
2. **witness shrinking** (:func:`minimize_pair_witness`), reusing the greedy
   bit-drop pass of :mod:`repro.oracle.minimize` under default stores;
3. **serialization** (:func:`render_scenario_module`): the reduced pair is
   rendered as a standalone Python module embedding both automata in concrete
   surface syntax.  Importing the module re-parses them through
   :func:`repro.p4a.surface.parse_automaton` (type-checked on the way in) and
   registers the pair under the ``distilled`` scenario family, where the
   registry test suite replays it forever after.

Everything here is deterministic: replays are pinned by step seeds, witness
confirmation re-derives its rng from the pair seed, and the rendered module
contains no timestamps — re-distilling the same disagreement byte-for-byte
reproduces the same file.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional, Sequence

from ..oracle.minimize import minimize_witness_packet
from ..p4a.pretty import pretty
from ..synth.pairs import NOT_EQUIVALENT, SynthesizedPair
from ..synth.transforms import TransformStep, find_witness, replay_chain

#: Decides whether a (reduced) pair still exhibits the disagreement under
#: investigation.  Receives a fully rebuilt pair; returns ``True`` to accept
#: the reduction.
DisagreementPredicate = Callable[[SynthesizedPair], bool]


def rebuild_pair(
    pair: SynthesizedPair, steps: Sequence[TransformStep]
) -> Optional[SynthesizedPair]:
    """Re-derive a pair from its base automaton and a (reduced) chain.

    Returns ``None`` when the chain no longer replays or, for broken pairs,
    when no fresh concrete witness confirms the label against the reduced
    right-hand side — a reduction that would make the label unsound.
    """
    replayed = replay_chain(pair.left, pair.left_start, steps)
    if replayed is None:
        return None
    right, right_start = replayed
    right.name = pair.right.name
    witness = None
    if pair.verdict == NOT_EQUIVALENT:
        witness = find_witness(
            pair.left, pair.left_start, right, right_start,
            random.Random(pair.seed),
        )
        if witness is None:
            return None
    return dataclasses.replace(
        pair,
        right=right,
        right_start=right_start,
        transforms=tuple(name for name, _ in steps),
        chain=tuple(steps),
        witness=witness,
    )


def delta_debug_chain(
    pair: SynthesizedPair, predicate: DisagreementPredicate
) -> SynthesizedPair:
    """Greedily drop chain steps while ``predicate`` still sees the bug.

    One-at-a-time removal to fixpoint (ddmin's granularity-1 tail), walking
    from the last camouflage step backwards; the final step of a broken
    pair's chain is its mutation and is never considered for removal.  Every
    surviving candidate went through :func:`rebuild_pair`, so the result is
    replayable and its label re-confirmed.
    """
    steps = list(pair.chain)
    protected = 1 if pair.verdict == NOT_EQUIVALENT and steps else 0
    best = pair
    changed = True
    while changed and len(steps) > protected:
        changed = False
        for index in range(len(steps) - 1 - protected, -1, -1):
            candidate_steps = steps[:index] + steps[index + 1:]
            candidate = rebuild_pair(pair, candidate_steps)
            if candidate is None or not predicate(candidate):
                continue
            steps = candidate_steps
            best = candidate
            changed = True
            break
    return best


def minimize_pair_witness(pair: SynthesizedPair) -> SynthesizedPair:
    """Shrink a broken pair's witness packet (no-op on equivalent pairs)."""
    if pair.witness is None:
        return pair
    packet = minimize_witness_packet(
        pair.left, pair.left_start, pair.right, pair.right_start, pair.witness
    )
    if packet.width < pair.witness.width:
        return dataclasses.replace(pair, witness=packet)
    return pair


_MODULE_TEMPLATE = '''"""Distilled regression scenario ``{scenario_name}`` (auto-generated).

Distilled by ``repro campaign run`` from campaign seed {campaign_seed}: on
pair seed {pair_seed} (size {size}) the ``{stack}`` backend stack observed
``{observed}`` where ground truth is ``{expected}``.  The transform chain was
delta-debugged from {original_steps} to {reduced_steps} step(s).

Importing this module re-parses both sides from surface syntax (type-checked
on the way in) and registers the pair under the ``distilled`` family, making
the catch a permanent tier-1 regression test.  Do not edit by hand —
re-distill instead.
"""

from repro.p4a.surface import parse_automaton
from repro.scenarios.registry import register

NAME = {scenario_name!r}
EXPECTED = {expected!r}

#: Provenance: the originating campaign catch.
CAMPAIGN_SEED = {campaign_seed}
PAIR_SEED = {pair_seed}
STACK = {stack!r}
OBSERVED = {observed!r}
#: The reduced replayable transform chain, ``(name, step_seed)`` per step.
CHAIN = {chain!r}
#: Minimized store-default witness bitstring (``None`` on equivalent pairs).
WITNESS = {witness!r}

LEFT_START = {left_start!r}
RIGHT_START = {right_start!r}

LEFT = """\\
{left_source}"""

RIGHT = """\\
{right_source}"""


@register(
    name=NAME,
    family="distilled",
    size={size!r},
    verdict=EXPECTED,
    kind="pair",
    description={description!r},
)
def _pair():
    return (
        parse_automaton(LEFT, name=NAME + "_left"), LEFT_START,
        parse_automaton(RIGHT, name=NAME + "_right"), RIGHT_START,
    )
'''


def scenario_name_for(pair: SynthesizedPair, size: str, stack: str) -> str:
    """Deterministic registry/module name for one distilled disagreement."""
    slug = stack.replace("-", "_")
    return f"distilled_{size}_{pair.seed}_{slug}"


def render_scenario_module(
    pair: SynthesizedPair,
    *,
    size: str,
    stack: str,
    observed: str,
    campaign_seed: int,
    original_steps: int,
) -> str:
    """The source text of a self-registering distilled scenario module."""
    scenario_name = scenario_name_for(pair, size, stack)
    witness = pair.witness.to_bitstring() if pair.witness is not None else None
    description = (
        f"distilled campaign catch (seed {pair.seed}): {stack} stack said "
        f"{observed}, ground truth {pair.verdict}"
    )
    left_source = pretty(pair.left)
    right_source = pretty(pair.right)
    for source in (left_source, right_source):
        if '"""' in source:  # cannot happen with the surface grammar
            raise ValueError("surface syntax not embeddable in a docstring")
    return _MODULE_TEMPLATE.format(
        scenario_name=scenario_name,
        expected=pair.verdict,
        campaign_seed=campaign_seed,
        pair_seed=pair.seed,
        size=size,
        stack=stack,
        observed=observed,
        chain=tuple(pair.chain),
        witness=witness,
        left_start=pair.left_start,
        right_start=pair.right_start,
        left_source=left_source if left_source.endswith("\n") else left_source + "\n",
        right_source=right_source if right_source.endswith("\n") else right_source + "\n",
        original_steps=original_steps,
        reduced_steps=len(pair.chain),
        description=description,
    )
