"""Sharded self-labeled fuzz campaigns over the equivalence engine.

A *campaign* checks a large batch of synthesized pairs — each carrying its
ground-truth verdict by construction (:mod:`repro.synth`) — against the
engine and cross-checks every verdict against the label.  Under
``differential`` mode each pair is additionally checked through several
*backend stacks* (:data:`BACKEND_STACKS`): the internal solver pipeline, the
same pipeline with AIG simplification disabled, and (when an external solver
is on ``PATH``) the portfolio racer.  Any stack contradicting the label, or
two stacks contradicting each other, is a *disagreement* — the campaign's
entire purpose — and is handed to :mod:`repro.campaign.distill` to become a
permanent regression scenario.

Scale machinery:

* **sharding** — pair index ``i`` belongs to shard ``i % shards``; a shard is
  a self-contained strided slice of the campaign, so shards can run in
  separate CI jobs (``--shard K``) and their reports merge by construction;
* **chunked execution** — each shard feeds the engine fixed-size chunks of
  jobs, streaming verdict evaluation through the engine's ordered
  ``on_result`` callback;
* **checkpoints** — with a state directory, a shard records its progress
  after every chunk (atomic rename, keyed by a fingerprint of the campaign
  parameters), and a re-run of the same campaign resumes after the last
  completed chunk instead of re-checking from scratch;
* **deterministic reports** — the JSON report is a pure function of the
  campaign parameters and verdicts: same invocation, same bytes.  Wall-clock
  throughput lives on the report object (``elapsed``/``pairs_per_second``)
  but deliberately outside :meth:`CampaignReport.as_dict`.

Everything synthesizes from ``seed + index`` with parity-pinned verdicts
(even index = equivalent), matching :func:`repro.synth.synthesize_batch`, so
growing ``pairs`` extends a campaign without changing the pairs already in
it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.algorithm import CheckerConfig
from ..core.engine import EquivalenceEngine, EquivalenceJob, JobResult
from ..synth.pairs import (
    EQUIVALENT,
    NOT_EQUIVALENT,
    SynthesizedPair,
    campaign_config_for_size,
    synthesize_pair,
)
from .distill import (
    delta_debug_chain,
    minimize_pair_witness,
    render_scenario_module,
    scenario_name_for,
)


class CampaignError(ValueError):
    """Raised on invalid campaign parameters or corrupt checkpoints."""


#: Backend stacks a differential campaign races against each other.  Each
#: entry is a set of :class:`~repro.core.algorithm.CheckerConfig` overrides;
#: ``internal`` is the everyday default pipeline and the only stack of a
#: non-differential campaign.
BACKEND_STACKS: Dict[str, Dict[str, object]] = {
    "internal": {},
    "aig-off": {"use_aig": False},
    "portfolio": {"portfolio": True},
}

#: Checkpoint schema version (bumped on incompatible layout changes).
CHECKPOINT_SCHEMA = 1

#: Report schema version.
REPORT_SCHEMA = 1


def available_stacks(differential: bool) -> Tuple[str, ...]:
    """The stacks a campaign runs: just ``internal``, or every stack whose
    prerequisites hold (``portfolio`` needs an external solver on PATH)."""
    if not differential:
        return ("internal",)
    from ..smt.backend import available_external_solvers

    stacks = ["internal", "aig-off"]
    if available_external_solvers():
        stacks.append("portfolio")
    return tuple(stacks)


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one campaign; the fingerprint keys its checkpoints."""

    pairs: int
    shards: int = 1
    seed: int = 0
    size: str = "mini"
    jobs: int = 1
    differential: bool = False
    #: ``None`` derives from ``differential`` via :func:`available_stacks`.
    stacks: Optional[Tuple[str, ...]] = None
    #: Concrete-oracle packets riding on every verdict (0 disables).
    oracle_packets: int = 0
    timeout: Optional[float] = None
    chunk_size: int = 32
    #: Run only this shard (``None`` = all shards in sequence).
    shard: Optional[int] = None
    state_dir: Optional[str] = None
    distill_dir: Optional[str] = None
    #: Cap on distilled scenarios per campaign (minimization is not free).
    max_distilled: int = 8

    def __post_init__(self) -> None:
        if self.pairs < 0:
            raise CampaignError(f"pairs must be >= 0, got {self.pairs}")
        if self.shards < 1:
            raise CampaignError(f"shards must be >= 1, got {self.shards}")
        if self.chunk_size < 1:
            raise CampaignError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.shard is not None and not 0 <= self.shard < self.shards:
            raise CampaignError(
                f"shard must be in [0, {self.shards}), got {self.shard}"
            )
        if self.stacks is not None:
            unknown = [s for s in self.stacks if s not in BACKEND_STACKS]
            if unknown:
                raise CampaignError(
                    f"unknown stacks: {', '.join(unknown)}; "
                    f"known: {', '.join(BACKEND_STACKS)}"
                )
            if not self.stacks:
                raise CampaignError("stacks must not be empty")
        campaign_config_for_size(self.size)  # validates the size tag

    def resolved_stacks(self) -> Tuple[str, ...]:
        if self.stacks is not None:
            return self.stacks
        return available_stacks(self.differential)

    def shard_indices(self, shard: int) -> List[int]:
        """The global pair indices of one shard (strided, deterministic)."""
        return list(range(shard, self.pairs, self.shards))

    def fingerprint(self) -> str:
        """Hash of every parameter that determines which pairs get checked
        and how; checkpoints from a different campaign never resume."""
        payload = json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA,
                "pairs": self.pairs,
                "shards": self.shards,
                "seed": self.seed,
                "size": self.size,
                "stacks": list(self.resolved_stacks()),
                "oracle_packets": self.oracle_packets,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _verdict_for_index(index: int) -> str:
    """Parity-pinned ground truth, matching ``synthesize_batch``."""
    return EQUIVALENT if index % 2 == 0 else NOT_EQUIVALENT


def _observed(result: JobResult) -> Optional[str]:
    """The engine's verdict string, or ``None`` when the job got none."""
    if not result.ok:
        return None
    verdict = result.value.verdict
    if verdict is None:
        return None
    return EQUIVALENT if verdict else NOT_EQUIVALENT


def _stack_config(
    stack: str, config: "CampaignConfig"
) -> CheckerConfig:
    overrides = dict(BACKEND_STACKS[stack])
    if config.oracle_packets:
        overrides["oracle_packets"] = config.oracle_packets
        overrides["oracle_seed"] = config.seed
    return CheckerConfig(**overrides)


@dataclass
class ShardOutcome:
    """Everything one shard observed (checkpointable and mergeable)."""

    shard: int
    indices: int = 0
    completed: int = 0
    checked: Dict[str, int] = field(
        default_factory=lambda: {EQUIVALENT: 0, NOT_EQUIVALENT: 0}
    )
    agreements: int = 0
    disagreements: List[Dict[str, object]] = field(default_factory=list)
    failures: List[Dict[str, object]] = field(default_factory=list)
    #: Pairs where two stacks returned different definite verdicts.
    cross_stack: List[Dict[str, object]] = field(default_factory=list)
    #: How many completed indices were restored from a checkpoint (not part
    #: of the serialized report: a resumed run must report identically).
    resumed_from: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "pairs": self.indices,
            "completed": self.completed,
            "checked": dict(self.checked),
            "agreements": self.agreements,
            "disagreements": list(self.disagreements),
            "failures": list(self.failures),
            "cross_stack": list(self.cross_stack),
        }


@dataclass
class CampaignReport:
    """The merged, deterministic outcome of a campaign run."""

    config: Dict[str, object]
    shards: List[Dict[str, object]]
    distilled: List[Dict[str, object]]
    elapsed: float = 0.0

    @property
    def totals(self) -> Dict[str, object]:
        completed = sum(s["completed"] for s in self.shards)
        disagreements = sum(len(s["disagreements"]) for s in self.shards)
        failures = sum(len(s["failures"]) for s in self.shards)
        return {
            "pairs": sum(s["pairs"] for s in self.shards),
            "completed": completed,
            "agreements": sum(s["agreements"] for s in self.shards),
            "disagreements": disagreements,
            "failures": failures,
            "cross_stack": sum(len(s["cross_stack"]) for s in self.shards),
            "distilled": len(self.distilled),
        }

    @property
    def pairs_per_second(self) -> float:
        completed = self.totals["completed"]
        return completed / self.elapsed if self.elapsed > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Deterministic (no wall-clock) JSON payload."""
        return {
            "schema": REPORT_SCHEMA,
            "config": dict(self.config),
            "totals": self.totals,
            "shards": list(self.shards),
            "distilled": list(self.distilled),
        }

    @property
    def exit_code(self) -> int:
        """0 all-agree, 1 on any disagreement, 2 on any stuck/failed job."""
        totals = self.totals
        if totals["failures"]:
            return 2
        if totals["disagreements"] or totals["cross_stack"]:
            return 1
        return 0


EngineFactory = Callable[[int], EquivalenceEngine]


def _default_engine_factory(config: CampaignConfig) -> EngineFactory:
    def factory(jobs: int) -> EquivalenceEngine:
        return EquivalenceEngine(jobs=jobs, timeout=config.timeout)

    return factory


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------


def _checkpoint_path(state_dir: str, shard: int) -> str:
    return os.path.join(state_dir, f"shard-{shard:04d}.json")


def _load_checkpoint(
    config: CampaignConfig, shard: int
) -> Optional[ShardOutcome]:
    if config.state_dir is None:
        return None
    path = _checkpoint_path(config.state_dir, shard)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"unreadable checkpoint {path}: {exc}") from exc
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise CampaignError(
            f"checkpoint {path} has schema {payload.get('schema')!r}, "
            f"expected {CHECKPOINT_SCHEMA}"
        )
    if payload.get("fingerprint") != config.fingerprint():
        # A different campaign's leftovers: start this shard from scratch.
        return None
    state = payload["state"]
    return ShardOutcome(
        shard=shard,
        indices=state["pairs"],
        completed=state["completed"],
        checked=dict(state["checked"]),
        agreements=state["agreements"],
        disagreements=list(state["disagreements"]),
        failures=list(state["failures"]),
        cross_stack=list(state["cross_stack"]),
        resumed_from=state["completed"],
    )


def _write_checkpoint(config: CampaignConfig, outcome: ShardOutcome) -> None:
    if config.state_dir is None:
        return
    os.makedirs(config.state_dir, exist_ok=True)
    path = _checkpoint_path(config.state_dir, outcome.shard)
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "fingerprint": config.fingerprint(),
        "state": outcome.as_dict(),
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)  # atomic on POSIX: a reader sees old or new, never half


# ---------------------------------------------------------------------------
# The campaign proper
# ---------------------------------------------------------------------------


def _check_chunk(
    config: CampaignConfig,
    engine: EquivalenceEngine,
    stacks: Sequence[str],
    chunk: Sequence[int],
    outcome: ShardOutcome,
    pairs_out: Dict[int, SynthesizedPair],
) -> None:
    """Synthesize and check one chunk of global pair indices."""
    pairs = {
        index: synthesize_pair(
            config.seed + index,
            config=campaign_config_for_size(config.size),
            verdict=_verdict_for_index(index),
        )
        for index in chunk
    }
    pairs_out.update(pairs)
    jobs = []
    job_meta: Dict[str, Tuple[int, str]] = {}
    for index in chunk:
        pair = pairs[index]
        for stack in stacks:
            job_id = f"{pair.name}:{stack}"
            job_meta[job_id] = (index, stack)
            jobs.append(
                EquivalenceJob(
                    pair.left, pair.left_start, pair.right, pair.right_start,
                    config=_stack_config(stack, config),
                    find_counterexamples=True,
                    job_id=job_id,
                )
            )
    verdicts: Dict[int, Dict[str, Optional[str]]] = {i: {} for i in chunk}

    def consume(result: JobResult) -> None:
        index, stack = job_meta[result.job_id]
        observed = _observed(result)
        verdicts[index][stack] = observed
        if observed is None:
            outcome.failures.append({
                "index": index,
                "pair": pairs[index].name,
                "stack": stack,
                "status": result.status if not result.ok else "no-verdict",
                "error": result.error,
            })

    engine.run(jobs, on_result=consume)

    for index in chunk:
        pair = pairs[index]
        expected = pair.verdict
        observed_by_stack = verdicts[index]
        agreed = True
        for stack in stacks:
            observed = observed_by_stack.get(stack)
            if observed is None:
                agreed = False
                continue
            if observed != expected:
                agreed = False
                outcome.disagreements.append({
                    "index": index,
                    "pair": pair.name,
                    "seed": pair.seed,
                    "stack": stack,
                    "kind": "label",
                    "expected": expected,
                    "observed": observed,
                    "transforms": list(pair.transforms),
                })
        definite = {
            stack: observed for stack, observed in observed_by_stack.items()
            if observed is not None
        }
        if len(set(definite.values())) > 1:
            outcome.cross_stack.append({
                "index": index,
                "pair": pair.name,
                "kind": "differential",
                "verdicts": {s: definite[s] for s in sorted(definite)},
            })
        outcome.checked[expected] += 1
        outcome.completed += 1
        if agreed:
            outcome.agreements += 1


def _distill(
    config: CampaignConfig,
    report_shards: List[ShardOutcome],
    pairs: Dict[int, SynthesizedPair],
    engine_factory: EngineFactory,
    log: Optional[Callable[[str], None]],
) -> List[Dict[str, object]]:
    """Minimize label disagreements into registered scenario modules."""
    if config.distill_dir is None:
        return []
    catches = sorted(
        (
            entry
            for outcome in report_shards
            for entry in outcome.disagreements
            if entry["kind"] == "label"
        ),
        key=lambda entry: (int(entry["index"]), str(entry["stack"])),
    )
    if len(catches) > config.max_distilled and log is not None:
        log(
            f"distilling only the first {config.max_distilled} of "
            f"{len(catches)} disagreements (raise max_distilled to keep more)"
        )
    probe_engine = engine_factory(1)
    distilled: List[Dict[str, object]] = []
    seen: set = set()
    for entry in catches[: config.max_distilled]:
        index = int(entry["index"])
        stack = str(entry["stack"])
        pair = pairs.get(index)
        if pair is None:
            # Caught before a checkpoint resume: re-synthesize (deterministic).
            pair = synthesize_pair(
                config.seed + index,
                config=campaign_config_for_size(config.size),
                verdict=_verdict_for_index(index),
            )
        name = scenario_name_for(pair, config.size, stack)
        if name in seen:
            continue
        seen.add(name)
        checker_config = _stack_config(stack, config)

        def still_disagrees(candidate: SynthesizedPair) -> bool:
            job = EquivalenceJob(
                candidate.left, candidate.left_start,
                candidate.right, candidate.right_start,
                config=checker_config,
                find_counterexamples=True,
                job_id=f"{candidate.name}:{stack}",
            )
            [result] = probe_engine.run([job])
            observed = _observed(result)
            return observed is not None and observed != candidate.verdict

        original_steps = len(pair.chain)
        reduced = delta_debug_chain(pair, still_disagrees)
        reduced = minimize_pair_witness(reduced)
        source = render_scenario_module(
            reduced,
            size=config.size,
            stack=stack,
            observed=str(entry["observed"]),
            campaign_seed=config.seed,
            original_steps=original_steps,
        )
        os.makedirs(config.distill_dir, exist_ok=True)
        path = os.path.join(config.distill_dir, f"{name}.py")
        previous = None
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                previous = handle.read()
        if previous != source:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(source)
        if log is not None:
            log(f"distilled {entry['pair']} ({stack}) -> {path}")
        distilled.append({
            "scenario": name,
            "module": f"{name}.py",
            "index": index,
            "seed": pair.seed,
            "stack": stack,
            "expected": reduced.verdict,
            "observed": entry["observed"],
            "steps_before": original_steps,
            "steps_after": len(reduced.chain),
            "witness_bits": (
                reduced.witness.width if reduced.witness is not None else None
            ),
        })
    return distilled


def run_campaign(
    config: CampaignConfig,
    engine_factory: Optional[EngineFactory] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run (or resume) a campaign and return its merged report.

    ``engine_factory`` (worker count -> engine) exists for tests that need to
    interpose on the engine — e.g. planting a lying verdict to prove the
    distillation pipeline catches it; the default builds a plain
    :class:`~repro.core.engine.EquivalenceEngine`.  ``log`` receives one-line
    progress strings (shard/chunk boundaries, distillation notes).
    """
    if engine_factory is None:
        engine_factory = _default_engine_factory(config)
    stacks = config.resolved_stacks()
    shards = [config.shard] if config.shard is not None else list(range(config.shards))
    engine = engine_factory(config.jobs)
    started = time.perf_counter()
    outcomes: List[ShardOutcome] = []
    pairs: Dict[int, SynthesizedPair] = {}
    for shard in shards:
        indices = config.shard_indices(shard)
        outcome = _load_checkpoint(config, shard)
        if outcome is None:
            outcome = ShardOutcome(shard=shard, indices=len(indices))
        elif log is not None and outcome.resumed_from:
            log(
                f"shard {shard}: resuming after "
                f"{outcome.resumed_from}/{len(indices)} pairs"
            )
        remaining = indices[outcome.completed:]
        for offset in range(0, len(remaining), config.chunk_size):
            chunk = remaining[offset: offset + config.chunk_size]
            _check_chunk(config, engine, stacks, chunk, outcome, pairs)
            _write_checkpoint(config, outcome)
            if log is not None:
                log(
                    f"shard {shard}: {outcome.completed}/{len(indices)} pairs, "
                    f"{len(outcome.disagreements)} disagreement(s)"
                )
        outcomes.append(outcome)
    distilled = _distill(config, outcomes, pairs, engine_factory, log)
    report = CampaignReport(
        config={
            "pairs": config.pairs,
            "shards": config.shards,
            "shard": config.shard,
            "seed": config.seed,
            "size": config.size,
            "differential": config.differential,
            "stacks": list(stacks),
            "oracle_packets": config.oracle_packets,
            "chunk_size": config.chunk_size,
        },
        shards=[outcome.as_dict() for outcome in outcomes],
        distilled=distilled,
        elapsed=time.perf_counter() - started,
    )
    return report
