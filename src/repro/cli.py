"""Command-line interface.

``leapfrog-repro`` exposes the main workflows:

* ``check LEFT.p4a RIGHT.p4a --left-start q1 --right-start q3`` — parse two
  automata from their surface syntax and check language equivalence;
* ``table [--full] [--case NAME ...]`` — run the Table 2 case studies and print
  the results in the paper's row format;
* ``list`` — list the registered case studies;
* ``dump-scenario NAME`` — print a parser-gen scenario as a P4 automaton (and
  optionally its compiled hardware table).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__, envconfig
from .core.algorithm import CheckerConfig
from .core.equivalence import check_language_equivalence
from .p4a.pretty import pretty
from .p4a.surface import parse_automaton
from .parsergen import compile_graph, graph_to_p4a, scenario
from .reporting import case_studies, render_markdown, render_text, run_cases


def _jobs_argument(value: str) -> int:
    """argparse type for ``--jobs``: a validated positive integer."""
    try:
        return envconfig.parse_jobs(value, source="--jobs")
    except envconfig.EnvConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="leapfrog-repro",
        description="Certified equivalence checking for P4 protocol parsers (Leapfrog reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check language equivalence of two parsers")
    check.add_argument("left", help="path to the left parser (surface syntax)")
    check.add_argument("right", help="path to the right parser (surface syntax)")
    check.add_argument("--left-start", required=True, help="start state of the left parser")
    check.add_argument("--right-start", required=True, help="start state of the right parser")
    check.add_argument("--no-leaps", action="store_true", help="disable the leaps optimization")
    check.add_argument(
        "--no-reachability", action="store_true", help="disable reachable-pair pruning"
    )
    check.add_argument(
        "--no-counterexample", action="store_true", help="skip the counterexample search"
    )
    check.add_argument(
        "--no-cache", action="store_true",
        help="disable the solver-query cache entirely (overrides --cache-dir)",
    )
    check.add_argument(
        "--cache-dir", help="persist the solver-query cache to this directory"
    )
    check.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental solver session (one-shot query per check)",
    )

    table = sub.add_parser("table", help="run the Table 2 case studies")
    table.add_argument("--full", action="store_true", help="use paper-sized parsers")
    table.add_argument("--case", action="append", help="run only the named case (repeatable)")
    table.add_argument("--markdown", action="store_true", help="emit Markdown instead of text")
    table.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help="run case studies across N worker processes "
             "(default: LEAPFROG_JOBS or 1, sequential)",
    )
    table.add_argument(
        "--cache-dir",
        help="directory for the persistent solver-query cache, shared by all "
             "workers (default: LEAPFROG_CACHE_DIR)",
    )
    table.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-case wall-clock limit (preemptive when --jobs > 1, "
             "after-the-fact when sequential)",
    )
    table.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental solver session in every case's checker",
    )

    sub.add_parser("list", help="list the registered case studies")

    dump = sub.add_parser("dump-scenario", help="print a parser-gen scenario as a P4 automaton")
    dump.add_argument("name", help="scenario name (e.g. edge, datacenter, mini_edge)")
    dump.add_argument("--hardware", action="store_true", help="also print the compiled table")
    return parser


def _command_check(args: argparse.Namespace) -> int:
    with open(args.left) as handle:
        left = parse_automaton(handle.read(), name=args.left)
    with open(args.right) as handle:
        right = parse_automaton(handle.read(), name=args.right)
    cache_dir = args.cache_dir if args.cache_dir is not None else envconfig.cache_dir_from_env()
    if args.no_incremental:
        use_incremental = False
    else:
        env_incremental = envconfig.incremental_from_env()
        use_incremental = True if env_incremental is None else env_incremental
    config = CheckerConfig(
        use_leaps=not args.no_leaps,
        use_reachability=not args.no_reachability,
        use_query_cache=not args.no_cache,
        cache_dir=cache_dir,
        use_incremental=use_incremental,
    )
    result = check_language_equivalence(
        left,
        args.left_start,
        right,
        args.right_start,
        config=config,
        find_counterexamples=not args.no_counterexample,
    )
    print(result)
    if result.proved:
        return 0
    return 1 if result.refuted else 2


def _command_table(args: argparse.Namespace) -> int:
    names = args.case if args.case else None
    jobs = args.jobs if args.jobs is not None else envconfig.jobs_from_env()
    cache_dir = args.cache_dir if args.cache_dir is not None else envconfig.cache_dir_from_env()
    use_incremental = False if args.no_incremental else envconfig.incremental_from_env()
    metrics = run_cases(
        names=names,
        full=args.full,
        jobs=jobs,
        cache_dir=cache_dir,
        timeout=args.timeout,
        use_incremental=use_incremental,
    )
    renderer = render_markdown if args.markdown else render_text
    print(renderer(metrics, title="Table 2 reproduction"))
    return 0


def _command_list(_: argparse.Namespace) -> int:
    for name, study in case_studies().items():
        print(f"{name:30s} [{study.category}]")
    return 0


def _command_dump_scenario(args: argparse.Namespace) -> int:
    graph = scenario(args.name)
    automaton, start = graph_to_p4a(graph)
    print(f"// scenario {args.name}: start state {start}")
    print(pretty(automaton))
    if args.hardware:
        print(compile_graph(graph).dump())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "check": _command_check,
        "table": _command_table,
        "list": _command_list,
        "dump-scenario": _command_dump_scenario,
    }
    try:
        return handlers[args.command](args)
    except envconfig.EnvConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
