"""Command-line interface.

``leapfrog-repro`` exposes the main workflows:

* ``check LEFT.p4a RIGHT.p4a --left-start q1 --right-start q3`` — parse two
  automata from their surface syntax and check language equivalence;
* ``table [--full] [--case NAME ...]`` — run the Table 2 case studies and print
  the results in the paper's row format;
* ``list`` — list the registered case studies;
* ``scenarios list/show/run`` — browse the tagged scenario registry and
  verify a scenario against its expected verdict;
* ``oracle`` — run the differential concrete-oracle fuzz suite over the
  registered scenarios and write reproducible divergence reports;
* ``synth emit/run`` — synthesize seeded automaton pairs with known
  ground-truth verdicts and (``run``) check that the engine agrees with
  every label;
* ``campaign run`` — sharded fuzz campaigns of self-labeled synthesized
  pairs with resumable checkpoints, differential backend-stack
  cross-checking and disagreement distillation (see ``docs/campaign.md``);
* ``dump-scenario NAME`` — print a parser-gen scenario as a P4 automaton (and
  optionally its compiled hardware table);
* ``serve`` — run the persistent equivalence daemon (warm workers fronting a
  content-addressed verdict store; see ``docs/service.md``);
* ``bench report`` — render the committed benchmark-history trend
  (``benchmarks/history/``) and, with ``--check``, gate on performance
  regressions against the rolling baseline.

``check``, ``table``, ``scenarios run`` and ``synth run`` accept ``--server``
(or honour ``LEAPFROG_SERVER``) and then become thin clients of a running
daemon, with byte-identical output to the in-process path.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__, envconfig
from .core.algorithm import CheckerConfig
from .core.equivalence import check_language_equivalence
from .p4a.pretty import pretty
from .p4a.surface import parse_automaton
from .parsergen import compile_graph, graph_to_p4a
from .reporting import case_studies, render_markdown, render_text, run_cases
# Imported from the registry module directly: pulling in `repro.scenarios`
# would populate the whole catalog on every CLI start-up, even for commands
# that never touch it.
from .scenarios.registry import ScenarioLookupError


def _jobs_argument(value: str) -> int:
    """argparse type for ``--jobs``: a validated positive integer."""
    try:
        return envconfig.parse_jobs(value, source="--jobs")
    except envconfig.EnvConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _count_argument(value: str) -> int:
    """argparse type for ``--count``: a validated positive integer."""
    try:
        return envconfig.parse_jobs(value, source="--count")
    except envconfig.EnvConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _oracle_argument(value: str) -> int:
    """argparse type for ``--oracle-packets``: a validated non-negative count."""
    try:
        parsed = envconfig.parse_oracle_packets(value, source="--oracle-packets")
    except envconfig.EnvConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return parsed if parsed is not None else 0


def _clause_db_argument(value: str) -> int:
    """argparse type for ``--clause-db-max``: a validated non-negative cap."""
    try:
        parsed = envconfig.parse_clause_db(value, source="--clause-db-max")
    except envconfig.EnvConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return parsed if parsed is not None else 0


def _seed_argument(value: str) -> int:
    """argparse type for ``--seed``: a validated integer."""
    try:
        parsed = envconfig.parse_seed(value, source="--seed")
    except envconfig.EnvConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return parsed if parsed is not None else 0


def _add_server_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server", metavar="ADDR",
        help="send the work to a running `leapfrog-repro serve` daemon at "
             "ADDR (a unix-socket path or http://host:port) instead of "
             "checking in-process (default: LEAPFROG_SERVER or off)",
    )


def _server_setting(args: argparse.Namespace) -> Optional[str]:
    """The daemon address from ``--server``, falling back to the environment."""
    if vars(args).get("server"):
        return args.server
    return envconfig.server_from_env()


def _add_solver_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--solver", choices=envconfig.SOLVER_CHOICES, default=None,
        help="solver backend for entailment queries; external choices "
             "(z3, cvc5, cvc4, boolector) must be on PATH "
             "(default: LEAPFROG_SOLVER or the internal CDCL solver)",
    )
    parser.add_argument(
        "--portfolio", action="store_true",
        help="race the internal solver against every external solver found "
             "on PATH, first definitive answer wins (default: "
             "LEAPFROG_PORTFOLIO or off; excludes an external --solver)",
    )
    parser.add_argument(
        "--clause-db-max", type=_clause_db_argument, default=None, metavar="N",
        help="cap the internal CDCL solver's learned-clause database at N "
             "clauses, periodically deleting high-LBD inactive clauses "
             "(0 keeps every learned clause; also accepts on/off; default: "
             f"LEAPFROG_CLAUSE_DB or {envconfig.DEFAULT_CLAUSE_DB_MAX})",
    )


def _solver_settings(args: argparse.Namespace):
    """(solver, portfolio) from flags, falling back to the environment.

    External solver choices are validated against PATH here, before any
    work (or worker process) starts, so a missing binary is a clean exit 2
    instead of a per-job error deep inside a pool.
    """
    from .smt.backend import BackendError, EXTERNAL_SOLVER_COMMANDS

    solver = args.solver if args.solver is not None else envconfig.solver_from_env()
    portfolio = args.portfolio or bool(envconfig.portfolio_from_env())
    if portfolio and solver not in (None, "", "internal", "cdcl"):
        raise BackendError(
            "--portfolio already races every available solver; "
            f"it cannot be combined with --solver {solver}"
        )
    if solver in EXTERNAL_SOLVER_COMMANDS:
        import shutil

        if not shutil.which(EXTERNAL_SOLVER_COMMANDS[solver][0]):
            raise BackendError(f"external solver {solver!r} is not on PATH")
    return solver, portfolio


def _clause_db_setting(args: argparse.Namespace) -> Optional[int]:
    """The learned-clause cap from ``--clause-db-max``, else the environment."""
    if args.clause_db_max is not None:
        return args.clause_db_max
    return envconfig.clause_db_from_env()


def _add_oracle_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--oracle-packets", type=_oracle_argument, default=None, metavar="N",
        help="cross-check every verdict against N seeded random packets run "
             "through both parsers concretely (default: LEAPFROG_ORACLE or off)",
    )
    parser.add_argument(
        "--seed", type=_seed_argument, default=None, metavar="S",
        help="seed for the oracle's packet/store sampler "
             "(default: LEAPFROG_SEED or 0)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="leapfrog-repro",
        description="Certified equivalence checking for P4 protocol parsers (Leapfrog reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check language equivalence of two parsers")
    check.add_argument("left", help="path to the left parser (surface syntax)")
    check.add_argument("right", help="path to the right parser (surface syntax)")
    check.add_argument("--left-start", required=True, help="start state of the left parser")
    check.add_argument("--right-start", required=True, help="start state of the right parser")
    check.add_argument("--no-leaps", action="store_true", help="disable the leaps optimization")
    check.add_argument(
        "--no-reachability", action="store_true", help="disable reachable-pair pruning"
    )
    check.add_argument(
        "--no-counterexample", action="store_true", help="skip the counterexample search"
    )
    check.add_argument(
        "--no-cache", action="store_true",
        help="disable the solver-query cache entirely (overrides --cache-dir)",
    )
    check.add_argument(
        "--cache-dir", help="persist the solver-query cache to this directory"
    )
    check.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental solver session (one-shot query per check)",
    )
    check.add_argument(
        "--no-aig", action="store_true",
        help="disable AIG simplification in the solver's lowering pipeline",
    )
    check.add_argument(
        "--no-minimize", action="store_true",
        help="report counterexamples as extracted, without greedy minimization",
    )
    _add_solver_arguments(check)
    _add_oracle_arguments(check)
    _add_server_argument(check)

    table = sub.add_parser("table", help="run the Table 2 case studies")
    table.add_argument("--full", action="store_true", help="use paper-sized parsers")
    table.add_argument("--case", action="append", help="run only the named case (repeatable)")
    table.add_argument("--markdown", action="store_true", help="emit Markdown instead of text")
    table.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help="run case studies across N worker processes "
             "(default: LEAPFROG_JOBS or 1, sequential)",
    )
    table.add_argument(
        "--cache-dir",
        help="directory for the persistent solver-query cache, shared by all "
             "workers (default: LEAPFROG_CACHE_DIR)",
    )
    table.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-case wall-clock limit (preemptive when --jobs > 1, "
             "after-the-fact when sequential)",
    )
    table.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental solver session in every case's checker",
    )
    table.add_argument(
        "--no-aig", action="store_true",
        help="disable AIG simplification in every case's solver pipeline",
    )
    table.add_argument(
        "--share-clauses", action="store_true",
        help="let workers exchange short learned clauses through a channel "
             "in --cache-dir (requires --cache-dir or LEAPFROG_CACHE_DIR)",
    )
    _add_solver_arguments(table)
    _add_oracle_arguments(table)
    _add_server_argument(table)

    sub.add_parser("list", help="list the registered case studies")

    scenarios = sub.add_parser(
        "scenarios", help="browse and run the tagged scenario registry"
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)

    scenarios_list = scenarios_sub.add_parser(
        "list", help="list registered scenarios (optionally filtered by tag)"
    )
    scenarios_list.add_argument(
        "--family", choices=_scenario_registry().FAMILIES,
        help="only scenarios of this deployment family",
    )
    scenarios_list.add_argument(
        "--size", choices=_scenario_registry().SIZES,
        help="only scenarios of this scale",
    )
    scenarios_list.add_argument(
        "--verdict", choices=_scenario_registry().VERDICTS,
        help="only scenarios with this expected verdict",
    )
    scenarios_list.add_argument(
        "--kind", choices=_scenario_registry().KINDS,
        help="only scenarios of this kind",
    )
    scenarios_list.add_argument(
        "--json", action="store_true", help="emit the catalog as JSON"
    )

    scenarios_show = scenarios_sub.add_parser(
        "show", help="show one scenario's tags, structure and description"
    )
    scenarios_show.add_argument("name", help="scenario name (see `scenarios list`)")

    scenarios_run = scenarios_sub.add_parser(
        "run",
        help="check a scenario's equivalence and compare against its "
             "expected verdict (exit 0 on a match)",
    )
    scenarios_run.add_argument("name", help="scenario name (see `scenarios list`)")
    scenarios_run.add_argument(
        "--no-counterexample", action="store_true",
        help="skip the counterexample search; an expected-inequivalent "
             "scenario can then only be confirmed by the concrete oracle "
             "(--oracle-packets), and exits 2 otherwise",
    )
    _add_oracle_arguments(scenarios_run)
    _add_server_argument(scenarios_run)

    oracle = sub.add_parser(
        "oracle",
        help="run the differential concrete-oracle fuzz suite over scenarios",
    )
    oracle.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="fuzz only the named scenario (repeatable; default: every mini "
             "scenario, or all scenarios with --all)",
    )
    oracle.add_argument(
        "--all", action="store_true", help="fuzz every registered scenario"
    )
    oracle.add_argument(
        "--packets", type=_oracle_argument, default=None, metavar="N",
        help="packets per cross-check (default: LEAPFROG_ORACLE or "
             f"{envconfig.DEFAULT_ORACLE_PACKETS})",
    )
    oracle.add_argument(
        "--seed", type=_seed_argument, default=None, metavar="S",
        help="sampler seed (default: LEAPFROG_SEED or 0)",
    )
    oracle.add_argument(
        "--report-dir", metavar="DIR",
        help="write summary.json plus one JSON report per diverging scenario "
             "(seed, packets, stores) into DIR",
    )
    oracle.add_argument(
        "--no-translation", action="store_true",
        help="skip the compiled-hardware translation cross-check",
    )

    synth = sub.add_parser(
        "synth",
        help="synthesize seeded automaton pairs with known ground-truth verdicts",
    )
    synth_sub = synth.add_subparsers(dest="synth_command", required=True)

    def _add_synth_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--count", type=_count_argument, default=20, metavar="N",
            help="number of pairs to synthesize (default: 20)",
        )
        subparser.add_argument(
            "--seed", type=_seed_argument, default=None, metavar="S",
            help="base seed; pair i uses seed S+i (default: LEAPFROG_SEED or 0)",
        )
        subparser.add_argument(
            "--size", choices=("mini", "full"), default="mini",
            help="generator envelope (default: mini)",
        )
        subparser.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )

    synth_emit = synth_sub.add_parser(
        "emit", help="synthesize pairs and print them without checking"
    )
    _add_synth_arguments(synth_emit)
    synth_emit.add_argument(
        "--pretty", action="store_true",
        help="also print both automata of every pair in surface syntax",
    )

    synth_run = synth_sub.add_parser(
        "run",
        help="synthesize pairs, check each with the engine and compare "
             "against the ground-truth label (exit 0 when all agree)",
    )
    _add_synth_arguments(synth_run)
    synth_run.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help="check pairs across N worker processes "
             "(default: LEAPFROG_JOBS or 1, sequential)",
    )
    synth_run.add_argument(
        "--oracle-packets", type=_oracle_argument, default=None, metavar="N",
        help="cross-check every verdict against N seeded concrete packets "
             f"(default: LEAPFROG_ORACLE or {envconfig.DEFAULT_ORACLE_PACKETS}; "
             "0 disables)",
    )
    _add_server_argument(synth_run)

    campaign = sub.add_parser(
        "campaign",
        help="run sharded fuzz campaigns of self-labeled synthesized pairs "
             "and distill every engine/label disagreement into a regression "
             "scenario",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_run = campaign_sub.add_parser(
        "run",
        help="synthesize, check and cross-check PAIRS pairs across shards; "
             "exit 0 when every verdict matches its label",
    )
    campaign_run.add_argument(
        "--pairs", type=_count_argument, required=True, metavar="N",
        help="total number of pairs in the campaign (split across shards)",
    )
    campaign_run.add_argument(
        "--shards", type=_jobs_argument, default=None, metavar="K",
        help="split the campaign into K interleaved shards "
             "(default: LEAPFROG_SHARDS or 1)",
    )
    campaign_run.add_argument(
        "--shard", type=int, default=None, metavar="K",
        help="run only shard K of --shards (0-based; default: every shard "
             "in sequence)",
    )
    campaign_run.add_argument(
        "--seed", type=_seed_argument, default=None, metavar="S",
        help="campaign base seed; pair i uses seed S+i "
             "(default: LEAPFROG_SEED or 0)",
    )
    campaign_run.add_argument(
        "--size", choices=("mini", "full"), default="mini",
        help="campaign generator envelope (default: mini)",
    )
    campaign_run.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help="check pairs across N worker processes "
             "(default: LEAPFROG_JOBS or 1, sequential)",
    )
    campaign_run.add_argument(
        "--differential", action="store_true",
        help="cross-check every pair across the backend stacks (internal, "
             "AIG-off, and — when an external solver is on PATH — portfolio) "
             "in addition to the ground-truth label",
    )
    campaign_run.add_argument(
        "--oracle-packets", type=_oracle_argument, default=None, metavar="N",
        help="also replay N seeded concrete packets per verdict "
             "(default: LEAPFROG_ORACLE or off)",
    )
    campaign_run.add_argument(
        "--chunk-size", type=_count_argument, default=None, metavar="N",
        help="pairs synthesized and checked per engine batch; also the "
             "checkpoint granularity (default: 32)",
    )
    campaign_run.add_argument(
        "--state-dir", metavar="DIR",
        help="directory for resumable per-shard checkpoints; rerunning with "
             "the same parameters continues where the last run stopped",
    )
    campaign_run.add_argument(
        "--distill-dir", metavar="DIR",
        help="write every minimized disagreement into DIR as a deterministic "
             "scenario module (point it at src/repro/scenarios/distilled to "
             "register the catch as a tier-1 regression test)",
    )
    campaign_run.add_argument(
        "--max-distilled", type=_count_argument, default=None, metavar="N",
        help="distill at most N disagreements per campaign (default: 8)",
    )
    campaign_run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-pair solver budget (default: none)",
    )
    campaign_run.add_argument(
        "--report", metavar="PATH",
        help="write the deterministic JSON report to PATH",
    )
    campaign_run.add_argument(
        "--json", action="store_true",
        help="print the JSON report to stdout instead of the human summary",
    )

    bench = sub.add_parser(
        "bench", help="inspect the committed benchmark history"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_report = bench_sub.add_parser(
        "report",
        help="render the normalized benchmark trend from benchmarks/history/ "
             "and (with --check) gate on regressions",
    )
    bench_report.add_argument(
        "--history-dir", metavar="DIR",
        help="history directory (default: benchmarks/history/ in the repo)",
    )
    bench_report.add_argument(
        "--markdown", action="store_true",
        help="emit Markdown instead of text (the docs/benchmarks.md table)",
    )
    bench_report.add_argument(
        "--check", action="store_true",
        help="exit 1 when the newest entry is more than --threshold slower "
             "than the rolling baseline on any benchmark (the CI perf gate)",
    )
    bench_report.add_argument(
        "--threshold", type=float, default=None, metavar="FRACTION",
        help="fractional slowdown versus the rolling baseline that fails "
             "--check (default: 0.15)",
    )
    bench_report.add_argument(
        "--window", type=_count_argument, default=None, metavar="K",
        help="rolling baseline size: the mean of up to K entries preceding "
             "the newest one (default: 3)",
    )

    dump = sub.add_parser("dump-scenario", help="print a parser-gen scenario as a P4 automaton")
    dump.add_argument("name", help="scenario name (e.g. edge, datacenter, mini_edge)")
    dump.add_argument("--hardware", action="store_true", help="also print the compiled table")

    serve = sub.add_parser(
        "serve",
        help="run the persistent equivalence daemon (warm workers + "
             "content-addressed verdict store)",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default="leapfrog.sock",
        help="unix socket to listen on (default: ./leapfrog.sock; created "
             "owner-only)",
    )
    serve.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="listen on http://127.0.0.1:PORT instead of a unix socket "
             "(0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=_jobs_argument, default=None, metavar="N",
        help="warm worker threads (default: LEAPFROG_JOBS or 1)",
    )
    serve.add_argument(
        "--store-dir", metavar="DIR",
        help="directory for the content-addressed verdict store; omitting it "
             "disables the store (every request solves or dedupes)",
    )
    serve.add_argument(
        "--max-store-entries", type=_count_argument, default=None, metavar="N",
        help="evict least-recently-used verdicts beyond N entries "
             "(default: unbounded)",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent solver-query cache shared by the workers (default: "
             "STORE_DIR/query-cache when --store-dir is set, else "
             "LEAPFROG_CACHE_DIR)",
    )
    serve.add_argument(
        "--max-pending", type=_count_argument, default=None, metavar="N",
        help="queue bound before requests are rejected with `overloaded` "
             "(default: 64)",
    )
    serve.add_argument(
        "--stats-json", metavar="PATH",
        help="write the final statistics snapshot to PATH on shutdown",
    )
    return parser


def _command_check(args: argparse.Namespace) -> int:
    with open(args.left) as handle:
        left = parse_automaton(handle.read(), name=args.left)
    with open(args.right) as handle:
        right = parse_automaton(handle.read(), name=args.right)
    cache_dir = args.cache_dir if args.cache_dir is not None else envconfig.cache_dir_from_env()
    if args.no_incremental:
        use_incremental = False
    else:
        env_incremental = envconfig.incremental_from_env()
        use_incremental = True if env_incremental is None else env_incremental
    if args.no_aig:
        use_aig = False
    else:
        env_aig = envconfig.aig_from_env()
        use_aig = True if env_aig is None else env_aig
    oracle_packets, oracle_seed = _oracle_settings(args)
    solver, portfolio = _solver_settings(args)
    config = CheckerConfig(
        use_leaps=not args.no_leaps,
        use_reachability=not args.no_reachability,
        use_query_cache=not args.no_cache,
        cache_dir=cache_dir,
        use_incremental=use_incremental,
        use_aig=use_aig,
        oracle_packets=oracle_packets or 0,
        oracle_seed=oracle_seed,
        minimize_counterexamples=not args.no_minimize,
        solver=solver,
        portfolio=portfolio,
        clause_db_max=_clause_db_setting(args),
    )
    server = _server_setting(args)
    if server is not None:
        # Thin-client mode: the daemon solves (or replays from its verdict
        # store); the display line below is rendered server-side from the
        # real result, so the output is byte-identical to the local path.
        from .service.client import ServiceClient, check_options_from_config

        result = ServiceClient(server).check(
            left, args.left_start, right, args.right_start,
            options=check_options_from_config(
                config, not args.no_counterexample
            ),
        )
    else:
        result = check_language_equivalence(
            left,
            args.left_start,
            right,
            args.right_start,
            config=config,
            find_counterexamples=not args.no_counterexample,
        )
    print(result)
    if result.statistics.oracle:
        oracle = result.statistics.oracle
        if "packets" in oracle and oracle.get("packets"):
            print(
                f"oracle: {oracle.get('divergences', 0)} divergences over "
                f"{oracle['packets']} packets (seed {oracle_seed or 0})"
            )
    if result.proved:
        return 0
    return 1 if result.refuted else 2


def _oracle_settings(args: argparse.Namespace):
    """(packets, seed) from flags, falling back to the environment."""
    packets = (
        args.oracle_packets if args.oracle_packets is not None
        else envconfig.oracle_packets_from_env()
    )
    seed = args.seed if args.seed is not None else envconfig.seed_from_env()
    return packets, seed


def _command_table(args: argparse.Namespace) -> int:
    names = args.case if args.case else None
    jobs = args.jobs if args.jobs is not None else envconfig.jobs_from_env()
    cache_dir = args.cache_dir if args.cache_dir is not None else envconfig.cache_dir_from_env()
    use_incremental = False if args.no_incremental else envconfig.incremental_from_env()
    use_aig = False if args.no_aig else envconfig.aig_from_env()
    oracle_packets, oracle_seed = _oracle_settings(args)
    solver, portfolio = _solver_settings(args)
    if args.share_clauses and cache_dir is None:
        print(
            "error: --share-clauses needs a shared directory; pass "
            "--cache-dir or set LEAPFROG_CACHE_DIR",
            file=sys.stderr,
        )
        return 2
    metrics = run_cases(
        names=names,
        full=args.full,
        jobs=jobs,
        cache_dir=cache_dir,
        timeout=args.timeout,
        use_incremental=use_incremental,
        use_aig=use_aig,
        oracle_packets=oracle_packets,
        oracle_seed=oracle_seed,
        server=_server_setting(args),
        solver=solver,
        portfolio=portfolio or None,
        share_clauses=args.share_clauses or None,
        clause_db_max=_clause_db_setting(args),
    )
    renderer = render_markdown if args.markdown else render_text
    print(renderer(metrics, title="Table 2 reproduction"))
    return 0


def _command_oracle(args: argparse.Namespace) -> int:
    from .oracle.suite import render_suite, run_differential_suite, write_reports
    from .scenarios import mini_names, names as registry_names

    if args.scenario:
        names = args.scenario
    elif args.all:
        names = registry_names()
    else:
        names = mini_names()
    packets = (
        args.packets if args.packets is not None
        else envconfig.oracle_packets_from_env()
    )
    if packets is None:
        # Unset means the default budget; an explicit 0 is honoured (a
        # vacuous run, but the user asked for it).
        packets = envconfig.DEFAULT_ORACLE_PACKETS
    seed = args.seed if args.seed is not None else envconfig.seed_from_env()
    rows = run_differential_suite(
        names=names,
        packets=packets,
        seed=seed if seed is not None else 0,
        include_translation=not args.no_translation,
    )
    print(render_suite(rows))
    if args.report_dir:
        for path in write_reports(rows, args.report_dir):
            print(f"wrote {path}")
    failing = [row for row in rows if not row.ok]
    if failing:
        print(
            f"FAIL: {len(failing)} scenario(s) contradict their expected "
            f"verdict: {', '.join(row.scenario for row in failing)} "
            f"(reproduce with --seed {seed or 0})"
        )
        return 1
    return 0


def _command_list(_: argparse.Namespace) -> int:
    for name, study in case_studies().items():
        print(f"{name:30s} [{study.category}]")
    return 0


def _scenario_registry():
    """The scenario-registry module (imported lazily to keep startup light)."""
    from . import scenarios

    return scenarios


def _render_scenario_table(rows) -> str:
    from .reporting.table import render_fixed_width

    headers = ("Name", "Family", "Size", "Kind", "Expected", "States", "Header bits")
    table = []
    for info in rows:
        states, header_bits, _ = info.structure()
        table.append([
            info.name, info.family, info.size, info.kind, info.verdict,
            str(states), str(header_bits),
        ])
    return render_fixed_width(headers, table)


def _command_scenarios(args: argparse.Namespace) -> int:
    import json

    registry = _scenario_registry()
    if args.scenarios_command == "list":
        rows = registry.filter_scenarios(
            family=args.family, size=args.size, verdict=args.verdict, kind=args.kind
        )
        if args.json:
            records = []
            for info in rows:
                states, header_bits, branched_bits = info.structure()
                records.append({
                    "name": info.name, "family": info.family, "size": info.size,
                    "kind": info.kind, "verdict": info.verdict,
                    "states": states, "header_bits": header_bits,
                    "branched_bits": branched_bits,
                    "description": info.description,
                })
            print(json.dumps(records, indent=2))
        else:
            print(_render_scenario_table(rows))
            print(f"\n{len(rows)} scenario(s)")
        return 0
    if args.scenarios_command == "show":
        info = registry.get(args.name)
        states, header_bits, branched_bits = info.structure()
        print(f"name:         {info.name}")
        print(f"family:       {info.family}")
        print(f"size:         {info.size}")
        print(f"kind:         {info.kind}")
        print(f"expected:     {info.verdict}")
        print(f"states:       {states} (both sides)")
        print(f"header bits:  {header_bits}")
        print(f"branched bits: {branched_bits}")
        print(f"description:  {info.description}")
        return 0
    return _command_scenarios_run(args, registry)


def _command_scenarios_run(args: argparse.Namespace, registry) -> int:
    info = registry.get(args.name)
    left, left_start, right, right_start = info.automata()
    oracle_packets, oracle_seed = _oracle_settings(args)
    config = CheckerConfig(
        oracle_packets=oracle_packets or 0,
        oracle_seed=oracle_seed,
    )
    server = _server_setting(args)
    if server is not None:
        from .service.client import ServiceClient, check_options_from_config

        result = ServiceClient(server).check(
            left, left_start, right, right_start,
            options=check_options_from_config(
                config, not args.no_counterexample
            ),
        )
    else:
        result = check_language_equivalence(
            left, left_start, right, right_start, config=config,
            find_counterexamples=not args.no_counterexample,
        )
    print(f"{info.name} [{info.family}/{info.size}] expected {info.verdict}")
    print(result)
    if result.verdict is None:
        hint = (
            " (counterexample search disabled; re-run without "
            "--no-counterexample or add --oracle-packets)"
            if args.no_counterexample else ""
        )
        print(f"MISMATCH: checker returned no verdict{hint}")
        return 2
    observed = "equivalent" if result.proved else "not_equivalent"
    if observed == info.verdict:
        print("OK: verdict matches the registry expectation")
        return 0
    print(f"MISMATCH: observed {observed}")
    return 1


def _command_synth(args: argparse.Namespace) -> int:
    import json

    from .synth import config_for_size, synthesize_batch

    seed = args.seed if args.seed is not None else envconfig.seed_from_env()
    seed = seed if seed is not None else 0
    pairs = synthesize_batch(args.count, seed, config=config_for_size(args.size))
    if args.synth_command == "emit":
        return _synth_emit(args, pairs, seed, json)
    return _synth_run(args, pairs, seed, json)


def _synth_emit(args: argparse.Namespace, pairs, seed: int, json) -> int:
    if args.json:
        records = []
        for pair in pairs:
            record = pair.as_dict()
            record["left"] = pretty(pair.left)
            record["right"] = pretty(pair.right)
            record["left_start"] = pair.left_start
            record["right_start"] = pair.right_start
            records.append(record)
        print(json.dumps({"seed": seed, "size": args.size, "pairs": records},
                         indent=2))
        return 0
    print(_render_synth_table(pairs))
    print(f"\n{len(pairs)} pair(s) from seed {seed} ({args.size})")
    if args.pretty:
        for pair in pairs:
            print(f"\n// {pair.name}: expected {pair.verdict}, "
                  f"transforms: {', '.join(pair.transforms) or '(none)'}")
            print(f"// left start {pair.left_start}")
            print(pretty(pair.left))
            print(f"// right start {pair.right_start}")
            print(pretty(pair.right))
    return 0


def _render_synth_table(pairs, observations=None) -> str:
    from .reporting.table import render_fixed_width

    headers = ["Pair", "Seed", "States", "Bits", "Expected", "Transforms"]
    if observations is not None:
        headers += ["Observed", "Oracle div/pkts", "Agree"]
    table = []
    for index, pair in enumerate(pairs):
        states, bits = pair.structure()
        row = [
            pair.name, str(pair.seed), str(states), str(bits),
            "equiv" if pair.expected_equivalent else "inequiv",
            ",".join(pair.transforms),
        ]
        if observations is not None:
            observed, oracle_cell, agree = observations[index]
            row += [observed, str(oracle_cell), "yes" if agree else "NO"]
        table.append(row)
    return render_fixed_width(tuple(headers), table)


def _synth_run(args: argparse.Namespace, pairs, seed: int, json) -> int:
    """Check every synthesized pair against its ground-truth label.

    Exit codes match ``scenarios run``: 0 when every engine verdict agrees
    with the synthesizer's label (and the concrete oracle contradicts no
    proof), 1 on a disagreement, 2 when any pair gets no verdict at all.
    """
    from .core.engine import EquivalenceEngine, EquivalenceJob

    jobs = args.jobs if args.jobs is not None else envconfig.jobs_from_env()
    packets = (
        args.oracle_packets if args.oracle_packets is not None
        else envconfig.oracle_packets_from_env()
    )
    if packets is None:
        packets = envconfig.DEFAULT_ORACLE_PACKETS
    # The oracle rides on each verdict inside the worker (a proved pair that
    # diverges concretely fails its job), so --jobs parallelizes the
    # concrete replays along with the symbolic checks.
    engine = EquivalenceEngine(
        jobs=jobs,
        oracle_packets=packets or None,
        oracle_seed=seed if packets else None,
        server=_server_setting(args),
    )
    results = engine.run([
        EquivalenceJob(
            pair.left, pair.left_start, pair.right, pair.right_start,
            find_counterexamples=True, job_id=pair.name,
        )
        for pair in pairs
    ])

    observations = []
    mismatches = 0
    stuck = 0
    for pair, result in zip(pairs, results):
        if not result.ok:
            # Includes the oracle contradicting a proof (the worker raises).
            observations.append((result.status, "-", False))
            stuck += 1
            continue
        verdict = result.value.verdict
        if verdict is None:
            observed = "unknown"
        else:
            observed = "equivalent" if verdict else "not_equivalent"
        oracle = result.value.statistics.oracle
        fuzzed = oracle.get("packets", 0)
        divergences = oracle.get("divergences", 0)
        oracle_cell = f"{divergences}/{fuzzed}" if fuzzed else "-"
        agree = observed == pair.verdict
        # A broken pair's stored witness must still replay its divergence.
        if not pair.expected_equivalent:
            agree = agree and pair.replay_witness()
        observations.append((observed, oracle_cell, agree))
        if not agree:
            if observed == "unknown":
                stuck += 1
            else:
                mismatches += 1

    agreeing = sum(1 for _, _, agree in observations if agree)
    summary = (
        f"{agreeing}/{len(pairs)} verdicts agree with ground truth "
        f"(seed {seed}, size {args.size}, oracle {packets} packets)"
    )
    if args.json:
        print(json.dumps({
            "seed": seed, "size": args.size, "oracle_packets": packets,
            "agreeing": agreeing, "pairs": [
                {**pair.as_dict(), "observed": observed,
                 "oracle": oracle_cell, "agree": agree}
                for pair, (observed, oracle_cell, agree)
                in zip(pairs, observations)
            ],
        }, indent=2))
    else:
        print(_render_synth_table(pairs, observations))
        print(f"\n{summary}")
    if mismatches:
        return 1
    if stuck:
        return 2
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    """Run a sharded fuzz campaign (``campaign run``).

    Exit codes follow the report: 0 when every verdict agrees with its
    ground-truth label (and the stacks with each other), 1 on any
    disagreement, 2 when a pair gets no verdict at all.
    """
    import json

    from .campaign import CampaignConfig, CampaignError, run_campaign

    shards = args.shards if args.shards is not None else envconfig.shards_from_env()
    seed = args.seed if args.seed is not None else (envconfig.seed_from_env() or 0)
    jobs = args.jobs if args.jobs is not None else envconfig.jobs_from_env()
    packets = (
        args.oracle_packets if args.oracle_packets is not None
        else envconfig.oracle_packets_from_env()
    )
    try:
        config = CampaignConfig(
            pairs=args.pairs,
            shards=shards,
            seed=seed,
            size=args.size,
            jobs=jobs,
            differential=args.differential,
            oracle_packets=packets or 0,
            timeout=args.timeout,
            chunk_size=args.chunk_size if args.chunk_size is not None else 32,
            shard=args.shard,
            state_dir=args.state_dir,
            distill_dir=args.distill_dir,
            max_distilled=(
                args.max_distilled if args.max_distilled is not None else 8
            ),
        )
        # Progress goes to stderr so `--json > report.json` stays clean.
        report = run_campaign(
            config, log=lambda line: print(line, file=sys.stderr)
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    else:
        totals = report.totals
        print(
            f"{totals['agreements']}/{totals['completed']} verdicts agree "
            f"with ground truth (seed {seed}, size {args.size}, "
            f"{shards} shard(s), stacks: {', '.join(report.config['stacks'])})"
        )
        print(
            f"{totals['disagreements']} disagreement(s), "
            f"{totals['cross_stack']} cross-stack split(s), "
            f"{totals['failures']} failure(s); "
            f"{len(report.distilled)} distilled; "
            f"{report.pairs_per_second:.1f} pairs/s"
        )
        for entry in report.distilled:
            print(f"  distilled {entry['scenario']} -> {entry['module']}")
    return report.exit_code


def _command_dump_scenario(args: argparse.Namespace) -> int:
    info = _scenario_registry().get(args.name)
    graph = info.graph()
    if graph is None:
        print(
            f"error: scenario {args.name!r} is an automaton pair, not a parse "
            f"graph; use `scenarios show {args.name}` or `scenarios run "
            f"{args.name}` instead",
            file=sys.stderr,
        )
        return 2
    automaton, start = graph_to_p4a(graph)
    print(f"// scenario {args.name}: start state {start}")
    print(pretty(automaton))
    if args.hardware:
        print(compile_graph(graph).dump())
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .docsgen import repo_root
    from .reporting.history import HistoryError, history_dir, load_history
    from .reporting.trend import (
        DEFAULT_THRESHOLD,
        DEFAULT_WINDOW,
        check_regressions,
        render_trend_markdown,
        render_trend_text,
    )

    directory = (
        Path(args.history_dir) if args.history_dir
        else history_dir(repo_root())
    )
    try:
        entries = load_history(directory)
    except HistoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderer = render_trend_markdown if args.markdown else render_trend_text
    print(renderer(entries).rstrip("\n"))
    if args.check:
        threshold = (
            args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        )
        window = args.window if args.window is not None else DEFAULT_WINDOW
        regressions = check_regressions(
            entries, threshold=threshold, window=window
        )
        if regressions:
            print(
                f"FAIL: {len(regressions)} benchmark(s) regressed more than "
                f"{threshold:.0%} against the rolling baseline:",
                file=sys.stderr,
            )
            for regression in regressions:
                print(f"  {regression.describe()}", file=sys.stderr)
            return 1
        print(f"regression gate passed (threshold {threshold:.0%})")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import os

    from .service.core import ServiceConfig
    from .service.server import ServerStartupError, serve

    workers = args.workers if args.workers is not None else envconfig.jobs_from_env()
    cache_dir = args.cache_dir
    if cache_dir is None:
        if args.store_dir:
            # Keep the query cache next to the verdict store so a warm store
            # also means warm solver queries for the replay path.
            cache_dir = os.path.join(args.store_dir, "query-cache")
        else:
            cache_dir = envconfig.cache_dir_from_env()
    config = ServiceConfig(
        workers=workers,
        store_dir=args.store_dir,
        max_store_entries=args.max_store_entries,
        cache_dir=cache_dir,
        max_pending=args.max_pending if args.max_pending is not None else 64,
    )
    try:
        serve(
            config=config,
            socket_path=None if args.http is not None else args.socket,
            http_port=args.http,
            stats_json=args.stats_json,
        )
    except ServerStartupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "check": _command_check,
        "table": _command_table,
        "list": _command_list,
        "scenarios": _command_scenarios,
        "oracle": _command_oracle,
        "synth": _command_synth,
        "campaign": _command_campaign,
        "dump-scenario": _command_dump_scenario,
        "serve": _command_serve,
        "bench": _command_bench,
    }
    try:
        return handlers[args.command](args)
    except envconfig.EnvConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ScenarioLookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _backend_error() as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _service_error() as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _service_error():
    """The client's error type, imported lazily like the client itself."""
    from .service.client import ServiceError

    return ServiceError


def _backend_error():
    """The solver stack's error type (bad --solver/--portfolio combinations)."""
    from .smt.backend import BackendError

    return BackendError


if __name__ == "__main__":
    sys.exit(main())
