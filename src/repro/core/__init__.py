"""The Leapfrog core: symbolic equivalence checking with leaps."""

from .algorithm import (
    CheckerConfig,
    CheckerError,
    CheckerStatistics,
    PreBisimResult,
    PreBisimulationChecker,
)
from .certificate import Certificate, CertificateCheckResult, verify_certificate
from .counterexample import (
    Counterexample,
    CounterexampleSearch,
    CounterexampleStatistics,
    find_counterexample,
)
from .engine import (
    CaseJob,
    EngineError,
    EngineStatistics,
    EquivalenceEngine,
    EquivalenceJob,
    JobResult,
)
from .entailment import EntailmentChecker, EntailmentOutcome
from .equivalence import (
    EquivalenceResult,
    check_initial_store_independence,
    check_language_equivalence,
    check_store_relation,
)
from .init_rels import initial_relation
from .naive import (
    DifferentialMismatch,
    ExplicitCheckResult,
    exhaustive_store_equivalence,
    explicit_bisimulation_check,
    random_differential_test,
)
from .reachability import ReachabilityAnalysis
from .templates import GuardedFormula, Template, TemplatePair, guard, leap_size
from .wp import wp_formula, wp_set

__all__ = [
    "CaseJob",
    "Certificate",
    "CertificateCheckResult",
    "CheckerConfig",
    "CheckerError",
    "CheckerStatistics",
    "Counterexample",
    "CounterexampleSearch",
    "CounterexampleStatistics",
    "DifferentialMismatch",
    "EngineError",
    "EngineStatistics",
    "EntailmentChecker",
    "EntailmentOutcome",
    "EquivalenceEngine",
    "EquivalenceJob",
    "EquivalenceResult",
    "JobResult",
    "ExplicitCheckResult",
    "GuardedFormula",
    "PreBisimResult",
    "PreBisimulationChecker",
    "ReachabilityAnalysis",
    "Template",
    "TemplatePair",
    "check_initial_store_independence",
    "check_language_equivalence",
    "check_store_relation",
    "exhaustive_store_equivalence",
    "explicit_bisimulation_check",
    "find_counterexample",
    "guard",
    "initial_relation",
    "leap_size",
    "random_differential_test",
    "verify_certificate",
    "wp_formula",
    "wp_set",
]
