"""The symbolic pre-bisimulation algorithm (Algorithm 1 with Section 5 optimizations).

``PreBisimulationChecker`` computes (an over-approximation of) the weakest
symbolic bisimulation — with leaps when enabled — restricted to template pairs
reachable from the start pair.  The worklist maintains a frontier ``T`` of
candidate conjuncts; each iteration either *skips* a conjunct already entailed
by the relation ``R`` built so far, or *extends* ``R`` with it and schedules
its weakest preconditions.  When the frontier empties, the *done* step checks
that the initial formula entails every conjunct at the start templates.

On success the result carries a :class:`~repro.core.certificate.Certificate`
that an independent checker can re-validate; on failure it records which
conjunct could not be established, which the counterexample search uses as a
hint.
"""

from __future__ import annotations

import time
import tracemalloc
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

from ..logic.confrel import FTrue, Formula, TRUE
from ..logic.simplify import simplify_formula
from ..p4a.bitvec import Bits
from ..p4a.syntax import P4Automaton
from ..p4a.typing import check_automaton
from ..smt.backend import SolverBackend
from ..smt.cache import make_backend
from .certificate import Certificate
from .entailment import EntailmentChecker, EXACT
from .init_rels import initial_relation
from .reachability import ReachabilityAnalysis
from .templates import GuardedFormula, Template, TemplatePair
from .wp import wp_formula


class CheckerError(Exception):
    """Raised when the checker cannot run (bad configuration, ill-typed input)."""


@dataclass
class CheckerConfig:
    """Tunable behaviour of the pre-bisimulation checker.

    ``use_leaps`` and ``use_reachability`` correspond to the two optimizations
    of Section 5 and exist primarily so the ablation benchmarks can disable
    them.  ``entailment_mode`` selects the fast or exact entailment strategy.

    ``use_query_cache`` memoizes solver queries by structural fingerprint for
    the duration of the run; ``cache_dir`` additionally persists the memo to a
    sqlite store shared across runs and across engine workers.  Both only
    apply when the checker builds its own backend (an explicitly supplied
    backend is used as-is).

    ``use_incremental`` routes entailment queries through one live
    assumption-based solver session per run (premises encoded once, learned
    clauses retained) instead of a fresh bit-blast + SAT run per query; it is
    on by default and exists as a switch for the ablation benchmarks.

    ``use_aig`` enables simplification (constant propagation, structural
    rewriting, subsumption and graph-level query collapse) in the shared AIG
    lowering pipeline of the internal solver; off, the same pipeline runs in
    pure interning mode, matching the legacy encoder clause for clause.  Like
    ``use_incremental`` it exists for the ablation benchmarks.

    ``oracle_packets`` enables the differential concrete oracle: after a
    language-equivalence verdict, that many seeded random packets are run
    through both parsers concretely — an ``equivalent`` verdict contradicted
    by any packet raises (fail loudly, it is a soundness bug), an ``unknown``
    verdict contradicted by a packet is promoted to a refutation with a
    concrete witness.  ``oracle_seed`` makes the sample reproducible
    (``LEAPFROG_SEED``); ``minimize_counterexamples`` shrinks every extracted
    witness by greedy leap/bit drops plus bounded symbolic re-solves before
    it is reported.

    ``solver`` selects which solver backend answers entailment queries (one
    of :data:`repro.envconfig.SOLVER_CHOICES`; ``None`` means the internal
    CDCL solver, honouring ``LEAPFROG_SOLVER`` only through the CLI layer).
    ``portfolio`` instead races the internal solver against every external
    solver found on PATH, first definitive answer wins; it cannot be
    combined with an explicit external ``solver``.  ``share_clauses``
    exports short learned clauses keyed by structural AIG fingerprints to a
    channel in ``cache_dir`` so concurrent engine workers warm each other's
    solvers; it requires ``cache_dir``.  All three only apply when the
    checker builds its own backend.

    ``clause_db_max`` caps the internal CDCL solver's learned-clause
    database: reductions delete high-LBD inactive learned clauses once a
    geometrically growing budget is exceeded (see
    :mod:`repro.smt.sat.solver`).  ``None`` means the solver default (on);
    ``0`` disables reduction and keeps every learned clause forever, the
    pre-database behaviour kept for the ablation benchmarks.  A pure
    performance knob: verdicts are unaffected, so it stays outside the
    service/campaign configuration fingerprints.
    """

    use_leaps: bool = True
    use_reachability: bool = True
    entailment_mode: str = EXACT
    max_iterations: int = 200_000
    track_memory: bool = True
    frontier_order: str = "fifo"  # or "lifo"
    use_query_cache: bool = True
    cache_dir: Optional[str] = None
    use_incremental: bool = True
    use_aig: bool = True
    oracle_packets: int = 0
    oracle_seed: Optional[int] = None
    minimize_counterexamples: bool = True
    solver: Optional[str] = None
    portfolio: bool = False
    share_clauses: bool = False
    clause_db_max: Optional[int] = None


@dataclass
class CheckerStatistics:
    """Counters describing one checker run (reported in the benchmark tables)."""

    iterations: int = 0
    extended: int = 0
    skipped: int = 0
    wp_formulas: int = 0
    reachable_pairs: int = 0
    relation_size: int = 0
    runtime_seconds: float = 0.0
    peak_memory_bytes: int = 0
    entailment: Dict[str, int] = field(default_factory=dict)
    solver: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    #: Differential-oracle telemetry (packets, divergences, minimization).
    oracle: Dict[str, object] = field(default_factory=dict)
    #: Node/solver accounting of the counterexample search, when one ran.
    counterexample_search: Dict[str, int] = field(default_factory=dict)
    #: SAT models whose concrete replay contradicted the symbolic prediction.
    replay_divergences: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "iterations": self.iterations,
            "extended": self.extended,
            "skipped": self.skipped,
            "wp_formulas": self.wp_formulas,
            "reachable_pairs": self.reachable_pairs,
            "relation_size": self.relation_size,
            "runtime_seconds": self.runtime_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "entailment": dict(self.entailment),
            "solver": dict(self.solver),
            "cache": dict(self.cache),
            "oracle": dict(self.oracle),
            "counterexample_search": dict(self.counterexample_search),
            "replay_divergences": self.replay_divergences,
        }


@dataclass
class PreBisimResult:
    """Outcome of one pre-bisimulation run."""

    proved: bool
    relation: List[GuardedFormula]
    certificate: Optional[Certificate]
    statistics: CheckerStatistics
    failed_conjunct: Optional[GuardedFormula] = None
    failure_model: Optional[Dict[str, Bits]] = None


class PreBisimulationChecker:
    """Runs Algorithm 1 on a pair of automata and start states."""

    def __init__(
        self,
        left_aut: P4Automaton,
        right_aut: P4Automaton,
        left_start: str,
        right_start: str,
        config: Optional[CheckerConfig] = None,
        backend: Optional[SolverBackend] = None,
        initial_pure: Formula = TRUE,
        store_relation: Optional[Formula] = None,
        extra_initial: Optional[Iterable[GuardedFormula]] = None,
        require_equal_acceptance: bool = True,
    ) -> None:
        check_automaton(left_aut)
        check_automaton(right_aut)
        if left_start not in left_aut.states:
            raise CheckerError(f"unknown start state {left_start!r} in {left_aut.name!r}")
        if right_start not in right_aut.states:
            raise CheckerError(f"unknown start state {right_start!r} in {right_aut.name!r}")
        self.left_aut = left_aut
        self.right_aut = right_aut
        self.left_start = left_start
        self.right_start = right_start
        self.config = config or CheckerConfig()
        self._owns_backend = backend is None
        if self.config.share_clauses and self.config.cache_dir is None:
            raise CheckerError("share_clauses requires cache_dir (the clause channel lives there)")
        self.backend = backend if backend is not None else make_backend(
            use_cache=self.config.use_query_cache,
            cache_dir=self.config.cache_dir,
            use_aig=self.config.use_aig,
            solver=self.config.solver,
            portfolio=self.config.portfolio,
            share_dir=self.config.cache_dir if self.config.share_clauses else None,
            clause_db_max=self.config.clause_db_max,
        )
        self.entailment = EntailmentChecker(
            self.backend,
            mode=self.config.entailment_mode,
            use_incremental=self.config.use_incremental,
        )
        self.initial_pure = initial_pure
        self.store_relation = store_relation
        self.extra_initial = list(extra_initial) if extra_initial is not None else None
        self.require_equal_acceptance = require_equal_acceptance
        self.start_pair = TemplatePair(Template(left_start, 0), Template(right_start, 0))

    # ------------------------------------------------------------------

    def _build_reachability(self) -> ReachabilityAnalysis:
        if self.config.use_reachability:
            initial_pairs = [self.start_pair]
        else:
            # The unpruned variant of Theorem 4.6: every template pair is
            # considered reachable.
            from .reachability import full_template_product

            initial_pairs = full_template_product(self.left_aut, self.right_aut)
            if self.start_pair not in initial_pairs:
                initial_pairs.append(self.start_pair)
        return ReachabilityAnalysis(
            self.left_aut, self.right_aut, initial_pairs, use_leaps=self.config.use_leaps
        )

    # ------------------------------------------------------------------

    def run(self) -> PreBisimResult:
        statistics = CheckerStatistics()
        start_time = time.perf_counter()
        caching = self.backend.capabilities.caching
        cache_stats = self.backend.cache_statistics if caching else None
        cache_before = cache_stats.as_dict() if cache_stats is not None else None
        tracking_memory = False
        if self.config.track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            tracking_memory = True
        try:
            result = self._run_loop(statistics)
        finally:
            statistics.runtime_seconds = time.perf_counter() - start_time
            if tracking_memory:
                _, peak = tracemalloc.get_traced_memory()
                statistics.peak_memory_bytes = peak
                tracemalloc.stop()
            elif tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
                statistics.peak_memory_bytes = peak
            statistics.entailment = self.entailment.statistics.as_dict()
            solver_stats = self.backend.statistics
            statistics.solver = {
                "queries": solver_stats.queries,
                "total_time": solver_stats.total_time,
                "max_time": solver_stats.max_time,
                "p99_time": solver_stats.percentile_time(0.99),
            }
            if cache_stats is not None:
                # Delta against the run's start, so a backend shared across
                # several checker runs still reports per-run cache numbers.
                after = cache_stats.as_dict()
                delta = {
                    key: after[key] - cache_before[key]
                    for key in ("hits", "misses", "memory_hits", "disk_hits", "stores")
                }
                lookups = delta["hits"] + delta["misses"]
                delta["hit_rate"] = round(delta["hits"] / lookups, 4) if lookups else 0.0
                statistics.cache = delta
            if self._owns_backend:
                # Release the persistent cache's file handle deterministically
                # (the store reopens transparently if this checker runs again).
                self.backend.close()
        return result

    # ------------------------------------------------------------------

    def _run_loop(self, statistics: CheckerStatistics) -> PreBisimResult:
        reach = self._build_reachability()
        statistics.reachable_pairs = len(reach)
        frontier: Deque[GuardedFormula] = deque(
            initial_relation(
                reach,
                store_relation=self.store_relation,
                extra=self.extra_initial,
                require_equal_acceptance=self.require_equal_acceptance,
            )
        )
        relation: List[GuardedFormula] = []
        relation_by_pair: Dict[TemplatePair, List[Formula]] = {}

        while frontier:
            statistics.iterations += 1
            if statistics.iterations > self.config.max_iterations:
                raise CheckerError(
                    f"exceeded {self.config.max_iterations} iterations; "
                    "the pre-bisimulation did not converge"
                )
            if self.config.frontier_order == "lifo":
                candidate = frontier.pop()
            else:
                candidate = frontier.popleft()
            pure = simplify_formula(candidate.pure)
            if isinstance(pure, FTrue):
                statistics.skipped += 1
                continue
            candidate = GuardedFormula(candidate.pair, pure)
            premises = relation_by_pair.get(candidate.pair, [])
            outcome = self.entailment.check(premises, candidate.pure)
            if outcome.entailed:
                # Skip step: the candidate adds nothing to the relation.
                statistics.skipped += 1
                continue
            # Extend step: add the candidate and schedule its preconditions.
            statistics.extended += 1
            relation.append(candidate)
            relation_by_pair.setdefault(candidate.pair, []).append(candidate.pure)
            for source_pair in reach.predecessors(candidate.pair):
                precondition = wp_formula(
                    self.left_aut,
                    self.right_aut,
                    candidate,
                    source_pair,
                    use_leaps=self.config.use_leaps,
                )
                if isinstance(simplify_formula(precondition.pure), FTrue):
                    continue
                statistics.wp_formulas += 1
                frontier.append(precondition)

        statistics.relation_size = len(relation)
        # Done step: the initial formula must entail the relation at the start pair.
        for conjunct in relation:
            if conjunct.pair != self.start_pair:
                continue
            outcome = self.entailment.check([self.initial_pure], conjunct.pure)
            if not outcome.entailed:
                return PreBisimResult(
                    proved=False,
                    relation=relation,
                    certificate=None,
                    statistics=statistics,
                    failed_conjunct=conjunct,
                    failure_model=outcome.model,
                )
        certificate = Certificate(
            left_name=self.left_aut.name,
            right_name=self.right_aut.name,
            left_start=self.left_start,
            right_start=self.right_start,
            use_leaps=self.config.use_leaps,
            initial_pure=self.initial_pure,
            store_relation=self.store_relation,
            require_equal_acceptance=self.require_equal_acceptance,
            relation=tuple(relation),
            reachable_pairs=tuple(sorted(reach.reachable)),
        )
        return PreBisimResult(
            proved=True,
            relation=relation,
            certificate=certificate,
            statistics=statistics,
        )
