"""Equivalence certificates and their independent re-checker.

The Coq implementation's value proposition is that the proof-search tactic
produces a *certificate* that the Coq kernel re-checks against the mechanised
metatheory.  This reproduction mirrors that architecture: the checker returns
a :class:`Certificate` — essentially the symbolic bisimulation-with-leaps it
constructed — and :func:`verify_certificate` re-validates it from scratch:

1. the recorded template pairs really over-approximate the reachable pairs;
2. the relation rules out acceptance mismatches on every reachable pair
   (and implies the user's store relation where both sides accept);
3. the relation is closed under weakest preconditions along every edge of the
   reachability graph;
4. the initial formula entails the relation at the start templates.

Together with Lemma 5.6 these conditions imply language equivalence (or the
requested relational property), independently of how the certificate was
found.  Every entailment used during verification is *sound* — an "entailed"
answer is only produced from an UNSAT result — so a certificate that passes
verification is trustworthy modulo the solver and the WP/reachability code,
which is exactly the paper's trusted base (Section 6.4) transposed to Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.confrel import FALSE, FTrue, Formula
from ..logic.simplify import simplify_formula
from ..p4a.syntax import P4Automaton
from ..smt.backend import SolverBackend
from .templates import GuardedFormula, Template, TemplatePair


@dataclass(frozen=True)
class Certificate:
    """A self-contained witness of a successful pre-bisimulation run."""

    left_name: str
    right_name: str
    left_start: str
    right_start: str
    use_leaps: bool
    initial_pure: Formula
    store_relation: Optional[Formula]
    require_equal_acceptance: bool
    relation: Tuple[GuardedFormula, ...]
    reachable_pairs: Tuple[TemplatePair, ...]

    @property
    def start_pair(self) -> TemplatePair:
        return TemplatePair(Template(self.left_start, 0), Template(self.right_start, 0))

    def conjuncts_at(self, pair: TemplatePair) -> List[Formula]:
        return [entry.pure for entry in self.relation if entry.pair == pair]

    def summary(self) -> str:
        return (
            f"certificate: {self.left_name}.{self.left_start} ≈ "
            f"{self.right_name}.{self.right_start} "
            f"({len(self.relation)} conjuncts over {len(self.reachable_pairs)} template pairs, "
            f"leaps={'on' if self.use_leaps else 'off'})"
        )


@dataclass
class CertificateCheckResult:
    """Outcome of re-validating a certificate."""

    ok: bool
    failures: List[str] = field(default_factory=list)
    checked_obligations: int = 0

    def __bool__(self) -> bool:
        return self.ok


def verify_certificate(
    certificate: Certificate,
    left_aut: P4Automaton,
    right_aut: P4Automaton,
    backend: Optional[SolverBackend] = None,
    max_obligations: Optional[int] = None,
) -> CertificateCheckResult:
    """Re-validate ``certificate`` against the two automata.

    ``max_obligations`` optionally bounds the number of entailment obligations
    checked (useful in tests on large certificates); when it is hit the result
    is marked as failed with an explanatory message rather than silently
    passing.
    """
    from .entailment import EntailmentChecker, EXACT
    from .reachability import ReachabilityAnalysis
    from .wp import wp_formula

    # The re-checker is a deliberately independent backstop: it stays on the
    # one-shot solving path so a defect in the incremental session machinery
    # cannot corrupt both the proof search and its re-validation.
    checker = EntailmentChecker(backend, mode=EXACT, use_incremental=False)
    result = CertificateCheckResult(ok=True)
    recorded = set(certificate.reachable_pairs)

    def fail(message: str) -> None:
        result.ok = False
        result.failures.append(message)

    def obligation_budget_exceeded() -> bool:
        if max_obligations is not None and result.checked_obligations >= max_obligations:
            fail(f"obligation budget of {max_obligations} exhausted before completion")
            return True
        return False

    def check_entailment(premises: Sequence[Formula], goal: Formula, context: str) -> None:
        result.checked_obligations += 1
        outcome = checker.check(list(premises), goal)
        if not outcome.entailed:
            fail(f"{context}: entailment failed")

    # (1) The recorded pairs over-approximate reachability from the start pair.
    reach = ReachabilityAnalysis(
        left_aut, right_aut, [certificate.start_pair], use_leaps=certificate.use_leaps
    )
    missing = reach.reachable - recorded
    if missing:
        fail(f"reachable template pairs missing from the certificate: {sorted(missing)[:5]}")

    relation_by_pair: Dict[TemplatePair, List[Formula]] = {}
    for entry in certificate.relation:
        relation_by_pair.setdefault(entry.pair, []).append(entry.pure)

    # (2) Acceptance compatibility (and the store relation) on reachable pairs.
    for pair in sorted(reach.reachable):
        if obligation_budget_exceeded():
            return result
        premises = relation_by_pair.get(pair, [])
        if certificate.require_equal_acceptance and pair.accept_mismatch():
            check_entailment(premises, FALSE, f"acceptance compatibility at {pair}")
        if certificate.store_relation is not None and pair.both_accepting():
            check_entailment(
                premises, certificate.store_relation, f"store relation at {pair}"
            )

    # (3) Closure under weakest preconditions along the reachability graph.
    for entry in certificate.relation:
        for source_pair in reach.predecessors(entry.pair):
            if obligation_budget_exceeded():
                return result
            precondition = wp_formula(
                left_aut, right_aut, entry, source_pair, use_leaps=certificate.use_leaps
            )
            if isinstance(simplify_formula(precondition.pure), FTrue):
                continue
            premises = relation_by_pair.get(source_pair, [])
            check_entailment(
                premises, precondition.pure, f"WP closure of {entry.pair} from {source_pair}"
            )

    # (4) The initial formula entails the relation at the start pair.
    for entry in certificate.relation:
        if entry.pair != certificate.start_pair:
            continue
        if obligation_budget_exceeded():
            return result
        check_entailment(
            [certificate.initial_pure], entry.pure, f"initial entailment of {entry.pure}"
        )

    return result
