"""Bounded symbolic search for distinguishing packets.

When the pre-bisimulation fails (or as an independent sanity check), this
module searches for a concrete *counterexample*: a packet — together with
initial stores, since acceptance may depend on never-extracted headers — that
one parser accepts and the other rejects.  The search explores the joint
template graph forwards, keeping a symbolic path condition over the initial
header values and the packet bits consumed so far; acceptance-mismatch pairs
whose path condition is satisfiable yield candidate packets, which are then
confirmed by running both parsers concretely.

The paper's tool does not produce counterexamples (a failed proof search is
simply "stuck"); this is an extension that makes negative results trustworthy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..logic.compile import lower_formula, variable_name
from ..logic.confrel import LEFT, RIGHT, BVExpr, CLit, CVar, Formula, TRUE
from ..logic.folconf import store_variable_name
from ..logic.simplify import mk_and, mk_concat, simplify_formula
from ..p4a.bitvec import Bits
from ..p4a.semantics import Store, accepts
from ..p4a.syntax import P4Automaton, REJECT
from ..smt.backend import InternalBackend, SolverBackend
from ..smt.bvsolver import SatStatus
from .templates import Template, TemplatePair, leap_size
from .wp import (
    exec_ops_symbolic,
    fresh_variable_name,
    initial_symbolic_store,
    transition_conditions,
)


@dataclass
class Counterexample:
    """A packet (plus initial stores) on which the two parsers disagree."""

    packet: Bits
    left_store: Store
    right_store: Store
    left_accepts: bool
    right_accepts: bool

    def __str__(self) -> str:
        return (
            f"packet {self.packet} "
            f"(left {'accepts' if self.left_accepts else 'rejects'}, "
            f"right {'accepts' if self.right_accepts else 'rejects'})"
        )


@dataclass
class _SearchNode:
    pair: TemplatePair
    condition: Formula
    left_env: Dict[str, BVExpr]
    right_env: Dict[str, BVExpr]
    left_buffer: BVExpr
    right_buffer: BVExpr
    leap_vars: Tuple[CVar, ...]


def _forward_leap(
    aut: P4Automaton,
    template: Template,
    leap: int,
    leap_var: CVar,
    env: Dict[str, BVExpr],
    buffer: BVExpr,
) -> List[Tuple[Template, Formula, Dict[str, BVExpr], BVExpr]]:
    """Forward-execute one side by ``leap`` bits from a symbolic state."""
    if template.is_final():
        return [(Template(REJECT, 0), TRUE, env, CLit(Bits("")))]
    needed = aut.op_size(template.state)
    data = mk_concat(buffer, leap_var)
    if template.pos + leap < needed:
        return [(Template(template.state, template.pos + leap), TRUE, env, data)]
    post_env = exec_ops_symbolic(aut, template.state, env, data)
    outcomes = []
    for target, condition in transition_conditions(aut, template.state, post_env).items():
        outcomes.append((Template(target, 0), condition, post_env, CLit(Bits(""))))
    return outcomes


def find_counterexample(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    backend: Optional[SolverBackend] = None,
    max_leaps: int = 32,
    max_packet_bits: int = 4096,
    initial_condition: Formula = TRUE,
) -> Optional[Counterexample]:
    """Search for a distinguishing packet, breadth first over leaps.

    Returns ``None`` when no counterexample is found within the bounds; this is
    *not* a proof of equivalence.
    """
    backend = backend or InternalBackend()
    start = _SearchNode(
        pair=TemplatePair(Template(left_start, 0), Template(right_start, 0)),
        condition=simplify_formula(initial_condition),
        left_env=initial_symbolic_store(left_aut, LEFT),
        right_env=initial_symbolic_store(right_aut, RIGHT),
        left_buffer=CLit(Bits("")),
        right_buffer=CLit(Bits("")),
        leap_vars=(),
    )
    queue = deque([start])
    expansions = 0
    while queue:
        node = queue.popleft()
        if node.pair.accept_mismatch():
            candidate = _try_extract(node, left_aut, left_start, right_aut, right_start, backend)
            if candidate is not None:
                return candidate
            continue
        if len(node.leap_vars) >= max_leaps:
            continue
        consumed = sum(var.var_width for var in node.leap_vars)
        leap = leap_size(left_aut, right_aut, node.pair)
        if consumed + leap > max_packet_bits:
            continue
        if node.pair.left.state == REJECT and node.pair.right.state == REJECT:
            continue  # both stuck in reject; no future mismatch possible
        leap_var = CVar(fresh_variable_name("pkt"), leap)
        left_outcomes = _forward_leap(
            left_aut, node.pair.left, leap, leap_var, node.left_env, node.left_buffer
        )
        right_outcomes = _forward_leap(
            right_aut, node.pair.right, leap, leap_var, node.right_env, node.right_buffer
        )
        for left_target, left_condition, left_env, left_buffer in left_outcomes:
            for right_target, right_condition, right_env, right_buffer in right_outcomes:
                condition = simplify_formula(
                    mk_and([node.condition, left_condition, right_condition])
                )
                successor = _SearchNode(
                    pair=TemplatePair(left_target, right_target),
                    condition=condition,
                    left_env=left_env,
                    right_env=right_env,
                    left_buffer=left_buffer,
                    right_buffer=right_buffer,
                    leap_vars=node.leap_vars + (leap_var,),
                )
                expansions += 1
                if _is_satisfiable(condition, backend):
                    queue.append(successor)
    return None


def _is_satisfiable(condition: Formula, backend: SolverBackend) -> bool:
    lowered = lower_formula(condition)
    return backend.check_sat(lowered).status is not SatStatus.UNSAT


def _try_extract(
    node: _SearchNode,
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    backend: SolverBackend,
) -> Optional[Counterexample]:
    """Solve the node's path condition and confirm the candidate concretely."""
    result = backend.check_sat(lower_formula(node.condition))
    if result.status is not SatStatus.SAT:
        return None
    model = result.model or {}

    def header_value(side: str, aut: P4Automaton, name: str) -> Bits:
        variable = store_variable_name(side, name)
        value = model.get(variable)
        if value is None:
            return Bits.zeros(aut.header_size(name))
        return value

    left_store = {name: header_value(LEFT, left_aut, name) for name in left_aut.headers}
    right_store = {name: header_value(RIGHT, right_aut, name) for name in right_aut.headers}
    packet = Bits("")
    for leap_var in node.leap_vars:
        value = model.get(variable_name(leap_var.name), Bits.zeros(leap_var.var_width))
        packet = packet.concat(value)
    left_accepts = accepts(left_aut, left_start, packet, left_store)
    right_accepts = accepts(right_aut, right_start, packet, right_store)
    if left_accepts == right_accepts:
        return None
    return Counterexample(packet, left_store, right_store, left_accepts, right_accepts)
