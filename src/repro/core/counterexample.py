"""Bounded symbolic search for distinguishing packets.

When the pre-bisimulation fails (or as an independent sanity check), this
module searches for a concrete *counterexample*: a packet — together with
initial stores, since acceptance may depend on never-extracted headers — that
one parser accepts and the other rejects.  The search explores the joint
template graph forwards, keeping a symbolic path condition over the initial
header values and the packet bits consumed so far; acceptance-mismatch pairs
whose path condition is satisfiable yield candidate packets, which are then
confirmed by running both parsers concretely.

Three properties make the search production-grade rather than best-effort:

* **fingerprint-keyed deduplication** — a successor whose template pair and
  *live* path state (condition conjuncts still connected to the symbolic
  environment, plus the environment and buffers themselves, canonicalized
  and fingerprinted) matches an already-visited node is pruned: any mismatch
  reachable from it is reachable from the retained twin, so loops no longer
  re-expand identical nodes until ``max_leaps``;
* **incremental satisfiability** — when the backend offers an
  :class:`~repro.smt.incremental.IncrementalSession`, each path conjunct is
  pushed once behind an activation literal and every per-leap satisfiability
  check (and every minimization re-solve) merely assumes the literals along
  its path, sharing Tseitin encodings and learned clauses across the whole
  search;
* **divergence accounting** — a SAT model whose concrete replay does *not*
  reproduce the predicted acceptance mismatch is a soundness red flag for the
  symbolic pipeline; it is counted in :class:`CounterexampleStatistics` and
  reported with a :class:`RuntimeWarning` instead of being silently dropped.

The paper's tool does not produce counterexamples (a failed proof search is
simply "stuck"); this is an extension that makes negative results trustworthy.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..logic.compile import lower_formula, variable_name
from ..logic.confrel import (
    LEFT,
    RIGHT,
    BVExpr,
    CBuf,
    CConcat,
    CHdr,
    CLit,
    CSlice,
    CVar,
    FAnd,
    FTrue,
    Formula,
    TRUE,
    canonicalize_variables,
)
from ..logic.fingerprint import confrel_fingerprint
from ..logic.folconf import store_variable_name
from ..logic.simplify import mk_and, mk_concat, mk_eq, simplify_formula
from ..p4a.bitvec import Bits
from ..p4a.semantics import Store, accepts
from ..p4a.syntax import P4Automaton, REJECT
from ..smt.backend import InternalBackend, SolverBackend
from ..smt.bvsolver import SatStatus
from .templates import Template, TemplatePair, leap_size
from .wp import exec_ops_symbolic, initial_symbolic_store, transition_conditions


@dataclass
class Counterexample:
    """A packet (plus initial stores) on which the two parsers disagree."""

    packet: Bits
    left_store: Store
    right_store: Store
    left_accepts: bool
    right_accepts: bool
    #: Widths of the leap variables the packet was assembled from (used by the
    #: oracle's minimizer to drop whole leaps at a time); empty when unknown.
    leap_widths: Tuple[int, ...] = ()
    #: Width of the packet before minimization, when the oracle shortened it.
    minimized_from: Optional[int] = None

    def __str__(self) -> str:
        suffix = ""
        if self.minimized_from is not None and self.minimized_from != self.packet.width:
            suffix = f", minimized from {self.minimized_from} bits"
        return (
            f"packet {self.packet} "
            f"(left {'accepts' if self.left_accepts else 'rejects'}, "
            f"right {'accepts' if self.right_accepts else 'rejects'}{suffix})"
        )


@dataclass
class CounterexampleStatistics:
    """Counters describing one (or several re-solved) counterexample searches."""

    expanded: int = 0       # nodes popped and forwarded by one leap
    successors: int = 0     # successor nodes constructed (post-dedup)
    deduped: int = 0        # successors pruned by the visited fingerprint set
    sat_checks: int = 0
    pruned_unsat: int = 0
    enqueued: int = 0
    extractions: int = 0    # SAT mismatch nodes whose model was replayed
    replay_divergences: int = 0  # models whose concrete replay disagreed
    resolves: int = 0       # additional bounded searches issued by minimization

    def as_dict(self) -> Dict[str, int]:
        return {
            "expanded": self.expanded,
            "successors": self.successors,
            "deduped": self.deduped,
            "sat_checks": self.sat_checks,
            "pruned_unsat": self.pruned_unsat,
            "enqueued": self.enqueued,
            "extractions": self.extractions,
            "replay_divergences": self.replay_divergences,
            "resolves": self.resolves,
        }


@dataclass
class _SearchNode:
    pair: TemplatePair
    condition: Formula
    left_env: Dict[str, BVExpr]
    right_env: Dict[str, BVExpr]
    left_buffer: BVExpr
    right_buffer: BVExpr
    leap_vars: Tuple[CVar, ...]
    activations: Tuple[int, ...] = ()


def _forward_leap(
    aut: P4Automaton,
    template: Template,
    leap: int,
    leap_var: CVar,
    env: Dict[str, BVExpr],
    buffer: BVExpr,
) -> List[Tuple[Template, Formula, Dict[str, BVExpr], BVExpr]]:
    """Forward-execute one side by ``leap`` bits from a symbolic state."""
    if template.is_final():
        return [(Template(REJECT, 0), TRUE, env, CLit(Bits("")))]
    needed = aut.op_size(template.state)
    data = mk_concat(buffer, leap_var)
    if template.pos + leap < needed:
        return [(Template(template.state, template.pos + leap), TRUE, env, data)]
    post_env = exec_ops_symbolic(aut, template.state, env, data)
    outcomes = []
    for target, condition in transition_conditions(aut, template.state, post_env).items():
        outcomes.append((Template(target, 0), condition, post_env, CLit(Bits(""))))
    return outcomes


# ---------------------------------------------------------------------------
# Live-projection fingerprints for the visited set
# ---------------------------------------------------------------------------


def _expr_tokens(expr: BVExpr, into: Set[tuple]) -> None:
    if isinstance(expr, CVar):
        into.add(("v", expr.name))
    elif isinstance(expr, CHdr):
        into.add(("h", expr.side, expr.name))
    elif isinstance(expr, CBuf):
        into.add(("b", expr.side))
    elif isinstance(expr, CSlice):
        _expr_tokens(expr.expr, into)
    elif isinstance(expr, CConcat):
        _expr_tokens(expr.left, into)
        _expr_tokens(expr.right, into)


def _formula_tokens(formula: Formula) -> Set[tuple]:
    from ..logic.confrel import iter_exprs

    tokens: Set[tuple] = set()
    for expr in iter_exprs(formula):
        _expr_tokens(expr, tokens)
    return tokens


def _flatten_and(formula: Formula) -> List[Formula]:
    if isinstance(formula, FAnd):
        parts: List[Formula] = []
        for operand in formula.operands:
            parts.extend(_flatten_and(operand))
        return parts
    if isinstance(formula, FTrue):
        return []
    return [formula]


class _VisitedSet:
    """Fingerprint-keyed dominance pruning for search nodes.

    Two nodes with the same fingerprint reach exactly the same future
    mismatches *modulo the search bounds* — but the bounds matter: a twin
    that consumed fewer packet bits (or fewer leaps) has more budget left, so
    it may reach mismatches the earlier twin cannot.  Each fingerprint
    therefore keeps the Pareto frontier of ``(consumed bits, leap depth)``
    pairs seen so far, and a new node is pruned only when some retained twin
    dominates it on both coordinates.  Loop iterations (same live state,
    strictly more consumed and deeper) are always dominated — the common
    case the visited set exists for — while a cheaper late-discovered twin
    is still explored.
    """

    def __init__(self) -> None:
        self._frontier: Dict[Tuple[TemplatePair, str], List[Tuple[int, int]]] = {}

    def dominated(self, node: _SearchNode) -> bool:
        """True (and no insertion) iff a retained twin dominates ``node``."""
        key = _node_fingerprint(node)
        consumed = sum(var.var_width for var in node.leap_vars)
        depth = len(node.leap_vars)
        entries = self._frontier.setdefault(key, [])
        for seen_consumed, seen_depth in entries:
            if seen_consumed <= consumed and seen_depth <= depth:
                return True
        entries[:] = [
            (c, d) for c, d in entries if not (consumed <= c and depth <= d)
        ]
        entries.append((consumed, depth))
        return False


def _node_fingerprint(node: _SearchNode) -> Tuple[TemplatePair, str]:
    """The visited-set key: template pair plus canonical live path state.

    Conjuncts whose variables are disconnected from the symbolic environment
    (constraints on packet bits long consumed, or on initial header values no
    header still refers to) cannot influence which *future* mismatches are
    reachable — they were satisfiable when the node was enqueued and share no
    variables with anything the future can mention.  Projecting them away
    before fingerprinting makes loop iterations that differ only in dead
    history collide, which is what turns the BFS visited set into an actual
    loop breaker.
    """
    conjuncts = _flatten_and(node.condition)
    live: Set[tuple] = set()
    for env in (node.left_env, node.right_env):
        for expr in env.values():
            _expr_tokens(expr, live)
    _expr_tokens(node.left_buffer, live)
    _expr_tokens(node.right_buffer, live)
    pending = [(conjunct, _formula_tokens(conjunct)) for conjunct in conjuncts]
    kept: List[Formula] = []
    changed = True
    while changed:
        changed = False
        remaining = []
        for conjunct, tokens in pending:
            if not tokens or tokens & live:
                kept.append(conjunct)
                live |= tokens
                changed = True
            else:
                remaining.append((conjunct, tokens))
        pending = remaining
    parts: List[Formula] = list(kept)
    for side, env in ((LEFT, node.left_env), (RIGHT, node.right_env)):
        for name in sorted(env):
            value = env[name]
            parts.append(mk_eq(CHdr(side, name, value.width), value))
    for tag, buffer in (("L", node.left_buffer), ("R", node.right_buffer)):
        if buffer.width:
            parts.append(mk_eq(CVar(f"__buf{tag}", buffer.width), buffer))
    canonical = canonicalize_variables(mk_and(parts), prefix="n")
    return (node.pair, confrel_fingerprint(canonical))


# ---------------------------------------------------------------------------
# Path satisfiability (one-shot or incremental)
# ---------------------------------------------------------------------------


class _PathSolver:
    """Satisfiability of BFS path conditions, shared across a whole search.

    With an incremental session each simplified edge conjunct is lowered and
    Tseitin-encoded exactly once (keyed by structural fingerprint) behind an
    activation literal; checking a node assumes the literals along its path.
    Minimization re-solves reuse the same session — identical prefixes of a
    tightened search hit the encoding memo and the retained learned clauses.
    """

    def __init__(self, backend: SolverBackend, use_incremental: bool = True) -> None:
        self.backend = backend
        # None when the backend cannot run an assumption-based session
        # (capabilities lack ``incremental``): every solve is one-shot then.
        self._session = backend.incremental_session() if use_incremental else None

    @property
    def incremental(self) -> bool:
        return self._session is not None

    def push(self, conjunct: Formula) -> Optional[int]:
        """Activation literal for ``conjunct`` (``None`` in one-shot mode)."""
        if self._session is None:
            return None
        return self._session.activation(lower_formula(conjunct))

    def satisfiable(self, node: _SearchNode) -> bool:
        if self._session is not None:
            result = self._session.check(node.activations)
        else:
            result = self.backend.check_sat(lower_formula(node.condition))
        return result.status is not SatStatus.UNSAT

    def model(self, node: _SearchNode, variables: Dict[str, int]) -> Optional[Dict[str, Bits]]:
        if self._session is not None:
            result = self._session.check(node.activations, variables=variables)
        else:
            result = self.backend.check_sat(lower_formula(node.condition))
        if result.status is not SatStatus.SAT:
            return None
        return result.model or {}


# ---------------------------------------------------------------------------
# The search
# ---------------------------------------------------------------------------


class CounterexampleSearch:
    """A reusable bounded search for distinguishing packets.

    One instance owns a solver backend (and, when available, one incremental
    session) shared by every :meth:`search` call, so the oracle's minimizer
    can re-solve with tightened bounds without re-encoding the search space.
    """

    def __init__(
        self,
        left_aut: P4Automaton,
        left_start: str,
        right_aut: P4Automaton,
        right_start: str,
        backend: Optional[SolverBackend] = None,
        use_incremental: bool = True,
        statistics: Optional[CounterexampleStatistics] = None,
    ) -> None:
        self.left_aut = left_aut
        self.left_start = left_start
        self.right_aut = right_aut
        self.right_start = right_start
        self.backend = backend or InternalBackend()
        self.solver = _PathSolver(self.backend, use_incremental=use_incremental)
        self.statistics = statistics if statistics is not None else CounterexampleStatistics()

    # ------------------------------------------------------------------

    def search(
        self,
        max_leaps: int = 32,
        max_packet_bits: int = 4096,
        initial_condition: Formula = TRUE,
        dedup: bool = True,
    ) -> Optional[Counterexample]:
        """Breadth-first search over leaps; ``None`` if no counterexample.

        ``None`` is *not* a proof of equivalence — the search is bounded by
        ``max_leaps`` and ``max_packet_bits``.
        """
        stats = self.statistics
        condition = simplify_formula(initial_condition)
        activations: Tuple[int, ...] = ()
        if self.solver.incremental and not isinstance(condition, FTrue):
            activations = (self.solver.push(condition),)
        start = _SearchNode(
            pair=TemplatePair(Template(self.left_start, 0), Template(self.right_start, 0)),
            condition=condition,
            left_env=initial_symbolic_store(self.left_aut, LEFT),
            right_env=initial_symbolic_store(self.right_aut, RIGHT),
            left_buffer=CLit(Bits("")),
            right_buffer=CLit(Bits("")),
            leap_vars=(),
            activations=activations,
        )
        queue = deque([start])
        visited = _VisitedSet()
        if dedup:
            visited.dominated(start)  # seed the frontier with the root
        # Deterministic per-call leap-variable naming: a re-solve with the
        # same bounds rebuilds structurally identical conditions, so the
        # incremental session's fingerprint memo reuses their encodings.
        var_counter = 0
        while queue:
            node = queue.popleft()
            if node.pair.accept_mismatch():
                candidate = self._try_extract(node)
                if candidate is not None:
                    return candidate
                continue
            if len(node.leap_vars) >= max_leaps:
                continue
            consumed = sum(var.var_width for var in node.leap_vars)
            leap = leap_size(self.left_aut, self.right_aut, node.pair)
            if consumed + leap > max_packet_bits:
                continue
            if node.pair.left.state == REJECT and node.pair.right.state == REJECT:
                continue  # both stuck in reject; no future mismatch possible
            stats.expanded += 1
            leap_var = CVar(f"cexpkt{var_counter}", leap)
            var_counter += 1
            left_outcomes = _forward_leap(
                self.left_aut, node.pair.left, leap, leap_var,
                node.left_env, node.left_buffer,
            )
            right_outcomes = _forward_leap(
                self.right_aut, node.pair.right, leap, leap_var,
                node.right_env, node.right_buffer,
            )
            for left_target, left_condition, left_env, left_buffer in left_outcomes:
                for right_target, right_condition, right_env, right_buffer in right_outcomes:
                    edge = simplify_formula(mk_and([left_condition, right_condition]))
                    successor = _SearchNode(
                        pair=TemplatePair(left_target, right_target),
                        condition=simplify_formula(mk_and([node.condition, edge])),
                        left_env=left_env,
                        right_env=right_env,
                        left_buffer=left_buffer,
                        right_buffer=right_buffer,
                        leap_vars=node.leap_vars + (leap_var,),
                        activations=node.activations,
                    )
                    if dedup and visited.dominated(successor):
                        stats.deduped += 1
                        continue
                    stats.successors += 1
                    if self.solver.incremental and not isinstance(edge, FTrue):
                        successor.activations = node.activations + (self.solver.push(edge),)
                    stats.sat_checks += 1
                    if self.solver.satisfiable(successor):
                        stats.enqueued += 1
                        queue.append(successor)
                    else:
                        stats.pruned_unsat += 1
        return None

    # ------------------------------------------------------------------

    def _try_extract(self, node: _SearchNode) -> Optional[Counterexample]:
        """Solve the node's path condition and confirm the candidate concretely."""
        variables: Dict[str, int] = {}
        for name, width in self.left_aut.headers.items():
            variables[store_variable_name(LEFT, name)] = width
        for name, width in self.right_aut.headers.items():
            variables[store_variable_name(RIGHT, name)] = width
        for leap_var in node.leap_vars:
            variables[variable_name(leap_var.name)] = leap_var.var_width
        model = self.solver.model(node, variables)
        if model is None:
            return None
        self.statistics.extractions += 1

        def header_value(side: str, aut: P4Automaton, name: str) -> Bits:
            value = model.get(store_variable_name(side, name))
            if value is None:
                return Bits.zeros(aut.header_size(name))
            return value

        left_store = {
            name: header_value(LEFT, self.left_aut, name) for name in self.left_aut.headers
        }
        right_store = {
            name: header_value(RIGHT, self.right_aut, name) for name in self.right_aut.headers
        }
        packet = Bits("")
        for leap_var in node.leap_vars:
            value = model.get(variable_name(leap_var.name), Bits.zeros(leap_var.var_width))
            packet = packet.concat(value)
        left_accepts = accepts(self.left_aut, self.left_start, packet, left_store)
        right_accepts = accepts(self.right_aut, self.right_start, packet, right_store)
        if left_accepts == right_accepts:
            # The model predicts an acceptance mismatch the concrete semantics
            # does not reproduce: a soundness red flag somewhere between the
            # WP encoding and the SAT solver.  Count it and keep searching.
            self.statistics.replay_divergences += 1
            warnings.warn(
                "counterexample model diverged from concrete replay at "
                f"{node.pair}: packet {packet} is "
                f"{'accepted' if left_accepts else 'rejected'} by both parsers "
                "although the path condition predicted a mismatch; the "
                "symbolic pipeline and the interpreter disagree",
                RuntimeWarning,
                stacklevel=4,
            )
            return None
        return Counterexample(
            packet,
            left_store,
            right_store,
            left_accepts,
            right_accepts,
            leap_widths=tuple(var.var_width for var in node.leap_vars),
        )


def find_counterexample(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    backend: Optional[SolverBackend] = None,
    max_leaps: int = 32,
    max_packet_bits: int = 4096,
    initial_condition: Formula = TRUE,
    dedup: bool = True,
    use_incremental: bool = True,
    statistics: Optional[CounterexampleStatistics] = None,
) -> Optional[Counterexample]:
    """Search for a distinguishing packet, breadth first over leaps.

    Returns ``None`` when no counterexample is found within the bounds; this is
    *not* a proof of equivalence.  ``statistics`` (when given) receives the
    node and solver accounting of the search, including the count of SAT
    models whose concrete replay failed to reproduce the predicted mismatch.
    """
    search = CounterexampleSearch(
        left_aut, left_start, right_aut, right_start,
        backend=backend, use_incremental=use_incremental, statistics=statistics,
    )
    return search.search(
        max_leaps=max_leaps,
        max_packet_bits=max_packet_bits,
        initial_condition=initial_condition,
        dedup=dedup,
    )
