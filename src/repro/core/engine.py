"""A job-based execution engine for equivalence-checking workloads.

The Table 2 reproduction and the ablation study run many independent
verification problems; nothing couples one automaton pair to another, so the
engine fans jobs out across worker processes (one :mod:`multiprocessing`
process per job, a bounded number alive at once) while keeping the interface
deterministic:

* results are returned **in job-submission order**, whatever the completion
  order of the workers;
* a job is either a :class:`CaseJob` (a registered Table 2 case study, looked
  up by name inside the worker so only strings and configs cross the process
  boundary) or an :class:`EquivalenceJob` (an explicit automaton pair —
  automata are plain frozen dataclasses and pickle cleanly);
* every job can carry a wall-clock **timeout**; in pooled mode an expired
  job's worker is terminated and the job reported as a ``timeout``
  :class:`JobResult`, so a hung case can neither poison the run nor starve
  the queued jobs.  Inline mode cannot interrupt a running job, so it warns
  up front and applies the limit after the fact (an over-budget job is still
  reported as a ``timeout``);
* failures inside a worker are captured per job as ``error`` results.

With ``jobs=1`` (the default) everything runs inline in the calling process —
no pool, no pickling — which is the baseline that parallel runs are required
to reproduce exactly.  Workers can share solver work through the persistent
query cache: pass ``cache_dir`` and every job's checker stacks a
:class:`~repro.smt.cache.CachingBackend` over the same sqlite store.

With ``server`` set (an address accepted by
:func:`repro.service.client.parse_server_address`), jobs are not executed
locally at all: each one becomes a request to a running ``repro serve``
daemon, fanned out over ``jobs`` client threads.  The daemon dedupes
identical requests and answers repeats from its content-addressed verdict
store, so a batch re-run against a warm daemon does no solver work.
Results keep their submission order and the same three-state
:class:`JobResult` shape; equivalence jobs come back as
:class:`~repro.service.client.CheckOutcome` (display-compatible with a
local :class:`~repro.core.equivalence.EquivalenceResult`) and case jobs as
:class:`~repro.reporting.runner.CaseOutcome` rebuilt from the wire metrics.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..p4a.syntax import P4Automaton
from .algorithm import CheckerConfig


class EngineError(Exception):
    """Raised on malformed jobs or engine misconfiguration."""


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CaseJob:
    """Run one registered case study (a Table 2 row) by name."""

    case: str
    full: bool = False
    config: Optional[CheckerConfig] = None
    job_id: Optional[str] = None
    timeout: Optional[float] = None

    @property
    def label(self) -> str:
        return self.job_id if self.job_id is not None else self.case


@dataclass(frozen=True)
class EquivalenceJob:
    """Check language equivalence of an explicit automaton pair."""

    left: P4Automaton
    left_start: str
    right: P4Automaton
    right_start: str
    config: Optional[CheckerConfig] = None
    find_counterexamples: bool = False
    job_id: Optional[str] = None
    timeout: Optional[float] = None

    @property
    def label(self) -> str:
        if self.job_id is not None:
            return self.job_id
        return f"{self.left.name} ~ {self.right.name}"


Job = Union[CaseJob, EquivalenceJob]


@dataclass
class JobResult:
    """Outcome of one engine job, in one of three states.

    ``ok`` — ``value`` holds the job's payload (a
    :class:`~repro.reporting.runner.CaseOutcome` for case jobs, an
    :class:`~repro.core.equivalence.EquivalenceResult` for equivalence jobs);
    ``error`` — ``error`` holds the worker-side exception rendered as text;
    ``timeout`` — the job did not produce a result within its timeout.
    """

    job_id: str
    status: str
    value: object = None
    error: Optional[str] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class EngineStatistics:
    """Aggregate accounting for one :meth:`EquivalenceEngine.run` call."""

    jobs: int = 0
    succeeded: int = 0
    failed: int = 0
    timed_out: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    by_job: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "wall_seconds": round(self.wall_seconds, 3),
            "workers": self.workers,
            "by_job": {name: round(seconds, 3) for name, seconds in self.by_job.items()},
        }


# ---------------------------------------------------------------------------
# Worker entry point (top level so it pickles under the spawn start method)
# ---------------------------------------------------------------------------


def _effective_config(
    job: Job,
    cache_dir: Optional[str],
    use_incremental: Optional[bool] = None,
    oracle_packets: Optional[int] = None,
    oracle_seed: Optional[int] = None,
    use_aig: Optional[bool] = None,
    solver: Optional[str] = None,
    portfolio: Optional[bool] = None,
    share_clauses: Optional[bool] = None,
    clause_db_max: Optional[int] = None,
) -> Optional[CheckerConfig]:
    config = job.config
    if (
        cache_dir is None and use_incremental is None
        and oracle_packets is None and oracle_seed is None
        and use_aig is None and solver is None
        and portfolio is None and share_clauses is None
        and clause_db_max is None
    ):
        return config
    if config is None:
        config = CheckerConfig()
    if cache_dir is not None and config.cache_dir is None:
        config = dataclasses.replace(config, cache_dir=cache_dir)
    if use_incremental is not None and config.use_incremental != use_incremental:
        config = dataclasses.replace(config, use_incremental=use_incremental)
    if use_aig is not None and config.use_aig != use_aig:
        config = dataclasses.replace(config, use_aig=use_aig)
    if oracle_packets is not None and config.oracle_packets == 0:
        config = dataclasses.replace(config, oracle_packets=oracle_packets)
    if oracle_seed is not None and config.oracle_seed is None:
        config = dataclasses.replace(config, oracle_seed=oracle_seed)
    if solver is not None and config.solver is None:
        config = dataclasses.replace(config, solver=solver)
    if portfolio is not None and config.portfolio != portfolio:
        config = dataclasses.replace(config, portfolio=portfolio)
    if share_clauses is not None and config.share_clauses != share_clauses:
        config = dataclasses.replace(config, share_clauses=share_clauses)
    if clause_db_max is not None and config.clause_db_max is None:
        config = dataclasses.replace(config, clause_db_max=clause_db_max)
    return config


def _execute_job(
    job: Job,
    cache_dir: Optional[str] = None,
    use_incremental: Optional[bool] = None,
    oracle_packets: Optional[int] = None,
    oracle_seed: Optional[int] = None,
    use_aig: Optional[bool] = None,
    solver: Optional[str] = None,
    portfolio: Optional[bool] = None,
    share_clauses: Optional[bool] = None,
    clause_db_max: Optional[int] = None,
) -> object:
    config = _effective_config(job, cache_dir, use_incremental, oracle_packets,
                               oracle_seed, use_aig, solver, portfolio,
                               share_clauses, clause_db_max)
    if isinstance(job, CaseJob):
        from ..reporting.runner import case_studies

        registry = case_studies()
        if job.case not in registry:
            raise EngineError(
                f"unknown case study {job.case!r}; known: {', '.join(sorted(registry))}"
            )
        return registry[job.case](full=job.full, config=config)
    if isinstance(job, EquivalenceJob):
        from .equivalence import check_language_equivalence

        return check_language_equivalence(
            job.left,
            job.left_start,
            job.right,
            job.right_start,
            config=config,
            find_counterexamples=job.find_counterexamples,
        )
    raise EngineError(f"unknown job type {type(job).__name__}")


def _pooled_worker(
    conn,
    job: Job,
    cache_dir: Optional[str],
    use_incremental: Optional[bool],
    oracle_packets: Optional[int] = None,
    oracle_seed: Optional[int] = None,
    use_aig: Optional[bool] = None,
    solver: Optional[str] = None,
    portfolio: Optional[bool] = None,
    share_clauses: Optional[bool] = None,
    clause_db_max: Optional[int] = None,
) -> None:
    """Child-process entry point: run one job, ship the outcome over a pipe."""
    try:
        payload = ("ok", _execute_job(job, cache_dir, use_incremental,
                                      oracle_packets, oracle_seed, use_aig,
                                      solver, portfolio, share_clauses,
                                      clause_db_max))
    except Exception as exc:  # noqa: BLE001 - report, don't crash the batch
        payload = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    except Exception as exc:  # unpicklable result
        conn.send(("error", f"result not transferable: {type(exc).__name__}: {exc}"))
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class EquivalenceEngine:
    """Executes equivalence-checking jobs, sequentially or across processes.

    ``jobs`` is the worker count (1 = inline, no subprocesses).  ``timeout``
    is the default per-job wall-clock limit in seconds, overridable per job.
    In pooled mode an expired job's worker is terminated; an inline run has
    nowhere to escape to, so the engine warns up front that it can only
    enforce the limit *after the fact* — an inline job that finishes beyond
    its budget is reported as a ``timeout`` result with its value discarded.
    (The two modes can differ right at the boundary: a pooled worker that
    delivers its result just past the limit but before the reaper's next
    poll still counts as ``ok``, whereas inline enforcement is strict.)
    The pooled clock includes
    worker startup (process spawn plus package import, a fraction of a
    second), so limits should comfortably exceed that.  ``cache_dir`` threads
    a shared persistent query cache into every job's checker configuration;
    ``use_incremental`` (when not ``None``) overrides the incremental-session
    toggle of every job's configuration, and ``use_aig`` likewise overrides
    the AIG-simplification toggle.  ``oracle_packets``/``oracle_seed``
    (when not ``None``) switch on the differential concrete oracle for every
    job that does not already configure it — each verdict is cross-checked
    against that many seeded random packets (see
    :mod:`repro.oracle.differential`).

    ``solver``/``portfolio``/``share_clauses``/``clause_db_max`` thread the
    solver-backend selection of :class:`~repro.core.algorithm.CheckerConfig`
    into every job that does not already configure it.  ``share_clauses``
    combines with
    ``cache_dir``: the clause channel lives next to the query cache, so
    pooled workers pointed at the same directory trade learned clauses.
    These are local execution knobs — remote (``server``) dispatch does not
    forward them; the daemon picks its own backend.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = None,
        mp_context: str = "spawn",
        use_incremental: Optional[bool] = None,
        oracle_packets: Optional[int] = None,
        oracle_seed: Optional[int] = None,
        server: Optional[str] = None,
        use_aig: Optional[bool] = None,
        solver: Optional[str] = None,
        portfolio: Optional[bool] = None,
        share_clauses: Optional[bool] = None,
        clause_db_max: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise EngineError(f"worker count must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.mp_context = mp_context
        self.use_incremental = use_incremental
        self.use_aig = use_aig
        self.oracle_packets = oracle_packets
        self.oracle_seed = oracle_seed
        self.server = server
        self.solver = solver
        self.portfolio = portfolio
        self.share_clauses = share_clauses
        self.clause_db_max = clause_db_max
        self.statistics = EngineStatistics()

    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        on_result: Optional[Callable[[JobResult], None]] = None,
    ) -> List[JobResult]:
        """Run every job and return results in submission order.

        ``on_result`` (when given) is called once per job, **in submission
        order**, as soon as that result and every earlier one are available —
        a streaming view of the same ordered list the call returns.  The
        campaign runner uses it for incremental progress and checkpointing;
        a callback that raises aborts the run.
        """
        labels = [job.label for job in jobs]
        if len(set(labels)) != len(labels):
            raise EngineError("job labels must be unique; set job_id to disambiguate")
        start = time.perf_counter()
        self.statistics = EngineStatistics(jobs=len(jobs), workers=min(self.jobs, max(len(jobs), 1)))
        if self.server is not None:
            # Remote jobs run on the daemon, which cannot be preempted from
            # here; timeouts are applied to the observed wall-clock time
            # after the fact, like inline mode.
            results = self._run_remote(jobs, on_result)
        elif self.jobs == 1:
            if any(self._job_limit(job) is not None for job in jobs):
                warnings.warn(
                    "timeouts in inline mode (jobs=1) are enforced only after "
                    "a job finishes: a hung job cannot be interrupted; use "
                    "jobs >= 2 for preemptive enforcement",
                    RuntimeWarning,
                    stacklevel=2,
                )
            results = []
            for job in jobs:
                result = self._run_inline(job)
                if on_result is not None:
                    on_result(result)
                results.append(result)
        else:
            # Pooled even for a single job, so per-job timeouts stay enforced.
            results = self._run_pooled(jobs, on_result)
        self.statistics.wall_seconds = time.perf_counter() - start
        for result in results:
            self.statistics.by_job[result.job_id] = result.elapsed
            if result.status == "ok":
                self.statistics.succeeded += 1
            elif result.status == "timeout":
                self.statistics.timed_out += 1
            else:
                self.statistics.failed += 1
        return results

    # ------------------------------------------------------------------

    def _job_limit(self, job: Job) -> Optional[float]:
        return job.timeout if job.timeout is not None else self.timeout

    def _run_inline(self, job: Job) -> JobResult:
        start = time.perf_counter()
        limit = self._job_limit(job)
        try:
            value = _execute_job(job, self.cache_dir, self.use_incremental,
                                 self.oracle_packets, self.oracle_seed,
                                 self.use_aig, self.solver, self.portfolio,
                                 self.share_clauses, self.clause_db_max)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the batch
            elapsed = time.perf_counter() - start
            if limit is not None and elapsed > limit:
                # A pooled worker would have been killed before it could
                # raise, so the over-budget failure is a timeout there too.
                return self._inline_timeout(job, limit, elapsed)
            return JobResult(
                job.label, "error", error=f"{type(exc).__name__}: {exc}",
                elapsed=elapsed,
            )
        elapsed = time.perf_counter() - start
        if limit is not None and elapsed > limit:
            # Post-hoc enforcement: the job could not be interrupted, so the
            # limit is applied to its wall-clock time after the fact.
            return self._inline_timeout(job, limit, elapsed)
        return JobResult(job.label, "ok", value=value, elapsed=elapsed)

    @staticmethod
    def _inline_timeout(job: Job, limit: float, elapsed: float) -> JobResult:
        return JobResult(
            job.label, "timeout",
            error=f"no result within {limit} seconds "
                  f"(inline job finished after {elapsed:.3f}s)",
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------
    # Remote dispatch (jobs become requests to a `repro serve` daemon)

    def _run_remote(
        self,
        jobs: Sequence[Job],
        on_result: Optional[Callable[[JobResult], None]] = None,
    ) -> List[JobResult]:
        """Fan the jobs out to the daemon over ``self.jobs`` client threads."""
        from concurrent.futures import ThreadPoolExecutor

        workers = min(self.jobs, max(len(jobs), 1))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = []
            for result in pool.map(self._run_remote_job, jobs):
                if on_result is not None:
                    on_result(result)
                results.append(result)
            return results

    def _run_remote_job(self, job: Job) -> JobResult:
        from ..service.client import ServiceClient, ServiceError

        start = time.perf_counter()
        limit = self._job_limit(job)
        try:
            value = self._execute_remote(ServiceClient(self.server), job)
        except ServiceError as exc:
            elapsed = time.perf_counter() - start
            return JobResult(
                job.label, "error", error=f"service {exc.code}: {exc}",
                elapsed=elapsed,
            )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the batch
            elapsed = time.perf_counter() - start
            return JobResult(
                job.label, "error", error=f"{type(exc).__name__}: {exc}",
                elapsed=elapsed,
            )
        elapsed = time.perf_counter() - start
        if limit is not None and elapsed > limit:
            return self._inline_timeout(job, limit, elapsed)
        return JobResult(job.label, "ok", value=value, elapsed=elapsed)

    def _execute_remote(self, client, job: Job) -> object:
        from ..service.client import check_options_from_config

        config = _effective_config(job, None, self.use_incremental,
                                   self.oracle_packets, self.oracle_seed,
                                   self.use_aig)
        if isinstance(job, CaseJob):
            from ..reporting.metrics import CaseMetrics
            from ..reporting.runner import CaseOutcome

            options = {}
            if config is not None:
                if config.oracle_packets:
                    options["oracle_packets"] = config.oracle_packets
                if config.oracle_seed is not None:
                    options["oracle_seed"] = config.oracle_seed
            answer = client.case(job.case, full=job.full, options=options)
            return CaseOutcome(CaseMetrics.from_dict(answer.metrics), answer.verdict)
        if isinstance(job, EquivalenceJob):
            return client.check(
                job.left, job.left_start, job.right, job.right_start,
                options=check_options_from_config(config, job.find_counterexamples),
            )
        raise EngineError(f"unknown job type {type(job).__name__}")

    def _run_pooled(
        self,
        jobs: Sequence[Job],
        on_result: Optional[Callable[[JobResult], None]] = None,
    ) -> List[JobResult]:
        """One process per job, at most ``self.jobs`` alive at a time.

        A dedicated process (instead of an executor pool) is what makes the
        per-job timeout real: an expired job is ``terminate()``d, freeing its
        slot immediately instead of leaving a hung worker to starve the queue.
        Elapsed times are measured from each job's own start.  ``on_result``
        streams the contiguous done-prefix in submission order, whatever
        order the workers finish in.
        """
        context = multiprocessing.get_context(self.mp_context)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        delivered = 0
        pending = deque(enumerate(jobs))
        running: Dict[int, tuple] = {}  # index -> (process, pipe, started, limit, job)
        try:
            while pending or running:
                while pending and len(running) < self.jobs:
                    index, job = pending.popleft()
                    receiver, sender = context.Pipe(duplex=False)
                    process = context.Process(
                        target=_pooled_worker,
                        args=(sender, job, self.cache_dir, self.use_incremental,
                              self.oracle_packets, self.oracle_seed,
                              self.use_aig, self.solver, self.portfolio,
                              self.share_clauses, self.clause_db_max),
                        daemon=True,
                    )
                    process.start()
                    sender.close()
                    limit = self._job_limit(job)
                    running[index] = (process, receiver, time.perf_counter(), limit, job)
                multiprocessing.connection.wait(
                    [entry[1] for entry in running.values()], timeout=0.05
                )
                for index in list(running):
                    process, receiver, started, limit, job = running[index]
                    elapsed = time.perf_counter() - started
                    if receiver.poll():
                        try:
                            status, payload = receiver.recv()
                        except Exception as exc:  # EOF, truncated pickle, OSError
                            status = "error"
                            detail = f": {exc}" if str(exc) else ""
                            payload = f"worker result unreadable: {type(exc).__name__}{detail}"
                        if status == "ok":
                            results[index] = JobResult(job.label, "ok", value=payload,
                                                       elapsed=elapsed)
                        else:
                            results[index] = JobResult(job.label, "error", error=payload,
                                                       elapsed=elapsed)
                    elif not process.is_alive():
                        results[index] = JobResult(
                            job.label, "error",
                            error=f"worker exited with code {process.exitcode}",
                            elapsed=elapsed,
                        )
                    elif limit is not None and elapsed > limit:
                        process.terminate()
                        results[index] = JobResult(
                            job.label, "timeout",
                            error=f"no result within {limit} seconds", elapsed=elapsed,
                        )
                    else:
                        continue
                    receiver.close()
                    process.join()
                    del running[index]
                if on_result is not None:
                    while delivered < len(jobs) and results[delivered] is not None:
                        on_result(results[delivered])
                        delivered += 1
        finally:
            for process, receiver, _, _, _ in running.values():
                process.terminate()
                receiver.close()
                process.join()
        return [result for result in results if result is not None]
