"""Entailment checking between template-filtered ConfRel formulas.

The inner loop of Algorithm 1 repeatedly asks whether the conjunction of the
relation built so far entails a candidate formula (``⋀R ⊨ ψ``).  After
template filtering both sides are *pure* formulas over the headers and buffers
of a single template pair, plus symbolic variables standing for future packet
bits.  Those variables are universally quantified by the semantics of
Definition 4.3, which gives the queries an ∃∀ shape once negated.

Three strategies are layered, mirroring the engineering in Section 6:

1. **trivial / syntactic** — the goal simplifies to ⊤ or is alpha-equivalent
   to a premise;
2. **fast path** — variables are canonically renamed (aligning the premises'
   future-bits variables with the goal's) and a single quantifier-free
   unsatisfiability query is issued.  Instantiating a universally quantified
   premise is sound, so "unsat ⇒ entailed" always holds; a "sat" answer may be
   spurious, which at worst adds redundant conjuncts to the relation.
3. **exact** — a CEGIS exists-forall check with the premises' variables
   properly renamed apart and treated as universal, restoring completeness.

The exact mode is the default (and is what the certificate re-checker uses):
the fast path still answers most queries with a single quantifier-free check,
and CEGIS only runs when that check fails with universally quantified premises
present.  The pure fast mode is kept for experiments on the trade-off.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..logic import folbv
from ..logic.compile import compile_entailment, lower_formula
from ..logic.confrel import (
    FTrue,
    Formula,
    canonicalize_variables,
    formula_variables,
    rename_variables,
)
from ..logic.fingerprint import confrel_fingerprint
from ..logic.simplify import simplify_formula
from ..p4a.bitvec import Bits
from ..smt.backend import InternalBackend, SolverBackend
from ..smt.bvsolver import SatResult, SatStatus, complete_model
from ..smt.cegis import solve_exists_forall

FAST = "fast"
EXACT = "exact"
ENTAILMENT_MODES = (FAST, EXACT)


@dataclass
class EntailmentOutcome:
    """Result of one entailment check."""

    entailed: bool
    method: str
    model: Optional[Dict[str, Bits]] = None

    def __bool__(self) -> bool:
        return self.entailed


@dataclass
class EntailmentStatistics:
    checks: int = 0
    trivial: int = 0
    syntactic: int = 0
    smt_entailed: int = 0
    smt_refuted: int = 0
    cegis_entailed: int = 0
    cegis_refuted: int = 0
    unknown: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Refutation models that fail concrete re-evaluation against the query —
    #: a soundness red flag for the solver stack (or a stale cache entry).
    model_divergences: int = 0
    #: AIG lowering-pipeline effectiveness, mirrored from the solver ledger:
    #: graph nodes built, clauses avoided by rewriting (an estimate), and
    #: queries answered by graph-level collapse without CDCL work.
    aig_nodes: int = 0
    aig_clauses_saved: int = 0
    aig_shortcuts: int = 0
    #: Cross-worker learned-clause traffic, mirrored from the solver ledger.
    clauses_exported: int = 0
    clauses_imported: int = 0
    #: Learned-clause database management, mirrored from the solver ledger:
    #: reductions run, clauses deleted by them, literals removed by
    #: conflict-clause minimization, and the LBD sum/count ledger behind the
    #: reported mean glue.
    db_reductions: int = 0
    clauses_deleted: int = 0
    minimized_literals: int = 0
    lbd_sum: int = 0
    lbd_clauses: int = 0
    #: Per-lane portfolio counters (wins/losses/cancelled/errors), mirrored
    #: from the solver ledger; empty outside portfolio mode.
    portfolio: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        payload = {
            "checks": self.checks,
            "trivial": self.trivial,
            "syntactic": self.syntactic,
            "smt_entailed": self.smt_entailed,
            "smt_refuted": self.smt_refuted,
            "cegis_entailed": self.cegis_entailed,
            "cegis_refuted": self.cegis_refuted,
            "unknown": self.unknown,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "model_divergences": self.model_divergences,
            "aig_nodes": self.aig_nodes,
            "aig_clauses_saved": self.aig_clauses_saved,
            "aig_shortcuts": self.aig_shortcuts,
            "clauses_exported": self.clauses_exported,
            "clauses_imported": self.clauses_imported,
            "db_reductions": self.db_reductions,
            "clauses_deleted": self.clauses_deleted,
            "minimized_literals": self.minimized_literals,
            "lbd_sum": self.lbd_sum,
            "lbd_clauses": self.lbd_clauses,
        }
        if self.portfolio:
            payload["portfolio"] = {
                lane: dict(counters) for lane, counters in self.portfolio.items()
            }
        return payload


class EntailmentChecker:
    """Checks ``⋀ premises ⊨ goal`` for pure, same-guard ConfRel formulas."""

    def __init__(
        self,
        backend: Optional[SolverBackend] = None,
        mode: str = EXACT,
        cegis_rounds: int = 64,
        use_incremental: bool = True,
    ) -> None:
        if mode not in ENTAILMENT_MODES:
            raise ValueError(f"unknown entailment mode {mode!r}")
        self.backend = backend or InternalBackend()
        self.mode = mode
        self.cegis_rounds = cegis_rounds
        self.statistics = EntailmentStatistics()
        self.use_incremental = use_incremental
        # May be None (DPLL engine, external solvers, portfolio — anything
        # whose capabilities lack ``incremental``): then every query falls
        # back to the one-shot path.
        self._session = self.backend.incremental_session() if use_incremental else None
        self._lowered_premises: Dict[str, folbv.BFormula] = {}
        # The compiled FOL(BV) query of the most recent fast-path check; used
        # to re-validate refutation models by concrete evaluation (cached
        # models in particular are never validated by the solver itself).
        self._last_query: Optional[folbv.BFormula] = None
        # Identity-keyed canonicalization memo (incremental path only): the
        # algorithm re-checks against the same premise *objects* every
        # iteration, so simplify + canonicalize each one exactly once.  The
        # key holds a strong reference to the premise, so a recycled id()
        # can never alias a dead object.
        self._canonical_memo: Dict[int, tuple] = {}

    # ------------------------------------------------------------------

    def _canonicalize(self, formula: Formula) -> Formula:
        entry = self._canonical_memo.get(id(formula))
        if entry is not None and entry[0] is formula:
            return entry[1]
        canonical = canonicalize_variables(simplify_formula(formula), prefix="x")
        self._canonical_memo[id(formula)] = (formula, canonical)
        return canonical

    def _sync_aig_statistics(self) -> None:
        """Mirror the solver ledger's AIG counters into this checker's stats.

        The backend is (in the standard stack) owned by one checker, so the
        mirrored values are per-run; they surface in the Table 2 report.
        """
        solver_stats = self.backend.statistics
        self.statistics.aig_nodes = solver_stats.aig_nodes
        self.statistics.aig_clauses_saved = solver_stats.aig_clauses_saved
        self.statistics.aig_shortcuts = solver_stats.aig_shortcuts
        self.statistics.clauses_exported = solver_stats.clauses_exported
        self.statistics.clauses_imported = solver_stats.clauses_imported
        self.statistics.db_reductions = solver_stats.db_reductions
        self.statistics.clauses_deleted = solver_stats.clauses_deleted
        self.statistics.minimized_literals = solver_stats.minimized_literals
        self.statistics.lbd_sum = solver_stats.lbd_sum
        self.statistics.lbd_clauses = solver_stats.lbd_clauses
        if solver_stats.portfolio_lanes:
            self.statistics.portfolio = {
                lane: dict(counters)
                for lane, counters in solver_stats.portfolio_lanes.items()
            }

    def check(self, premises: Sequence[Formula], goal: Formula) -> EntailmentOutcome:
        try:
            return self._check(premises, goal)
        finally:
            self._sync_aig_statistics()

    def _check(self, premises: Sequence[Formula], goal: Formula) -> EntailmentOutcome:
        self.statistics.checks += 1
        goal_simplified = simplify_formula(goal)
        if isinstance(goal_simplified, FTrue):
            self.statistics.trivial += 1
            return EntailmentOutcome(True, "trivial")

        canonical_goal = canonicalize_variables(goal_simplified, prefix="x")
        if self._session is not None:
            canonical_premises = [self._canonicalize(premise) for premise in premises]
        else:
            canonical_premises = [
                canonicalize_variables(simplify_formula(premise), prefix="x")
                for premise in premises
            ]
        if any(premise == canonical_goal for premise in canonical_premises):
            self.statistics.syntactic += 1
            return EntailmentOutcome(True, "syntactic")

        # Fast path: shared-variable quantifier-free query.
        if self._session is not None:
            result = self._check_sat_incremental(canonical_premises, canonical_goal)
        else:
            query = compile_entailment(canonical_premises, canonical_goal)
            self._last_query = query.formula
            caching = self.backend.capabilities.caching
            cache_stats = self.backend.cache_statistics if caching else None
            hits_before = cache_stats.hits if cache_stats is not None else 0
            result = self.backend.check_sat(query.formula)
            if cache_stats is not None:
                hit = cache_stats.hits - hits_before
                self.statistics.cache_hits += hit
                self.statistics.cache_misses += 1 - hit
        if result.status is SatStatus.UNSAT:
            self.statistics.smt_entailed += 1
            return EntailmentOutcome(True, "smt")
        if result.status is SatStatus.UNKNOWN:
            self.statistics.unknown += 1
            return EntailmentOutcome(False, "unknown")
        if self.mode == FAST or not premises:
            # With no premises the fast path is already exact.
            self.statistics.smt_refuted += 1
            self._validate_refutation_model(result)
            return EntailmentOutcome(False, "smt", result.model)
        return self._check_exact(canonical_premises, canonical_goal)

    def _validate_refutation_model(self, result: SatResult) -> None:
        """Concretely re-evaluate a refutation model against the query.

        The solver validates its own fresh models, but models served from the
        persistent query cache bypass that check; replaying them through the
        independent evaluator turns a stale or corrupt entry into a counted,
        warned-about divergence instead of a silently wrong refutation.
        """
        if result.model is None or self._last_query is None:
            return
        completed = complete_model(self._last_query, result.model)
        if not folbv.eval_formula(self._last_query, completed):
            self.statistics.model_divergences += 1
            warnings.warn(
                "entailment refutation model does not satisfy the compiled "
                "query when evaluated concretely; the solver stack (or a "
                "cached result) and the evaluator disagree",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------

    def _lower_premise(self, premise: Formula) -> folbv.BFormula:
        """Lower a canonical premise, memoized by its structural fingerprint.

        Algorithm 1 re-checks against the same (growing) premise list on every
        iteration; re-lowering each premise from scratch would make the
        per-query cost linear in the whole relation even when the solver work
        is shared.  Returning the *same object* also lets the session's
        fingerprint walk hit its identity memo, so a previously pushed premise
        costs O(1) per later query.
        """
        key = confrel_fingerprint(premise)
        lowered = self._lowered_premises.get(key)
        if lowered is None:
            lowered = lower_formula(premise)
            self._lowered_premises[key] = lowered
        return lowered

    def _check_sat_incremental(
        self, premises: Sequence[Formula], goal: Formula
    ) -> SatResult:
        """The fast-path query via the incremental session.

        The premise conjunction is pushed into the session CNF once (activation
        literals are idempotent per formula), the negated goal rides along as a
        per-query assumption, and the query cache — when the backend stacks one
        — is consulted before and fed after, under the same combined-formula
        fingerprint the one-shot path uses, so both paths share cache entries.
        """
        lowered_premises = tuple(self._lower_premise(p) for p in premises)
        lowered_goal = lower_formula(goal)
        negated_goal = folbv.b_not(lowered_goal)
        combined = folbv.b_and(list(lowered_premises) + [negated_goal])
        self._last_query = combined
        if self.backend.capabilities.caching:
            cached = self.backend.lookup(combined)
            if cached is not None:
                self.statistics.cache_hits += 1
                return cached
            self.statistics.cache_misses += 1
        assumptions = [self._session.activation(p) for p in lowered_premises]
        # variables are left to the session to derive (lazily, from the
        # validation formula) so unsat answers skip the free-variable walk.
        result = self._session.check(
            assumptions,
            goal=negated_goal,
            validate_formula=combined,
        )
        self.backend.store(combined, result)
        return result

    # ------------------------------------------------------------------

    def _check_exact(
        self, premises: Sequence[Formula], goal: Formula
    ) -> EntailmentOutcome:
        """CEGIS exists-forall check with premise variables renamed apart."""
        universal_vars: Dict[str, int] = {}
        lowered_premises: List[folbv.BFormula] = []
        for index, premise in enumerate(premises):
            variables = formula_variables(premise)
            mapping = {name: f"u{index}_{name}" for name in variables}
            renamed = rename_variables(premise, mapping)
            for name, width in formula_variables(renamed).items():
                from ..logic.compile import variable_name

                universal_vars[variable_name(name)] = width
            lowered_premises.append(lower_formula(renamed))
        lowered_goal = lower_formula(goal)
        matrix = folbv.b_and(lowered_premises + [folbv.b_not(lowered_goal)])
        # Backends whose stack bottoms out in the internal CDCL solver expose
        # it via the protocol; external backends yield None and CEGIS builds
        # a fresh one.
        internal_solver = self.backend.internal_solver
        outcome = solve_exists_forall(
            matrix,
            universal_vars,
            solver=internal_solver,
            max_rounds=self.cegis_rounds,
            session=self._session,
        )
        if outcome.holds is True:
            self.statistics.cegis_refuted += 1
            return EntailmentOutcome(False, "cegis", outcome.witness)
        if outcome.holds is False:
            self.statistics.cegis_entailed += 1
            return EntailmentOutcome(True, "cegis")
        self.statistics.unknown += 1
        return EntailmentOutcome(False, "unknown")
