"""High-level verification API.

This module is the public face of the equivalence checker.  It wraps the
pre-bisimulation engine (:mod:`repro.core.algorithm`) with the verification
modes used in the paper's case studies:

* :func:`check_language_equivalence` — the headline check: two parsers accept
  exactly the same packets, regardless of their initial stores.
* :func:`check_initial_store_independence` — a parser's acceptance behaviour
  does not depend on uninitialised headers (the Header Initialization study).
* :func:`check_store_relation` — a relational property between the two final
  stores whenever both parsers accept (the External Filtering and Relational
  Verification studies).

All functions return an :class:`EquivalenceResult` carrying a verdict, a
re-checkable certificate on success, an optional concrete counterexample on
refutation, and the statistics reported in the benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..logic.confrel import Formula, TRUE
from ..p4a.syntax import P4Automaton
from ..smt.backend import InternalBackend, SolverBackend
from .algorithm import CheckerConfig, CheckerStatistics, PreBisimResult, PreBisimulationChecker
from .certificate import Certificate
from .counterexample import Counterexample, find_counterexample
from .templates import GuardedFormula


@dataclass
class EquivalenceResult:
    """Verdict of a verification run.

    ``verdict`` is ``True`` (property proven, ``certificate`` available),
    ``False`` (refuted, ``counterexample`` available when one could be
    extracted) or ``None`` (the proof search got stuck and no counterexample
    was found within bounds — the same "no certificate" outcome the paper's
    semi-decision procedure can produce).
    """

    verdict: Optional[bool]
    certificate: Optional[Certificate]
    counterexample: Optional[Counterexample]
    statistics: CheckerStatistics
    raw: Optional[PreBisimResult] = None

    @property
    def proved(self) -> bool:
        return self.verdict is True

    @property
    def refuted(self) -> bool:
        return self.verdict is False

    def __str__(self) -> str:
        if self.proved:
            return f"PROVED ({self.certificate.summary()})"
        if self.refuted:
            return f"REFUTED ({self.counterexample})"
        return "UNKNOWN (proof search stuck, no counterexample found)"


def _run(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    config: Optional[CheckerConfig],
    backend: Optional[SolverBackend],
    initial_pure: Formula,
    store_relation: Optional[Formula],
    extra_initial: Optional[Iterable[GuardedFormula]],
    require_equal_acceptance: bool,
    find_counterexamples: bool,
    counterexample_max_leaps: int,
) -> EquivalenceResult:
    # With no explicit backend, the checker builds its own stack from the
    # config (internal solver, optionally wrapped in the query cache).
    checker = PreBisimulationChecker(
        left_aut,
        right_aut,
        left_start,
        right_start,
        config=config,
        backend=backend,
        initial_pure=initial_pure,
        store_relation=store_relation,
        extra_initial=extra_initial,
        require_equal_acceptance=require_equal_acceptance,
    )
    result = checker.run()
    if result.proved:
        return EquivalenceResult(True, result.certificate, None, result.statistics, result)
    counterexample = None
    if find_counterexamples and require_equal_acceptance:
        counterexample = find_counterexample(
            left_aut,
            left_start,
            right_aut,
            right_start,
            backend=InternalBackend(),
            max_leaps=counterexample_max_leaps,
        )
    verdict: Optional[bool] = False if counterexample is not None else None
    return EquivalenceResult(verdict, None, counterexample, result.statistics, result)


def check_language_equivalence(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    config: Optional[CheckerConfig] = None,
    backend: Optional[SolverBackend] = None,
    find_counterexamples: bool = True,
    counterexample_max_leaps: int = 24,
) -> EquivalenceResult:
    """Do the two parsers accept exactly the same packets?

    Acceptance is compared for *all* initial stores of both sides, matching
    ⟦aut⟧A of Definition 3.6: a proof means no choice of uninitialised header
    values and no packet can make the parsers disagree.
    """
    return _run(
        left_aut,
        left_start,
        right_aut,
        right_start,
        config,
        backend,
        TRUE,
        None,
        None,
        True,
        find_counterexamples,
        counterexample_max_leaps,
    )


def check_initial_store_independence(
    aut: P4Automaton,
    start: str,
    config: Optional[CheckerConfig] = None,
    backend: Optional[SolverBackend] = None,
    find_counterexamples: bool = True,
) -> EquivalenceResult:
    """Is the set of accepted packets independent of the initial store?

    Implemented as a self-comparison with unconstrained (and independent)
    initial stores on the two sides — the Header Initialization case study.
    """
    return check_language_equivalence(
        aut, start, aut, start, config=config, backend=backend,
        find_counterexamples=find_counterexamples,
    )


def check_store_relation(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    accept_relation: Formula,
    require_equal_acceptance: bool = True,
    initial_relation: Formula = TRUE,
    config: Optional[CheckerConfig] = None,
    backend: Optional[SolverBackend] = None,
) -> EquivalenceResult:
    """Prove a relation between the two stores at every jointly-accepting run.

    ``accept_relation`` is a pure ConfRel formula over ``h<``/``h>`` headers; it
    is required to hold whenever both parsers accept (the External Filtering
    and Relational Verification case studies).  ``initial_relation`` constrains
    the initial stores (``TRUE`` quantifies over all of them).  No
    counterexample search is attempted for relational properties.
    """
    return _run(
        left_aut,
        left_start,
        right_aut,
        right_start,
        config,
        backend,
        initial_relation,
        accept_relation,
        None,
        require_equal_acceptance,
        False,
        0,
    )
