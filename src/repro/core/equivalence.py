"""High-level verification API.

This module is the public face of the equivalence checker.  It wraps the
pre-bisimulation engine (:mod:`repro.core.algorithm`) with the verification
modes used in the paper's case studies:

* :func:`check_language_equivalence` — the headline check: two parsers accept
  exactly the same packets, regardless of their initial stores.
* :func:`check_initial_store_independence` — a parser's acceptance behaviour
  does not depend on uninitialised headers (the Header Initialization study).
* :func:`check_store_relation` — a relational property between the two final
  stores whenever both parsers accept (the External Filtering and Relational
  Verification studies).

All functions return an :class:`EquivalenceResult` carrying a verdict, a
re-checkable certificate on success, an optional concrete counterexample on
refutation, and the statistics reported in the benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..logic.confrel import Formula, TRUE
from ..p4a.syntax import P4Automaton
from ..smt.backend import InternalBackend, SolverBackend
from .algorithm import CheckerConfig, CheckerStatistics, PreBisimResult, PreBisimulationChecker
from .certificate import Certificate
from .counterexample import (
    Counterexample,
    CounterexampleSearch,
    CounterexampleStatistics,
    find_counterexample,  # noqa: F401 - re-exported for API compatibility
)
from .templates import GuardedFormula


@dataclass
class EquivalenceResult:
    """Verdict of a verification run.

    ``verdict`` is ``True`` (property proven, ``certificate`` available),
    ``False`` (refuted, ``counterexample`` available when one could be
    extracted) or ``None`` (the proof search got stuck and no counterexample
    was found within bounds — the same "no certificate" outcome the paper's
    semi-decision procedure can produce).
    """

    verdict: Optional[bool]
    certificate: Optional[Certificate]
    counterexample: Optional[Counterexample]
    statistics: CheckerStatistics
    raw: Optional[PreBisimResult] = None

    @property
    def proved(self) -> bool:
        return self.verdict is True

    @property
    def refuted(self) -> bool:
        return self.verdict is False

    def __str__(self) -> str:
        if self.proved:
            return f"PROVED ({self.certificate.summary()})"
        if self.refuted:
            return f"REFUTED ({self.counterexample})"
        return "UNKNOWN (proof search stuck, no counterexample found)"


def _run(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    config: Optional[CheckerConfig],
    backend: Optional[SolverBackend],
    initial_pure: Formula,
    store_relation: Optional[Formula],
    extra_initial: Optional[Iterable[GuardedFormula]],
    require_equal_acceptance: bool,
    find_counterexamples: bool,
    counterexample_max_leaps: int,
) -> EquivalenceResult:
    # With no explicit backend, the checker builds its own stack from the
    # config (internal solver, optionally wrapped in the query cache).
    checker = PreBisimulationChecker(
        left_aut,
        right_aut,
        left_start,
        right_start,
        config=config,
        backend=backend,
        initial_pure=initial_pure,
        store_relation=store_relation,
        extra_initial=extra_initial,
        require_equal_acceptance=require_equal_acceptance,
    )
    result = checker.run()
    statistics = result.statistics
    effective = checker.config
    # The oracle only understands language equivalence (acceptance compared
    # under unconstrained, independent stores); relational properties and
    # constrained initial conditions are out of its scope.
    oracle_applies = (
        effective.oracle_packets > 0
        and require_equal_acceptance
        and store_relation is None
        and initial_pure is TRUE
        and extra_initial is None
    )
    oracle_seed = effective.oracle_seed if effective.oracle_seed is not None else 0

    if result.proved:
        if oracle_applies:
            _cross_check_proof(
                left_aut, left_start, right_aut, right_start,
                effective.oracle_packets, oracle_seed, statistics,
            )
        return EquivalenceResult(True, result.certificate, None, statistics, result)

    counterexample = None
    search = None
    search_stats = CounterexampleStatistics()
    if find_counterexamples and require_equal_acceptance:
        search = CounterexampleSearch(
            left_aut, left_start, right_aut, right_start,
            backend=InternalBackend(use_aig=effective.use_aig),
            use_incremental=effective.use_incremental,
            statistics=search_stats,
        )
        counterexample = search.search(max_leaps=counterexample_max_leaps)
    if counterexample is None and oracle_applies:
        # The proof search got stuck and the symbolic counterexample search
        # (if any) came up empty: fuzz for a concrete witness.  The search is
        # known empty-handed at this point, so the minimizer must not be
        # offered it for re-solving — its tightened bounds are a subset of a
        # space that already contains no witness.
        search = None
        counterexample = _fuzz_for_witness(
            left_aut, left_start, right_aut, right_start,
            effective.oracle_packets, oracle_seed, statistics,
        )
    if counterexample is not None and effective.minimize_counterexamples:
        counterexample = _confirm_and_minimize(
            left_aut, left_start, right_aut, right_start,
            counterexample, search, counterexample_max_leaps, statistics,
        )
    statistics.counterexample_search = search_stats.as_dict()
    statistics.replay_divergences += search_stats.replay_divergences
    verdict: Optional[bool] = False if counterexample is not None else None
    return EquivalenceResult(verdict, None, counterexample, statistics, result)


def _cross_check_proof(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    packets: int,
    seed: int,
    statistics: CheckerStatistics,
) -> None:
    """Fuzz a proven verdict; a single disagreement is a soundness bug."""
    from ..oracle.differential import OracleDivergenceError, cross_check

    report = cross_check(
        left_aut, left_start, right_aut, right_start, packets=packets, seed=seed
    )
    statistics.oracle = dict(report.summary())
    if not report.ok:
        raise OracleDivergenceError(
            report,
            f"'equivalent' verdict for {left_aut.name} ~ {right_aut.name}",
        )


def _fuzz_for_witness(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    packets: int,
    seed: int,
    statistics: CheckerStatistics,
) -> Optional[Counterexample]:
    """Fuzz an unknown verdict for a concrete witness the search missed."""
    from ..oracle.differential import cross_check

    report = cross_check(
        left_aut, left_start, right_aut, right_start, packets=packets, seed=seed
    )
    statistics.oracle = dict(report.summary())
    if not report.divergences:
        return None
    divergence = report.divergences[0]
    return Counterexample(
        divergence.packet,
        divergence.left_store,
        divergence.right_store,
        divergence.left_accepts,
        divergence.right_accepts,
    )


def _confirm_and_minimize(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    counterexample: Counterexample,
    search: Optional[CounterexampleSearch],
    max_leaps: int,
    statistics: CheckerStatistics,
) -> Optional[Counterexample]:
    """Replay-confirm a witness, then shrink it before it is reported."""
    from ..oracle.minimize import confirm_counterexample, minimize_counterexample

    if not confirm_counterexample(
        left_aut, left_start, right_aut, right_start, counterexample
    ):
        # Every extraction path replays concretely before returning, so an
        # unconfirmed witness here means internal state was corrupted between
        # extraction and reporting; refuse to report it.
        statistics.replay_divergences += 1
        return None
    minimization = minimize_counterexample(
        left_aut, left_start, right_aut, right_start,
        counterexample, search=search, max_leaps=max_leaps,
    )
    statistics.oracle.setdefault("packets", 0)
    statistics.oracle["confirmed"] = 1
    statistics.oracle["minimized_from"] = minimization.original_width
    statistics.oracle["minimized_to"] = minimization.counterexample.packet.width
    return minimization.counterexample


def check_language_equivalence(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    config: Optional[CheckerConfig] = None,
    backend: Optional[SolverBackend] = None,
    find_counterexamples: bool = True,
    counterexample_max_leaps: int = 24,
) -> EquivalenceResult:
    """Do the two parsers accept exactly the same packets?

    Acceptance is compared for *all* initial stores of both sides, matching
    ⟦aut⟧A of Definition 3.6: a proof means no choice of uninitialised header
    values and no packet can make the parsers disagree.
    """
    return _run(
        left_aut,
        left_start,
        right_aut,
        right_start,
        config,
        backend,
        TRUE,
        None,
        None,
        True,
        find_counterexamples,
        counterexample_max_leaps,
    )


def check_initial_store_independence(
    aut: P4Automaton,
    start: str,
    config: Optional[CheckerConfig] = None,
    backend: Optional[SolverBackend] = None,
    find_counterexamples: bool = True,
) -> EquivalenceResult:
    """Is the set of accepted packets independent of the initial store?

    Implemented as a self-comparison with unconstrained (and independent)
    initial stores on the two sides — the Header Initialization case study.
    """
    return check_language_equivalence(
        aut, start, aut, start, config=config, backend=backend,
        find_counterexamples=find_counterexamples,
    )


def check_store_relation(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    accept_relation: Formula,
    require_equal_acceptance: bool = True,
    initial_relation: Formula = TRUE,
    config: Optional[CheckerConfig] = None,
    backend: Optional[SolverBackend] = None,
) -> EquivalenceResult:
    """Prove a relation between the two stores at every jointly-accepting run.

    ``accept_relation`` is a pure ConfRel formula over ``h<``/``h>`` headers; it
    is required to hold whenever both parsers accept (the External Filtering
    and Relational Verification case studies).  ``initial_relation`` constrains
    the initial stores (``TRUE`` quantifies over all of them).  No
    counterexample search is attempted for relational properties.
    """
    return _run(
        left_aut,
        left_start,
        right_aut,
        right_start,
        config,
        backend,
        initial_relation,
        accept_relation,
        None,
        require_equal_acceptance,
        False,
        0,
    )
