"""Initial relations for the pre-bisimulation algorithm.

Algorithm 1 is parameterised by a set ``I`` of formulas whose conjunction
over-approximates the property of interest on the first iteration:

* for **language equivalence**, ``I`` rules out pairs where exactly one side
  accepts (Lemma 4.10, restricted to reachable template pairs by Theorem 5.2);
* for **store relations** (the external-filtering and relational-verification
  case studies of Section 7.1), ``I`` additionally requires a user-supplied
  pure formula to hold whenever both sides accept;
* arbitrary extra guarded formulas can be supplied for bespoke relational
  properties.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..logic.confrel import FALSE, Formula
from .reachability import ReachabilityAnalysis
from .templates import GuardedFormula


def accept_mismatch_formulas(reach: ReachabilityAnalysis) -> List[GuardedFormula]:
    """``[t1< ∧ t2> ⟹ ⊥]`` for every reachable accept-mismatch pair."""
    return [GuardedFormula(pair, FALSE) for pair in reach.accept_mismatch_pairs()]


def accepting_store_formulas(
    reach: ReachabilityAnalysis, store_relation: Formula
) -> List[GuardedFormula]:
    """Require ``store_relation`` at every reachable pair where both sides accept."""
    return [GuardedFormula(pair, store_relation) for pair in reach.both_accepting_pairs()]


def initial_relation(
    reach: ReachabilityAnalysis,
    store_relation: Optional[Formula] = None,
    extra: Optional[Iterable[GuardedFormula]] = None,
    require_equal_acceptance: bool = True,
) -> List[GuardedFormula]:
    """Assemble the initial frontier ``I`` for the checker.

    ``require_equal_acceptance`` is normally True; setting it to False while
    supplying ``extra`` allows experimenting with purely store-based relations.
    """
    formulas: List[GuardedFormula] = []
    if require_equal_acceptance:
        formulas.extend(accept_mismatch_formulas(reach))
    if store_relation is not None:
        formulas.extend(accepting_store_formulas(reach, store_relation))
    if extra is not None:
        for formula in extra:
            if not reach.is_reachable(formula.pair):
                # Formulas on unreachable pairs are vacuous; keep the frontier small.
                continue
            formulas.append(formula)
    return formulas
