"""Explicit-state baselines for equivalence checking.

The paper motivates the symbolic algorithm with a back-of-the-envelope count:
even the small MPLS example has on the order of 2^128 concrete configuration
pairs, so any method that enumerates configurations explicitly is hopeless for
realistic parsers.  This module implements those hopeless-but-simple methods —
an explicit product-automaton bisimulation check and random differential
testing — both as a baseline for the ablation benchmarks and as an independent
oracle for tiny automata in the test suite.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Optional

from ..p4a.bitvec import Bits
from ..p4a.semantics import Store, accepts, initial_configuration, step
from ..p4a.syntax import P4Automaton, REJECT


@dataclass
class ExplicitCheckResult:
    """Outcome of an explicit product-space exploration."""

    equivalent: bool
    visited_pairs: int
    counterexample: Optional[Bits] = None


def explicit_bisimulation_check(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    left_store: Optional[Store] = None,
    right_store: Optional[Store] = None,
    max_pairs: int = 2_000_000,
) -> ExplicitCheckResult:
    """Explore the product of the two configuration spaces breadth first.

    This checks language equivalence for *fixed* initial stores.  The packet
    leading to each pair is tracked so a mismatch immediately yields a
    counterexample.  The exploration is exact: if it completes without finding
    a mismatch the two configurations are language equivalent.
    """
    left_initial = initial_configuration(left_aut, left_start, left_store)
    right_initial = initial_configuration(right_aut, right_start, right_store)
    queue = deque([(left_initial, right_initial, Bits(""))])
    seen = {(left_initial, right_initial)}
    visited = 0
    while queue:
        left_config, right_config, packet = queue.popleft()
        visited += 1
        if visited > max_pairs:
            raise RuntimeError(
                f"explicit exploration exceeded {max_pairs} configuration pairs"
            )
        if left_config.is_accepting() != right_config.is_accepting():
            return ExplicitCheckResult(False, visited, packet)
        if left_config.state == REJECT and right_config.state == REJECT:
            # Both sides are stuck in reject: no future packet can distinguish them.
            continue
        for bit in (0, 1):
            next_left = step(left_aut, left_config, bit)
            next_right = step(right_aut, right_config, bit)
            key = (next_left, next_right)
            if key not in seen:
                seen.add(key)
                queue.append((next_left, next_right, packet.concat(Bits("1" if bit else "0"))))
    return ExplicitCheckResult(True, visited)


def all_stores(aut: P4Automaton) -> Iterator[Store]:
    """Enumerate every possible store (exponential; tiny automata only)."""
    names = list(aut.headers)
    widths = [aut.headers[name] for name in names]
    total = sum(widths)
    if total > 24:
        raise ValueError(f"refusing to enumerate 2^{total} stores")
    for assignment in product("01", repeat=total):
        store: Store = {}
        position = 0
        for name, width in zip(names, widths):
            store[name] = Bits("".join(assignment[position : position + width]))
            position += width
        yield store


def exhaustive_store_equivalence(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
) -> ExplicitCheckResult:
    """Explicit equivalence over *all* initial stores of both sides."""
    visited = 0
    for left_store in all_stores(left_aut):
        for right_store in all_stores(right_aut):
            result = explicit_bisimulation_check(
                left_aut, left_start, right_aut, right_start, left_store, right_store
            )
            visited += result.visited_pairs
            if not result.equivalent:
                return ExplicitCheckResult(False, visited, result.counterexample)
    return ExplicitCheckResult(True, visited)


@dataclass
class DifferentialMismatch:
    packet: Bits
    left_store: Store
    right_store: Store
    left_accepts: bool
    right_accepts: bool


def random_store(aut: P4Automaton, rng: random.Random) -> Store:
    return {
        name: Bits("".join(rng.choice("01") for _ in range(width)))
        for name, width in aut.headers.items()
    }


def random_differential_test(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    packets: int = 200,
    max_bits: int = 256,
    seed: int = 0,
    share_store: bool = False,
) -> Optional[DifferentialMismatch]:
    """Fuzz both parsers with random packets (and random initial stores).

    Returns the first disagreement found, or ``None``.  ``share_store=True``
    uses the same random values for headers with the same name on both sides,
    which is the right notion for self-comparisons.
    """
    rng = random.Random(seed)
    for _ in range(packets):
        length = rng.randint(0, max_bits)
        packet = Bits("".join(rng.choice("01") for _ in range(length)))
        left_store = random_store(left_aut, rng)
        if share_store:
            right_store = {
                name: left_store.get(name, Bits.zeros(width))
                if left_store.get(name, Bits.zeros(width)).width == width
                else Bits.zeros(width)
                for name, width in right_aut.headers.items()
            }
            for name, width in right_aut.headers.items():
                if name not in left_store or left_store[name].width != width:
                    right_store[name] = Bits("".join(rng.choice("01") for _ in range(width)))
        else:
            right_store = random_store(right_aut, rng)
        left_accepts = accepts(left_aut, left_start, packet, left_store)
        right_accepts = accepts(right_aut, right_start, packet, right_store)
        if left_accepts != right_accepts:
            return DifferentialMismatch(packet, left_store, right_store, left_accepts, right_accepts)
    return None
