"""Reachability analysis over template pairs (Section 5.1 and 5.3).

Computing the exact set of reachable configuration pairs is as hard as the
equivalence problem itself, so Leapfrog over-approximates it by an abstract
interpretation of the step function on *templates*: from a pair of templates
one can compute the possible pairs of templates after a (leaping) step without
looking at stores at all.  Restricting the initial relation and the weakest
precondition operator to reachable template pairs prunes a large part of the
search (Theorem 5.2); the paper reports that the smallest benchmark does not
finish without it.

Two abstractions are provided:

* :func:`successor_templates_bit` — the paper's σ, one bit at a time;
* :func:`successor_pairs_leap` — the joint, leap-aware abstraction used when
  the leaps optimization is enabled (Section 5.3).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set, Tuple

from ..p4a.syntax import FINAL_STATES, P4Automaton
from .templates import REJECT_TEMPLATE, Template, TemplatePair, leap_size


def successor_templates_bit(aut: P4Automaton, template: Template) -> Tuple[Template, ...]:
    """σ(q, n): templates reachable by consuming exactly one bit (Section 5.1)."""
    if template.is_final():
        return (REJECT_TEMPLATE,)
    size = aut.op_size(template.state)
    if template.pos + 1 < size:
        return (Template(template.state, template.pos + 1),)
    targets = aut.transition_targets(template.state)
    return tuple(
        Template(target, 0) if target not in FINAL_STATES else Template(target, 0)
        for target in targets
    )


def successor_templates_leap(aut: P4Automaton, template: Template, leap: int) -> Tuple[Template, ...]:
    """Templates reachable from ``template`` by consuming exactly ``leap`` bits,
    where ``leap`` never overshoots the end of the current operation block."""
    if template.is_final():
        return (REJECT_TEMPLATE,)
    size = aut.op_size(template.state)
    if template.pos + leap < size:
        return (Template(template.state, template.pos + leap),)
    if template.pos + leap == size:
        return tuple(Template(target, 0) for target in aut.transition_targets(template.state))
    raise ValueError(
        f"leap of {leap} bits overshoots state {template.state!r} "
        f"({template.pos} + {leap} > {size})"
    )


def successor_pairs_bit(
    left_aut: P4Automaton, right_aut: P4Automaton, pair: TemplatePair
) -> Tuple[TemplatePair, ...]:
    """Joint successors under a single-bit step: σ(t1) × σ(t2)."""
    lefts = successor_templates_bit(left_aut, pair.left)
    rights = successor_templates_bit(right_aut, pair.right)
    return tuple(TemplatePair(l, r) for l in lefts for r in rights)


def successor_pairs_leap(
    left_aut: P4Automaton, right_aut: P4Automaton, pair: TemplatePair
) -> Tuple[TemplatePair, ...]:
    """Joint successors under a leap of ♯(pair) bits (Section 5.3)."""
    leap = leap_size(left_aut, right_aut, pair)
    lefts = successor_templates_leap(left_aut, pair.left, leap)
    rights = successor_templates_leap(right_aut, pair.right, leap)
    return tuple(TemplatePair(l, r) for l in lefts for r in rights)


class ReachabilityAnalysis:
    """Fixpoint of the template-pair abstraction from a set of initial pairs.

    ``use_leaps`` selects the leap-aware abstraction; ``use_reachability=False``
    (exposed by the checker for ablation studies) corresponds to using the full
    product of all templates instead of this analysis.
    """

    def __init__(
        self,
        left_aut: P4Automaton,
        right_aut: P4Automaton,
        initial_pairs: Iterable[TemplatePair],
        use_leaps: bool = True,
    ) -> None:
        self.left_aut = left_aut
        self.right_aut = right_aut
        self.use_leaps = use_leaps
        self.initial_pairs: Tuple[TemplatePair, ...] = tuple(initial_pairs)
        self._successors: Dict[TemplatePair, Tuple[TemplatePair, ...]] = {}
        self._predecessors: Dict[TemplatePair, List[TemplatePair]] = {}
        self.reachable: Set[TemplatePair] = set()
        self._run()

    def _step(self, pair: TemplatePair) -> Tuple[TemplatePair, ...]:
        if self.use_leaps:
            return successor_pairs_leap(self.left_aut, self.right_aut, pair)
        return successor_pairs_bit(self.left_aut, self.right_aut, pair)

    def _run(self) -> None:
        queue = deque(self.initial_pairs)
        self.reachable.update(self.initial_pairs)
        while queue:
            pair = queue.popleft()
            successors = self._step(pair)
            self._successors[pair] = successors
            for successor in successors:
                self._predecessors.setdefault(successor, []).append(pair)
                if successor not in self.reachable:
                    self.reachable.add(successor)
                    queue.append(successor)

    # -- queries ---------------------------------------------------------------

    def successors(self, pair: TemplatePair) -> Tuple[TemplatePair, ...]:
        return self._successors.get(pair, ())

    def predecessors(self, pair: TemplatePair) -> Tuple[TemplatePair, ...]:
        """Reachable pairs that can step (or leap) into ``pair``."""
        return tuple(self._predecessors.get(pair, ()))

    def is_reachable(self, pair: TemplatePair) -> bool:
        return pair in self.reachable

    def accept_mismatch_pairs(self) -> List[TemplatePair]:
        """Reachable pairs where exactly one side accepts (Lemma 4.10's targets)."""
        return sorted(pair for pair in self.reachable if pair.accept_mismatch())

    def both_accepting_pairs(self) -> List[TemplatePair]:
        return sorted(pair for pair in self.reachable if pair.both_accepting())

    def __len__(self) -> int:
        return len(self.reachable)


def full_template_product(
    left_aut: P4Automaton, right_aut: P4Automaton
) -> List[TemplatePair]:
    """Every template pair — the unpruned search space used when the
    reachability optimization is disabled."""
    from .templates import all_templates

    return [
        TemplatePair(left, right)
        for left in all_templates(left_aut)
        for right in all_templates(right_aut)
    ]
