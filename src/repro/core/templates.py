"""Templates and template-guarded formulas (Definition 4.7, Definition 5.3).

A *template* ⟨q, n⟩ abstracts a configuration by its state and buffer length.
Template-guarded formulas pair two templates (one per side) with a pure
ConfRel formula; the guard fixes each side's state and buffer width so the
pure part never has to reason about out-of-range slices.

This module also computes *leap sizes* (Definition 5.3): the number of bits
both automata can consume before either of them performs a real state-to-state
transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..logic.confrel import Formula, FTrue
from ..p4a.semantics import Configuration
from ..p4a.syntax import ACCEPT, FINAL_STATES, P4Automaton, REJECT


class TemplateError(Exception):
    """Raised on malformed templates or guards."""


@dataclass(frozen=True, order=True)
class Template:
    """A template ⟨state, buffer length⟩."""

    state: str
    pos: int

    def is_final(self) -> bool:
        return self.state in FINAL_STATES

    def is_accepting(self) -> bool:
        return self.state == ACCEPT

    def __str__(self) -> str:
        return f"⟨{self.state}, {self.pos}⟩"


ACCEPT_TEMPLATE = Template(ACCEPT, 0)
REJECT_TEMPLATE = Template(REJECT, 0)


def template_of(config: Configuration) -> Template:
    """⌊c⌋: the unique template describing a configuration (Section 5.1)."""
    return Template(config.state, config.buffer.width)


def check_template(aut: P4Automaton, template: Template) -> None:
    """Validate that ``template`` is well-formed for ``aut``."""
    if template.state in FINAL_STATES:
        if template.pos != 0:
            raise TemplateError(f"final template {template} must have position 0")
        return
    size = aut.op_size(template.state)
    if not 0 <= template.pos < size:
        raise TemplateError(
            f"template {template} has position outside [0, {size}) for state {template.state!r}"
        )


def all_templates(aut: P4Automaton) -> List[Template]:
    """Every template of ``aut`` including the two final ones."""
    templates = [ACCEPT_TEMPLATE, REJECT_TEMPLATE]
    for state in aut.states:
        templates.extend(Template(state, pos) for pos in range(aut.op_size(state)))
    return templates


@dataclass(frozen=True, order=True)
class TemplatePair:
    """A pair of templates, one for the left automaton and one for the right."""

    left: Template
    right: Template

    def accept_mismatch(self) -> bool:
        """Exactly one side is the accepting template (Lemma 4.10's condition)."""
        return self.left.is_accepting() != self.right.is_accepting()

    def both_accepting(self) -> bool:
        return self.left.is_accepting() and self.right.is_accepting()

    def __str__(self) -> str:
        return f"({self.left}, {self.right})"


def leap_size(left_aut: P4Automaton, right_aut: P4Automaton, pair: TemplatePair) -> int:
    """♯(c1, c2): bits until the next real transition of either side (Def 5.3)."""
    left_final = pair.left.is_final()
    right_final = pair.right.is_final()
    if left_final and right_final:
        return 1
    left_remaining = None if left_final else left_aut.op_size(pair.left.state) - pair.left.pos
    right_remaining = None if right_final else right_aut.op_size(pair.right.state) - pair.right.pos
    if left_final:
        return right_remaining
    if right_final:
        return left_remaining
    return min(left_remaining, right_remaining)


@dataclass(frozen=True)
class GuardedFormula:
    """A template-guarded formula ``t1< ∧ t2> ⟹ pure`` (Definition 4.7)."""

    pair: TemplatePair
    pure: Formula

    @property
    def left(self) -> Template:
        return self.pair.left

    @property
    def right(self) -> Template:
        return self.pair.right

    def __str__(self) -> str:
        return f"{self.pair.left}< ∧ {self.pair.right}> ⟹ {self.pure}"


def guard(left: Template, right: Template, pure: Formula = None) -> GuardedFormula:
    """Convenience constructor for guarded formulas."""
    return GuardedFormula(TemplatePair(left, right), pure if pure is not None else FTrue())
