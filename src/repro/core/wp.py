"""Symbolic execution and weakest preconditions over template-guarded formulas.

This module implements the WP operator of Sections 4.3 and 5.2.  Given a
template-guarded formula φ = (t1, t2 ⟹ ψ) and a *source* template pair, it
computes a formula that holds at a source configuration pair exactly when all
configurations reached after consuming the next ``k`` packet bits (``k`` = 1 in
bit-by-bit mode, ``k`` = the leap size otherwise) that land in (t1, t2) satisfy
ψ.  The next packet bits are represented by a fresh symbolic variable shared
between both sides — both automata read the same wire.

The computation has two parts:

* :func:`symbolic_leap` symbolically executes one side from a source template:
  either the leap only fills the buffer, or it completes the operation block,
  in which case the block is executed symbolically (extracts slice the input,
  assignments evaluate expressions over the symbolic store) and the transition
  condition for each possible target state is produced.
* :func:`wp_formula` combines the two sides: for each pair of outcomes landing
  in the target templates it substitutes the post-state expressions into ψ and
  guards the result with both path conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Sequence

from ..logic.confrel import (
    LEFT,
    RIGHT,
    BVExpr,
    CBuf,
    CConcat,
    CHdr,
    CLit,
    CSlice,
    CVar,
    Formula,
    FTrue,
    map_formula_exprs,
)
from ..logic.simplify import (
    mk_and,
    mk_concat,
    mk_eq,
    mk_impl,
    mk_not,
    mk_or,
    mk_slice,
    simplify_formula,
)
from ..p4a import syntax as p4a_syntax
from ..p4a.bitvec import Bits
from ..p4a.syntax import (
    Assign,
    BVLit,
    Concat,
    ExactPattern,
    Expr,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Select,
    Slice,
    WildcardPattern,
)
from .templates import GuardedFormula, Template, TemplatePair, leap_size


class WpError(Exception):
    """Raised on internal errors during weakest-precondition computation."""


_fresh_counter = count()


def fresh_variable_name(prefix: str = "leap") -> str:
    """A globally fresh symbolic variable name."""
    return f"{prefix}_{next(_fresh_counter)}"


# ---------------------------------------------------------------------------
# Symbolic environments
# ---------------------------------------------------------------------------


def initial_symbolic_store(aut: P4Automaton, side: str) -> Dict[str, BVExpr]:
    """The symbolic store where every header maps to its pre-state value."""
    return {name: CHdr(side, name, size) for name, size in aut.headers.items()}


def translate_expr(expr: Expr, env: Dict[str, BVExpr]) -> BVExpr:
    """Translate a P4A expression into a ConfRel expression under ``env``.

    Slices follow the clamped semantics of Definition 3.1 so the translation
    agrees with concrete evaluation even for out-of-range indices.
    """
    if isinstance(expr, HeaderRef):
        try:
            return env[expr.name]
        except KeyError:
            raise WpError(f"header {expr.name!r} missing from symbolic store") from None
    if isinstance(expr, BVLit):
        return CLit(expr.value)
    if isinstance(expr, Slice):
        inner = translate_expr(expr.expr, env)
        if inner.width == 0:
            return CLit(Bits(""))
        lo = min(expr.lo, inner.width - 1)
        hi = min(expr.hi, inner.width - 1)
        if lo > hi:
            return CLit(Bits(""))
        return mk_slice(inner, lo, hi)
    if isinstance(expr, Concat):
        return mk_concat(translate_expr(expr.left, env), translate_expr(expr.right, env))
    raise WpError(f"unknown expression {expr!r}")


def exec_ops_symbolic(
    aut: P4Automaton, state: str, env: Dict[str, BVExpr], data: BVExpr
) -> Dict[str, BVExpr]:
    """Symbolically execute the operation block of ``state`` on input ``data``."""
    expected = aut.op_size(state)
    if data.width != expected:
        raise WpError(
            f"state {state!r} consumes {expected} bits but was given {data.width}"
        )
    current = dict(env)
    position = 0
    for op in aut.state(state).ops:
        if isinstance(op, Extract):
            size = aut.header_size(op.header)
            current[op.header] = mk_slice(data, position, position + size - 1)
            position += size
        elif isinstance(op, Assign):
            value = translate_expr(op.expr, current)
            if value.width != aut.header_size(op.header):
                raise WpError(
                    f"assignment to {op.header!r} has width {value.width}, "
                    f"expected {aut.header_size(op.header)}"
                )
            current[op.header] = value
        else:
            raise WpError(f"unknown operation {op!r}")
    return current


def transition_conditions(
    aut: P4Automaton, state: str, env: Dict[str, BVExpr]
) -> Dict[str, Formula]:
    """The condition under which ``state``'s transition goes to each target.

    Implements the first-match semantics of ``select``: the condition for case
    ``i`` is "no earlier case matches and case ``i`` matches"; the fall-through
    to ``reject`` is "no case matches".  Conditions for the same target are
    disjoined.
    """
    transition = aut.state(state).transition
    conditions: Dict[str, List[Formula]] = {}

    def add(target: str, condition: Formula) -> None:
        conditions.setdefault(target, []).append(condition)

    if isinstance(transition, Goto):
        add(transition.target, FTrue())
    elif isinstance(transition, Select):
        values = [translate_expr(expr, env) for expr in transition.exprs]
        earlier_mismatch: List[Formula] = []
        for case in transition.cases:
            matches = []
            for pattern, value in zip(case.patterns, values):
                if isinstance(pattern, WildcardPattern):
                    continue
                if isinstance(pattern, ExactPattern):
                    matches.append(mk_eq(value, CLit(pattern.value)))
                else:
                    raise WpError(f"unknown pattern {pattern!r}")
            case_match = mk_and(matches)
            add(case.target, mk_and(list(earlier_mismatch) + [case_match]))
            earlier_mismatch.append(mk_not(case_match))
        # Fall-through: no case matched.
        add(p4a_syntax.REJECT, mk_and(earlier_mismatch))
    else:
        raise WpError(f"unknown transition {transition!r}")
    return {target: mk_or(parts) for target, parts in conditions.items()}


# ---------------------------------------------------------------------------
# Leap outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LeapOutcome:
    """One possible result of consuming ``k`` bits from a source template.

    ``condition`` is a pure formula over the *source* configuration symbols
    (headers, buffer) and the leap variable; ``headers`` and ``buffer`` give
    the post-state values as expressions over the same symbols.
    """

    target: Template
    condition: Formula
    headers: Dict[str, BVExpr]
    buffer: BVExpr


def symbolic_leap(
    aut: P4Automaton, side: str, source: Template, leap: int, leap_var: CVar
) -> List[LeapOutcome]:
    """All outcomes of consuming exactly ``leap`` bits from ``source``."""
    if leap != leap_var.width:
        raise WpError(f"leap variable has width {leap_var.width}, expected {leap}")
    env = initial_symbolic_store(aut, side)
    if source.is_final():
        # One or more steps from accept/reject always lands in reject with an
        # empty buffer and an unchanged store.
        return [LeapOutcome(Template(p4a_syntax.REJECT, 0), FTrue(), env, CLit(Bits("")))]
    needed = aut.op_size(source.state)
    buffer = CBuf(side, source.pos) if source.pos else CLit(Bits(""))
    data = mk_concat(buffer, leap_var)
    if source.pos + leap < needed:
        # The leap only fills the buffer.
        return [
            LeapOutcome(Template(source.state, source.pos + leap), FTrue(), env, data)
        ]
    if source.pos + leap > needed:
        raise WpError(
            f"leap of {leap} bits overshoots state {source.state!r} "
            f"({source.pos} + {leap} > {needed})"
        )
    # The leap completes the operation block: execute it and branch.
    post_env = exec_ops_symbolic(aut, source.state, env, data)
    outcomes = []
    for target, condition in transition_conditions(aut, source.state, post_env).items():
        outcomes.append(
            LeapOutcome(Template(target, 0), condition, post_env, CLit(Bits("")))
        )
    return outcomes


# ---------------------------------------------------------------------------
# Substitution of post-state expressions into the target formula
# ---------------------------------------------------------------------------


def substitute_configuration(
    formula: Formula,
    left_outcome: LeapOutcome,
    right_outcome: LeapOutcome,
) -> Formula:
    """Replace each side's header and buffer references by post-state values."""

    def substitute_expr(expr: BVExpr) -> BVExpr:
        if isinstance(expr, CHdr):
            outcome = left_outcome if expr.side == LEFT else right_outcome
            value = outcome.headers.get(expr.name)
            if value is None:
                raise WpError(f"header {expr.name!r} missing from {expr.side} outcome")
            if value.width != expr.width:
                raise WpError(
                    f"substitution for {expr} has width {value.width}, expected {expr.width}"
                )
            return value
        if isinstance(expr, CBuf):
            outcome = left_outcome if expr.side == LEFT else right_outcome
            if outcome.buffer.width != expr.width:
                raise WpError(
                    f"substitution for {expr} has width {outcome.buffer.width}, "
                    f"expected {expr.width}"
                )
            return outcome.buffer
        if isinstance(expr, CSlice):
            return mk_slice(substitute_expr(expr.expr), expr.lo, expr.hi)
        if isinstance(expr, CConcat):
            return mk_concat(substitute_expr(expr.left), substitute_expr(expr.right))
        return expr

    return simplify_formula(map_formula_exprs(formula, substitute_expr))


# ---------------------------------------------------------------------------
# Weakest precondition
# ---------------------------------------------------------------------------


def wp_formula(
    left_aut: P4Automaton,
    right_aut: P4Automaton,
    target: GuardedFormula,
    source_pair: TemplatePair,
    use_leaps: bool = True,
    leap_var_name: Optional[str] = None,
) -> GuardedFormula:
    """The weakest precondition of ``target`` along a step from ``source_pair``.

    The returned guarded formula holds at a configuration pair matching
    ``source_pair`` exactly when every continuation by the leap's packet bits
    that lands in ``target``'s template pair satisfies ``target``'s pure part
    (Lemma 4.9 / Theorem 5.7).  If no continuation can land in the target
    templates, the result is trivially true.
    """
    leap = leap_size(left_aut, right_aut, source_pair) if use_leaps else 1
    name = leap_var_name or fresh_variable_name()
    leap_var = CVar(name, leap)
    left_outcomes = symbolic_leap(left_aut, LEFT, source_pair.left, leap, leap_var)
    right_outcomes = symbolic_leap(right_aut, RIGHT, source_pair.right, leap, leap_var)
    conjuncts: List[Formula] = []
    for left_outcome in left_outcomes:
        if left_outcome.target != target.left:
            continue
        for right_outcome in right_outcomes:
            if right_outcome.target != target.right:
                continue
            substituted = substitute_configuration(target.pure, left_outcome, right_outcome)
            condition = mk_and([left_outcome.condition, right_outcome.condition])
            conjuncts.append(mk_impl(condition, substituted))
    return GuardedFormula(source_pair, simplify_formula(mk_and(conjuncts)))


def wp_set(
    left_aut: P4Automaton,
    right_aut: P4Automaton,
    target: GuardedFormula,
    source_pairs: Sequence[TemplatePair],
    use_leaps: bool = True,
) -> List[GuardedFormula]:
    """WP(φ): one guarded formula per source pair, dropping trivially true ones."""
    results = []
    for source_pair in source_pairs:
        formula = wp_formula(left_aut, right_aut, target, source_pair, use_leaps=use_leaps)
        if not isinstance(formula.pure, FTrue):
            results.append(formula)
    return results
