"""Validated parsing of the ``LEAPFROG_*`` environment variables.

Every entry point that reads configuration from the environment (the CLI and
the benchmark harness) goes through these helpers, so a typo like
``LEAPFROG_JOBS=abc`` fails with a message naming the variable and the
accepted values instead of a bare ``ValueError`` from ``int()``, and an
out-of-range value (``0`` worker processes) can never reach the engine.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional


class EnvConfigError(ValueError):
    """Raised when an environment variable holds an unusable value."""


#: Worker count for the equivalence engine (≥ 1; default 1, sequential).
JOBS_VAR = "LEAPFROG_JOBS"
#: Default shard count for ``repro campaign run`` (≥ 1; default 1).
SHARDS_VAR = "LEAPFROG_SHARDS"
#: Directory for the persistent solver-query cache (unset = in-memory only).
CACHE_DIR_VAR = "LEAPFROG_CACHE_DIR"
#: Ablation toggle for the incremental solver session (unset = per-config default).
INCREMENTAL_VAR = "LEAPFROG_INCREMENTAL"
#: Ablation toggle for AIG simplification in the lowering pipeline
#: (unset = per-config default, which is on).
AIG_VAR = "LEAPFROG_AIG"
#: Differential-oracle packet count per verdict; also accepts on/off
#: (on = the default packet budget).  Unset/0/off disables the oracle.
ORACLE_VAR = "LEAPFROG_ORACLE"
#: Seed threaded through every random sampler (oracle, benchmarks, tests).
SEED_VAR = "LEAPFROG_SEED"
#: Address of a running ``repro serve`` daemon: a unix-socket path (bare or
#: ``unix:`` prefixed) or ``http://host:port``.  When set, the CLI commands
#: become thin clients of the daemon; unset = in-process checking.
SERVER_VAR = "LEAPFROG_SERVER"
#: Backend solver selection (unset = the internal CDCL stack).  Accepts the
#: internal engines (``internal``/``cdcl``, ``dpll``/``internal-dpll``) and
#: the external SMT solvers in :data:`EXTERNAL_SOLVERS`; anything else is a
#: configuration error, never a silent fallback.
SOLVER_VAR = "LEAPFROG_SOLVER"
#: Portfolio-mode toggle: race the internal solver against every external
#: solver found on PATH, first definitive answer wins (default off).
PORTFOLIO_VAR = "LEAPFROG_PORTFOLIO"
#: Learned-clause database cap for the internal CDCL solver; also accepts
#: on/off (on = the solver's default cap, off/0 = keep every learned clause).
#: Unset = per-config default, which is the default cap.
CLAUSE_DB_VAR = "LEAPFROG_CLAUSE_DB"

#: The external SMT solvers the backend layer knows how to drive, in
#: preference order.  ``smt.backend.EXTERNAL_SOLVER_COMMANDS`` maps each name
#: to its command line; a test pins the two in sync.
EXTERNAL_SOLVERS = ("z3", "cvc5", "cvc4", "boolector")

#: Spellings that select the internal solver stack.
INTERNAL_SOLVERS = ("internal", "cdcl", "dpll", "internal-dpll")

#: Every value :func:`parse_solver` accepts (the CLI ``--solver`` choices).
SOLVER_CHOICES = INTERNAL_SOLVERS + EXTERNAL_SOLVERS

#: Packet budget used when ``LEAPFROG_ORACLE`` is a bare "on"/"true".
DEFAULT_ORACLE_PACKETS = 64

#: Learned-clause cap used when ``LEAPFROG_CLAUSE_DB`` is a bare "on"/"true".
#: Mirrors ``repro.smt.sat.solver.DEFAULT_CLAUSE_DB_MAX`` (a test pins the
#: two in sync) — duplicated here so parsing an environment variable does not
#: import the solver stack.
DEFAULT_CLAUSE_DB_MAX = 4000

_TRUE_VALUES = ("1", "true", "yes", "on")
_FALSE_VALUES = ("0", "false", "no", "off")


def parse_jobs(raw: Optional[str], source: str = JOBS_VAR) -> int:
    """Parse a worker count: a positive integer, with ``None``/empty = 1.

    ``source`` names the variable (or flag) in error messages.
    """
    if raw is None or raw.strip() == "":
        return 1
    try:
        jobs = int(raw.strip())
    except ValueError:
        raise EnvConfigError(
            f"{source} must be a positive integer, got {raw!r}"
        ) from None
    if jobs < 1:
        raise EnvConfigError(f"{source} must be >= 1, got {jobs}")
    return jobs


def jobs_from_env(environ: Optional[Mapping[str, str]] = None) -> int:
    """The engine worker count requested via ``LEAPFROG_JOBS`` (default 1)."""
    environ = os.environ if environ is None else environ
    return parse_jobs(environ.get(JOBS_VAR), source=JOBS_VAR)


def shards_from_env(environ: Optional[Mapping[str, str]] = None) -> int:
    """The campaign shard count from ``LEAPFROG_SHARDS`` (default 1).

    Same grammar as ``LEAPFROG_JOBS`` — a positive integer — since a shard
    count is a split factor, not a worker count.
    """
    environ = os.environ if environ is None else environ
    return parse_jobs(environ.get(SHARDS_VAR), source=SHARDS_VAR)


def cache_dir_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """The persistent cache directory from ``LEAPFROG_CACHE_DIR`` (or ``None``)."""
    environ = os.environ if environ is None else environ
    value = environ.get(CACHE_DIR_VAR)
    if value is None or value.strip() == "":
        return None
    return value


def parse_flag(raw: Optional[str], source: str) -> Optional[bool]:
    """Parse a boolean toggle; ``None``/empty means "not set"."""
    if raw is None or raw.strip() == "":
        return None
    value = raw.strip().lower()
    if value in _TRUE_VALUES:
        return True
    if value in _FALSE_VALUES:
        return False
    raise EnvConfigError(
        f"{source} must be one of {_TRUE_VALUES + _FALSE_VALUES}, got {raw!r}"
    )


def incremental_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[bool]:
    """The ``LEAPFROG_INCREMENTAL`` toggle: True/False, or ``None`` when unset."""
    environ = os.environ if environ is None else environ
    return parse_flag(environ.get(INCREMENTAL_VAR), source=INCREMENTAL_VAR)


def aig_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[bool]:
    """The ``LEAPFROG_AIG`` toggle: True/False, or ``None`` when unset."""
    environ = os.environ if environ is None else environ
    return parse_flag(environ.get(AIG_VAR), source=AIG_VAR)


def parse_oracle_packets(raw: Optional[str], source: str = ORACLE_VAR) -> Optional[int]:
    """Parse an oracle packet budget; ``None``/empty means "not set".

    Accepts a non-negative integer (0 = oracle off) or the boolean words
    accepted by :func:`parse_flag` (``on`` = the default budget of
    ``DEFAULT_ORACLE_PACKETS`` packets).
    """
    if raw is None or raw.strip() == "":
        return None
    value = raw.strip().lower()
    if value in _TRUE_VALUES:
        return DEFAULT_ORACLE_PACKETS
    if value in _FALSE_VALUES:
        return 0
    try:
        packets = int(value)
    except ValueError:
        raise EnvConfigError(
            f"{source} must be a non-negative integer or one of "
            f"{_TRUE_VALUES + _FALSE_VALUES}, got {raw!r}"
        ) from None
    if packets < 0:
        raise EnvConfigError(f"{source} must be >= 0, got {packets}")
    return packets


def oracle_packets_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[int]:
    """The ``LEAPFROG_ORACLE`` packet budget, or ``None`` when unset."""
    environ = os.environ if environ is None else environ
    return parse_oracle_packets(environ.get(ORACLE_VAR), source=ORACLE_VAR)


def parse_clause_db(raw: Optional[str], source: str = CLAUSE_DB_VAR) -> Optional[int]:
    """Parse a learned-clause database cap; ``None``/empty means "not set".

    Accepts a non-negative integer (0 = keep every learned clause forever) or
    the boolean words accepted by :func:`parse_flag` (``on`` = the solver's
    default cap of ``DEFAULT_CLAUSE_DB_MAX`` clauses, ``off`` = 0).
    """
    if raw is None or raw.strip() == "":
        return None
    value = raw.strip().lower()
    if value in _TRUE_VALUES:
        return DEFAULT_CLAUSE_DB_MAX
    if value in _FALSE_VALUES:
        return 0
    try:
        cap = int(value)
    except ValueError:
        raise EnvConfigError(
            f"{source} must be a non-negative integer or one of "
            f"{_TRUE_VALUES + _FALSE_VALUES}, got {raw!r}"
        ) from None
    if cap < 0:
        raise EnvConfigError(f"{source} must be >= 0, got {cap}")
    return cap


def clause_db_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[int]:
    """The ``LEAPFROG_CLAUSE_DB`` cap, or ``None`` when unset."""
    environ = os.environ if environ is None else environ
    return parse_clause_db(environ.get(CLAUSE_DB_VAR), source=CLAUSE_DB_VAR)


def parse_seed(raw: Optional[str], source: str = SEED_VAR) -> Optional[int]:
    """Parse a sampler seed (any integer); ``None``/empty means "not set"."""
    if raw is None or raw.strip() == "":
        return None
    try:
        return int(raw.strip())
    except ValueError:
        raise EnvConfigError(f"{source} must be an integer, got {raw!r}") from None


def seed_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[int]:
    """The ``LEAPFROG_SEED`` sampler seed, or ``None`` when unset."""
    environ = os.environ if environ is None else environ
    return parse_seed(environ.get(SEED_VAR), source=SEED_VAR)


def parse_solver(raw: Optional[str], source: str = SOLVER_VAR) -> Optional[str]:
    """Parse a solver selection; ``None``/empty means "not set".

    Returns the normalised (lower-cased) solver name.  An unknown name — a
    typo like ``z33`` — is an :class:`EnvConfigError`, not a silent fallback
    to the internal solver: whether the named solver is actually installed is
    checked later by the backend layer, but the *name* must be one we know.
    """
    if raw is None or raw.strip() == "":
        return None
    value = raw.strip().lower()
    if value in SOLVER_CHOICES:
        return value
    raise EnvConfigError(
        f"{source} must be one of {SOLVER_CHOICES}, got {raw!r}"
    )


def solver_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """The ``LEAPFROG_SOLVER`` selection, or ``None`` when unset."""
    environ = os.environ if environ is None else environ
    return parse_solver(environ.get(SOLVER_VAR), source=SOLVER_VAR)


def portfolio_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[bool]:
    """The ``LEAPFROG_PORTFOLIO`` toggle: True/False, or ``None`` when unset."""
    environ = os.environ if environ is None else environ
    return parse_flag(environ.get(PORTFOLIO_VAR), source=PORTFOLIO_VAR)


def server_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """The ``LEAPFROG_SERVER`` daemon address, or ``None`` when unset."""
    environ = os.environ if environ is None else environ
    value = environ.get(SERVER_VAR)
    if value is None or value.strip() == "":
        return None
    return value.strip()
