"""Configuration-relation logic and the lowering chain to FOL(BV)."""

from . import confrel, folbv, folconf, simplify, smtlib
from .compile import EntailmentQuery, compile_entailment, compile_validity, lower_formula

__all__ = [
    "EntailmentQuery",
    "compile_entailment",
    "compile_validity",
    "confrel",
    "folbv",
    "folconf",
    "lower_formula",
    "simplify",
    "smtlib",
]
