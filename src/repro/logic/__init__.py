"""Configuration-relation logic and the lowering chain to FOL(BV)."""

from . import confrel, fingerprint, folbv, folconf, simplify, smtlib
from .compile import EntailmentQuery, compile_entailment, compile_validity, lower_formula
from .fingerprint import confrel_fingerprint, folbv_fingerprint, intern_formula, intern_term

__all__ = [
    "EntailmentQuery",
    "compile_entailment",
    "compile_validity",
    "confrel",
    "confrel_fingerprint",
    "fingerprint",
    "folbv",
    "folbv_fingerprint",
    "folconf",
    "intern_formula",
    "intern_term",
    "lower_formula",
    "simplify",
    "smtlib",
]
