"""The verified compilation chain ConfRel → ConfRelSimp → FOL(Conf) → FOL(BV).

This module mirrors the lowering pipeline of Figure 6:

1. **Algebraic simplification** — re-running the ConfRel smart constructors
   (:mod:`repro.logic.simplify`).
2. **Template filtering** — performed by the caller (the algorithm keeps its
   relation indexed by template guard, so only same-guard premises are handed
   to :func:`compile_entailment`).
3. **FOL compilation** — translating pure ConfRel formulas into FOL(Conf),
   where header and buffer references become finite-map lookups.
4. **Store elimination** — replacing the finite-map lookups by plain
   bitvector variables, yielding FOL(BV).

The end-to-end :func:`compile_entailment` builds the negated validity query
``premises ∧ ¬goal`` whose unsatisfiability establishes the entailment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from . import confrel, folbv, folconf
from .confrel import (
    BVExpr,
    CBuf,
    CConcat,
    CHdr,
    CLit,
    CSlice,
    CVar,
    FAnd,
    FEq,
    FFalse,
    FImpl,
    FNot,
    FOr,
    FTrue,
    Formula,
)
from .simplify import simplify_formula


class CompileError(Exception):
    """Raised when a formula cannot be lowered."""


def variable_name(name: str) -> str:
    """FOL(BV) name of a symbolic ConfRel variable."""
    return f"var_{name}"


# ---------------------------------------------------------------------------
# ConfRel → FOL(Conf)
# ---------------------------------------------------------------------------


def expr_to_folconf(expr: BVExpr) -> folbv.Term:
    """Lower a ConfRel bitvector expression into a FOL(Conf) term."""
    if isinstance(expr, CLit):
        return folbv.BVConst(expr.value)
    if isinstance(expr, CBuf):
        return folconf.BufferSel(expr.side, expr.buf_width)
    if isinstance(expr, CHdr):
        return folconf.StoreSelect(expr.side, expr.name, expr.hdr_width)
    if isinstance(expr, CVar):
        return folbv.BVVar(variable_name(expr.name), expr.var_width)
    if isinstance(expr, CSlice):
        return folbv.BVExtract(expr_to_folconf(expr.expr), expr.lo, expr.hi)
    if isinstance(expr, CConcat):
        return folbv.BVConcatT(expr_to_folconf(expr.left), expr_to_folconf(expr.right))
    raise CompileError(f"unknown ConfRel expression {expr!r}")


def formula_to_folconf(formula: Formula) -> folbv.BFormula:
    """Lower a pure ConfRel formula into FOL(Conf)."""
    if isinstance(formula, FTrue):
        return folbv.B_TRUE
    if isinstance(formula, FFalse):
        return folbv.B_FALSE
    if isinstance(formula, FEq):
        left = expr_to_folconf(formula.left)
        right = expr_to_folconf(formula.right)
        if left.width == 0:
            return folbv.B_TRUE
        return folbv.BEq(left, right)
    if isinstance(formula, FNot):
        return folbv.b_not(formula_to_folconf(formula.operand))
    if isinstance(formula, FAnd):
        return folbv.b_and([formula_to_folconf(op) for op in formula.operands])
    if isinstance(formula, FOr):
        return folbv.b_or([formula_to_folconf(op) for op in formula.operands])
    if isinstance(formula, FImpl):
        return folbv.b_implies(
            formula_to_folconf(formula.premise), formula_to_folconf(formula.conclusion)
        )
    raise CompileError(f"unknown ConfRel formula {formula!r}")


# ---------------------------------------------------------------------------
# Full lowering
# ---------------------------------------------------------------------------


def lower_formula(formula: Formula, simplify: bool = True) -> folbv.BFormula:
    """ConfRel → FOL(BV): simplify, compile to FOL(Conf), eliminate stores."""
    if simplify:
        formula = simplify_formula(formula)
    folconf_formula = formula_to_folconf(formula)
    lowered = folconf.eliminate_stores(folconf_formula)
    if folconf.contains_store_terms(lowered):
        raise CompileError("store elimination left finite-map terms behind")
    return lowered


@dataclass
class EntailmentQuery:
    """A compiled entailment check.

    ``formula`` is the FOL(BV) formula ``premises ∧ ¬goal``; the entailment
    holds exactly when this formula is unsatisfiable.  ``variables`` lists the
    free variables and their widths (headers, buffers and symbolic variables
    of both sides).
    """

    premises: Tuple[folbv.BFormula, ...]
    goal: folbv.BFormula
    formula: folbv.BFormula
    variables: Dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """A rough size measure (number of terms) used for statistics."""
        return sum(1 for _ in folbv.iter_terms(self.formula))


def compile_entailment(
    premises: Sequence[Formula], goal: Formula, simplify: bool = True
) -> EntailmentQuery:
    """Compile ``⋀ premises ⊨ goal`` into a FOL(BV) satisfiability query.

    The caller has already performed template filtering, so all formulas refer
    to the same pair of templates and hence agree on buffer widths.
    """
    lowered_premises = tuple(lower_formula(premise, simplify) for premise in premises)
    lowered_goal = lower_formula(goal, simplify)
    query = folbv.b_and(list(lowered_premises) + [folbv.b_not(lowered_goal)])
    variables = folbv.free_variables(query)
    return EntailmentQuery(lowered_premises, lowered_goal, query, variables)


def compile_validity(goal: Formula, simplify: bool = True) -> EntailmentQuery:
    """Compile a validity check of ``goal`` (an entailment with no premises)."""
    return compile_entailment([], goal, simplify)
