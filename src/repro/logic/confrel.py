"""The configuration-relation logic ConfRel (Figure 3 of the paper).

Formulas in this logic describe relations on pairs of configurations drawn
from two P4 automata (the "left" and "right" side, written ``<`` and ``>`` in
the paper).  Bitvector expressions can mention the buffers and header values
of either side as well as symbolic variables (used by the weakest-precondition
operator to stand for packet bits that have not been read yet).

Every expression carries a static width, which is possible because the
algorithm only ever builds formulas under a *template guard* that fixes the
buffer length of each side (Definition 4.7).

The module also provides the denotational semantics ``eval_formula`` of
Definition 4.3, used by tests and by the certificate re-checker to validate
formulas against concrete configuration pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..p4a.bitvec import Bits
from ..p4a.semantics import Configuration

# Side tags.
LEFT = "<"
RIGHT = ">"
SIDES = (LEFT, RIGHT)


class ConfRelError(Exception):
    """Raised on ill-formed ConfRel expressions or formulas."""


# ---------------------------------------------------------------------------
# Bitvector expressions over configuration pairs
# ---------------------------------------------------------------------------


class BVExpr:
    """Base class of symbolic bitvector expressions (``be`` in Figure 3)."""

    __slots__ = ()

    @property
    def width(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class CLit(BVExpr):
    """A bitvector literal."""

    value: Bits

    @property
    def width(self) -> int:
        return self.value.width

    def __str__(self) -> str:
        return f"0b{self.value.to_bitstring()}" if self.value.width else "ε"


@dataclass(frozen=True)
class CBuf(BVExpr):
    """The buffer of one side (``buf<`` / ``buf>``).

    The width is the buffer length fixed by the enclosing template guard.
    """

    side: str
    buf_width: int

    @property
    def width(self) -> int:
        return self.buf_width

    def __str__(self) -> str:
        return f"buf{self.side}"


@dataclass(frozen=True)
class CHdr(BVExpr):
    """A header of one side (``h<`` / ``h>``)."""

    side: str
    name: str
    hdr_width: int

    @property
    def width(self) -> int:
        return self.hdr_width

    def __str__(self) -> str:
        return f"{self.name}{self.side}"


@dataclass(frozen=True)
class CVar(BVExpr):
    """A symbolic variable (``x`` in Figure 3), e.g. bits still to be read."""

    name: str
    var_width: int

    @property
    def width(self) -> int:
        return self.var_width

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CSlice(BVExpr):
    """The inclusive slice ``be[lo:hi]``; bounds must be in range."""

    expr: BVExpr
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo <= self.hi < self.expr.width):
            raise ConfRelError(
                f"slice [{self.lo}:{self.hi}] out of range for width {self.expr.width}"
            )

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def __str__(self) -> str:
        return f"{self.expr}[{self.lo}:{self.hi}]"


@dataclass(frozen=True)
class CConcat(BVExpr):
    """Concatenation ``be1 ++ be2``."""

    left: BVExpr
    right: BVExpr

    @property
    def width(self) -> int:
        return self.left.width + self.right.width

    def __str__(self) -> str:
        return f"({self.left} ++ {self.right})"


# ---------------------------------------------------------------------------
# Pure formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of pure ConfRel formulas (no state or buffer-length atoms;
    those are carried by the enclosing template guard)."""

    __slots__ = ()


@dataclass(frozen=True)
class FTrue(Formula):
    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class FFalse(Formula):
    def __str__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class FEq(Formula):
    """Bitvector equality ``be1 = be2``."""

    left: BVExpr
    right: BVExpr

    def __post_init__(self) -> None:
        if self.left.width != self.right.width:
            raise ConfRelError(
                f"equality between widths {self.left.width} and {self.right.width}: "
                f"{self.left} = {self.right}"
            )

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class FNot(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class FAnd(Formula):
    operands: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class FOr(Formula):
    operands: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class FImpl(Formula):
    premise: Formula
    conclusion: Formula

    def __str__(self) -> str:
        return f"({self.premise} ⟹ {self.conclusion})"


TRUE = FTrue()
FALSE = FFalse()


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def iter_subexprs(expr: BVExpr) -> Iterator[BVExpr]:
    yield expr
    if isinstance(expr, CSlice):
        yield from iter_subexprs(expr.expr)
    elif isinstance(expr, CConcat):
        yield from iter_subexprs(expr.left)
        yield from iter_subexprs(expr.right)


def iter_atoms(formula: Formula) -> Iterator[BVExpr]:
    """Yield every leaf expression (CBuf/CHdr/CVar/CLit) in ``formula``."""
    for expr in iter_exprs(formula):
        for sub in iter_subexprs(expr):
            if isinstance(sub, (CBuf, CHdr, CVar, CLit)):
                yield sub


def iter_exprs(formula: Formula) -> Iterator[BVExpr]:
    if isinstance(formula, FEq):
        yield formula.left
        yield formula.right
    elif isinstance(formula, FNot):
        yield from iter_exprs(formula.operand)
    elif isinstance(formula, (FAnd, FOr)):
        for operand in formula.operands:
            yield from iter_exprs(operand)
    elif isinstance(formula, FImpl):
        yield from iter_exprs(formula.premise)
        yield from iter_exprs(formula.conclusion)
    elif isinstance(formula, (FTrue, FFalse)):
        return
    else:
        raise ConfRelError(f"unknown formula {formula!r}")


def formula_variables(formula: Formula) -> Dict[str, int]:
    """Free symbolic variables of a formula, mapped to their widths."""
    variables: Dict[str, int] = {}
    for atom in iter_atoms(formula):
        if isinstance(atom, CVar):
            existing = variables.get(atom.name)
            if existing is not None and existing != atom.var_width:
                raise ConfRelError(
                    f"variable {atom.name!r} used at widths {existing} and {atom.var_width}"
                )
            variables[atom.name] = atom.var_width
    return variables


def rename_variables(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename symbolic variables according to ``mapping`` (identity if absent)."""

    def rename_expr(expr: BVExpr) -> BVExpr:
        if isinstance(expr, CVar):
            return CVar(mapping.get(expr.name, expr.name), expr.var_width)
        if isinstance(expr, CSlice):
            return CSlice(rename_expr(expr.expr), expr.lo, expr.hi)
        if isinstance(expr, CConcat):
            return CConcat(rename_expr(expr.left), rename_expr(expr.right))
        return expr

    return map_formula_exprs(formula, rename_expr)


def map_formula_exprs(formula: Formula, fn) -> Formula:
    """Rebuild ``formula`` applying ``fn`` to every top-level expression."""
    if isinstance(formula, FEq):
        return FEq(fn(formula.left), fn(formula.right))
    if isinstance(formula, FNot):
        return FNot(map_formula_exprs(formula.operand, fn))
    if isinstance(formula, FAnd):
        return FAnd(tuple(map_formula_exprs(op, fn) for op in formula.operands))
    if isinstance(formula, FOr):
        return FOr(tuple(map_formula_exprs(op, fn) for op in formula.operands))
    if isinstance(formula, FImpl):
        return FImpl(
            map_formula_exprs(formula.premise, fn), map_formula_exprs(formula.conclusion, fn)
        )
    if isinstance(formula, (FTrue, FFalse)):
        return formula
    raise ConfRelError(f"unknown formula {formula!r}")


def canonicalize_variables(formula: Formula, prefix: str = "v") -> Formula:
    """Rename variables to canonical, width-indexed names.

    Variables are renamed to ``{prefix}{width}_{i}`` where ``i`` counts the
    variables of that width in order of first occurrence.  Canonical names make
    alpha-equivalent formulas structurally equal and align the variables of
    different formulas that talk about the same future packet bits (variables
    of different widths are never conflated, so the renaming stays well-typed).
    """
    order: Dict[str, str] = {}
    per_width: Dict[int, int] = {}
    for atom in iter_atoms(formula):
        if isinstance(atom, CVar) and atom.name not in order:
            index = per_width.get(atom.var_width, 0)
            per_width[atom.var_width] = index + 1
            order[atom.name] = f"{prefix}{atom.var_width}_{index}"
    return rename_variables(formula, order)


# ---------------------------------------------------------------------------
# Denotational semantics (Definition 4.3)
# ---------------------------------------------------------------------------


def eval_expr(
    expr: BVExpr,
    left: Configuration,
    right: Configuration,
    valuation: Optional[Mapping[str, Bits]] = None,
) -> Bits:
    """⟦be⟧B over a pair of concrete configurations and a valuation."""
    valuation = valuation or {}
    if isinstance(expr, CLit):
        return expr.value
    if isinstance(expr, CBuf):
        config = left if expr.side == LEFT else right
        value = config.buffer
    elif isinstance(expr, CHdr):
        config = left if expr.side == LEFT else right
        value = config.store_dict().get(expr.name)
        if value is None:
            raise ConfRelError(f"header {expr.name!r} missing from the {expr.side} store")
    elif isinstance(expr, CVar):
        if expr.name not in valuation:
            raise ConfRelError(f"valuation does not bind variable {expr.name!r}")
        value = valuation[expr.name]
    elif isinstance(expr, CSlice):
        return eval_expr(expr.expr, left, right, valuation).slice(expr.lo, expr.hi)
    elif isinstance(expr, CConcat):
        return eval_expr(expr.left, left, right, valuation).concat(
            eval_expr(expr.right, left, right, valuation)
        )
    else:
        raise ConfRelError(f"unknown expression {expr!r}")
    if value.width != expr.width:
        raise ConfRelError(
            f"expression {expr} has declared width {expr.width} but value width {value.width}"
        )
    return value


def eval_formula(
    formula: Formula,
    left: Configuration,
    right: Configuration,
    valuation: Optional[Mapping[str, Bits]] = None,
) -> bool:
    """⟦φ⟧ at a configuration pair under one valuation."""
    if isinstance(formula, FTrue):
        return True
    if isinstance(formula, FFalse):
        return False
    if isinstance(formula, FEq):
        return eval_expr(formula.left, left, right, valuation) == eval_expr(
            formula.right, left, right, valuation
        )
    if isinstance(formula, FNot):
        return not eval_formula(formula.operand, left, right, valuation)
    if isinstance(formula, FAnd):
        return all(eval_formula(op, left, right, valuation) for op in formula.operands)
    if isinstance(formula, FOr):
        return any(eval_formula(op, left, right, valuation) for op in formula.operands)
    if isinstance(formula, FImpl):
        return (not eval_formula(formula.premise, left, right, valuation)) or eval_formula(
            formula.conclusion, left, right, valuation
        )
    raise ConfRelError(f"unknown formula {formula!r}")


def holds_for_all_valuations(
    formula: Formula, left: Configuration, right: Configuration
) -> bool:
    """⟦φ⟧L: the formula holds at the pair under *every* valuation.

    Exponential in the number of variable bits; only usable in tests and the
    certificate re-checker on small instances.
    """
    from itertools import product

    variables = formula_variables(formula)
    names = list(variables)
    widths = [variables[name] for name in names]
    total_bits = sum(widths)
    if total_bits > 20:
        raise ConfRelError(
            f"refusing to enumerate {total_bits} variable bits; use the SMT backend instead"
        )
    for assignment in product("01", repeat=total_bits):
        valuation: Dict[str, Bits] = {}
        position = 0
        for name, width in zip(names, widths):
            valuation[name] = Bits("".join(assignment[position : position + width]))
            position += width
        if not eval_formula(formula, left, right, valuation):
            return False
    return True
