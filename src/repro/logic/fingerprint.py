"""Structural fingerprints and hash-consing for logic objects.

The entailment queries issued by the pre-bisimulation inner loop are highly
repetitive: the same goal is re-checked as the relation grows, the done step
re-proves conjuncts already discharged during the search, and different case
studies share sub-parsers and therefore whole sub-queries.  Recognising a
repeated query syntactically is enough to skip the bit-blasting and SAT work
entirely, because the lowering pipeline is deterministic and the entailment
checker canonicalizes variable names before compiling.

Two facilities are provided:

* **Fingerprints** — a stable, collision-resistant digest of the structure of
  a FOL(BV) formula/term or a pure ConfRel formula/expression.  Fingerprints
  are plain hex strings, safe to use as dictionary keys, file names or sqlite
  primary keys, and stable across processes and Python versions (unlike
  ``hash()``, which is salted per process for strings).
* **Hash-consing** — an intern table mapping structurally equal terms and
  formulas to one canonical object, so that repeated subterms share storage;
  an opt-in utility for formula builders, deliberately kept off the query
  cache's hot path (see :data:`GLOBAL_INTERN`).

Shared subterms are visited once per fingerprint computation: the serializer
memoizes on object identity within a call, which makes fingerprinting of
hash-consed (DAG-shaped) formulas linear in the number of distinct nodes.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Dict, Union

from . import confrel, folbv

#: Bumped whenever the serialization format changes, so persistent caches
#: keyed by old fingerprints are invalidated rather than misread.
FINGERPRINT_VERSION = "1"

FingerprintableBV = Union[folbv.BFormula, folbv.Term]
FingerprintableConfRel = Union[confrel.Formula, confrel.BVExpr]


class FingerprintError(Exception):
    """Raised when an object cannot be serialized for fingerprinting."""


# ---------------------------------------------------------------------------
# Canonical serialization
# ---------------------------------------------------------------------------


def _folbv_key(obj: FingerprintableBV, memo: Dict[int, str]) -> str:
    cached = memo.get(id(obj))
    if cached is not None:
        return cached
    if isinstance(obj, folbv.BVVar):
        key = f"(v {obj.name} {obj.var_width})"
    elif isinstance(obj, folbv.BVConst):
        key = f"(c {obj.value.to_bitstring()})"
    elif isinstance(obj, folbv.BVExtract):
        key = f"(x {_folbv_key(obj.term, memo)} {obj.lo} {obj.hi})"
    elif isinstance(obj, folbv.BVConcatT):
        key = f"(++ {_folbv_key(obj.left, memo)} {_folbv_key(obj.right, memo)})"
    elif isinstance(obj, folbv.BTrue):
        key = "t"
    elif isinstance(obj, folbv.BFalse):
        key = "f"
    elif isinstance(obj, folbv.BEq):
        key = f"(= {_folbv_key(obj.left, memo)} {_folbv_key(obj.right, memo)})"
    elif isinstance(obj, folbv.BNot):
        key = f"(! {_folbv_key(obj.operand, memo)})"
    elif isinstance(obj, folbv.BAnd):
        key = "(& " + " ".join(_folbv_key(op, memo) for op in obj.operands) + ")"
    elif isinstance(obj, folbv.BOr):
        key = "(| " + " ".join(_folbv_key(op, memo) for op in obj.operands) + ")"
    elif isinstance(obj, folbv.BImplies):
        key = f"(> {_folbv_key(obj.premise, memo)} {_folbv_key(obj.conclusion, memo)})"
    else:
        raise FingerprintError(f"cannot fingerprint FOL(BV) object {obj!r}")
    memo[id(obj)] = key
    return key


def _confrel_key(obj: FingerprintableConfRel, memo: Dict[int, str]) -> str:
    cached = memo.get(id(obj))
    if cached is not None:
        return cached
    if isinstance(obj, confrel.CLit):
        key = f"(c {obj.value.to_bitstring()})"
    elif isinstance(obj, confrel.CBuf):
        key = f"(b {obj.side} {obj.buf_width})"
    elif isinstance(obj, confrel.CHdr):
        key = f"(h {obj.side} {obj.name} {obj.hdr_width})"
    elif isinstance(obj, confrel.CVar):
        key = f"(v {obj.name} {obj.var_width})"
    elif isinstance(obj, confrel.CSlice):
        key = f"(x {_confrel_key(obj.expr, memo)} {obj.lo} {obj.hi})"
    elif isinstance(obj, confrel.CConcat):
        key = f"(++ {_confrel_key(obj.left, memo)} {_confrel_key(obj.right, memo)})"
    elif isinstance(obj, confrel.FTrue):
        key = "t"
    elif isinstance(obj, confrel.FFalse):
        key = "f"
    elif isinstance(obj, confrel.FEq):
        key = f"(= {_confrel_key(obj.left, memo)} {_confrel_key(obj.right, memo)})"
    elif isinstance(obj, confrel.FNot):
        key = f"(! {_confrel_key(obj.operand, memo)})"
    elif isinstance(obj, confrel.FAnd):
        key = "(& " + " ".join(_confrel_key(op, memo) for op in obj.operands) + ")"
    elif isinstance(obj, confrel.FOr):
        key = "(| " + " ".join(_confrel_key(op, memo) for op in obj.operands) + ")"
    elif isinstance(obj, confrel.FImpl):
        key = f"(> {_confrel_key(obj.premise, memo)} {_confrel_key(obj.conclusion, memo)})"
    else:
        raise FingerprintError(f"cannot fingerprint ConfRel object {obj!r}")
    memo[id(obj)] = key
    return key


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

class _IdentityMemo:
    """An ``id()``-keyed digest memo with weakref-based self-cleaning.

    Keying by identity keeps lookups O(1): a dictionary keyed by the objects
    themselves would re-hash the whole tree on every access (frozen-dataclass
    hashing is recursive).  Each entry holds a weak reference whose callback
    evicts the entry when the object dies, so a recycled ``id()`` can never
    alias a stale digest.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, tuple] = {}

    def get(self, obj: object) -> Union[str, None]:
        entry = self._entries.get(id(obj))
        if entry is None:
            return None
        ref, digest = entry
        return digest if ref() is obj else None

    def set(self, obj: object, digest: str) -> None:
        key = id(obj)

        def _evict(_ref, key=key, entries=self._entries):
            entries.pop(key, None)

        try:
            ref = weakref.ref(obj, _evict)
        except TypeError:  # non-weakrefable object: skip memoization
            return
        self._entries[key] = (ref, digest)


_FOLBV_DIGESTS = _IdentityMemo()
_CONFREL_DIGESTS = _IdentityMemo()


def _digest(kind: str, key: str) -> str:
    payload = f"{kind}{FINGERPRINT_VERSION}:{key}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def folbv_fingerprint(obj: FingerprintableBV) -> str:
    """Stable structural digest of a FOL(BV) formula or term."""
    cached = _FOLBV_DIGESTS.get(obj)
    if cached is not None:
        return cached
    digest = _digest("bv", _folbv_key(obj, {}))
    _FOLBV_DIGESTS.set(obj, digest)
    return digest


def confrel_fingerprint(obj: FingerprintableConfRel) -> str:
    """Stable structural digest of a pure ConfRel formula or expression."""
    cached = _CONFREL_DIGESTS.get(obj)
    if cached is not None:
        return cached
    digest = _digest("cr", _confrel_key(obj, {}))
    _CONFREL_DIGESTS.set(obj, digest)
    return digest


def fingerprint(obj: Union[FingerprintableBV, FingerprintableConfRel]) -> str:
    """Fingerprint any supported logic object (dispatching on its layer)."""
    if isinstance(obj, (folbv.BFormula, folbv.Term)):
        return folbv_fingerprint(obj)
    if isinstance(obj, (confrel.Formula, confrel.BVExpr)):
        return confrel_fingerprint(obj)
    raise FingerprintError(f"cannot fingerprint {obj!r}")


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------


class InternTable:
    """An intern table mapping structural keys to canonical objects.

    Interning rebuilds a formula bottom-up, replacing every node whose
    structure has been seen before by the first object that exhibited it.
    Interned formulas share subterm storage (a DAG instead of a tree), which
    both reduces memory and speeds up later fingerprint computations via the
    identity memo in the serializers.
    """

    def __init__(self) -> None:
        self._table: "weakref.WeakValueDictionary[str, object]" = weakref.WeakValueDictionary()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def _canon(self, key: str, obj: object) -> object:
        existing = self._table.get(key)
        if existing is not None:
            self.hits += 1
            return existing
        self.misses += 1
        self._table[key] = obj
        return obj

    def intern_term(self, term: folbv.Term) -> folbv.Term:
        if isinstance(term, folbv.BVExtract):
            inner = self.intern_term(term.term)
            if inner is not term.term:
                term = folbv.BVExtract(inner, term.lo, term.hi)
        elif isinstance(term, folbv.BVConcatT):
            left, right = self.intern_term(term.left), self.intern_term(term.right)
            if left is not term.left or right is not term.right:
                term = folbv.BVConcatT(left, right)
        return self._canon(_folbv_key(term, {}), term)  # type: ignore[return-value]

    def intern_formula(self, formula: folbv.BFormula) -> folbv.BFormula:
        if isinstance(formula, folbv.BEq):
            formula = folbv.BEq(self.intern_term(formula.left), self.intern_term(formula.right))
        elif isinstance(formula, folbv.BNot):
            formula = folbv.BNot(self.intern_formula(formula.operand))
        elif isinstance(formula, folbv.BAnd):
            formula = folbv.BAnd(tuple(self.intern_formula(op) for op in formula.operands))
        elif isinstance(formula, folbv.BOr):
            formula = folbv.BOr(tuple(self.intern_formula(op) for op in formula.operands))
        elif isinstance(formula, folbv.BImplies):
            formula = folbv.BImplies(
                self.intern_formula(formula.premise), self.intern_formula(formula.conclusion)
            )
        return self._canon(_folbv_key(formula, {}), formula)  # type: ignore[return-value]


#: Process-wide intern table for callers that build formulas incrementally
#: and want subterm sharing.  The query cache does NOT intern: its per-query
#: fingerprint walk is linear, whereas per-node canonicalization is quadratic
#: in formula depth, so interning on the hot path would cost more than the
#: lookup it feeds.
GLOBAL_INTERN = InternTable()


def intern_formula(formula: folbv.BFormula) -> folbv.BFormula:
    """Hash-cons a FOL(BV) formula through the process-wide table."""
    return GLOBAL_INTERN.intern_formula(formula)


def intern_term(term: folbv.Term) -> folbv.Term:
    """Hash-cons a FOL(BV) term through the process-wide table."""
    return GLOBAL_INTERN.intern_term(term)
