"""FOL(BV): the low-level first-order logic of bitvectors.

This is the last stage of the paper's compilation chain (Figure 6): a pure
bitvector logic with variables, constants, extraction, concatenation and
equality under boolean structure.  It is what gets bit-blasted by the internal
solver or pretty-printed to SMT-LIB for an external solver.

Bit index 0 is the first (most significant) bit, consistent with the rest of
the code base; the SMT-LIB printer performs the index flip required by the
SMT-LIB convention (bit 0 = least significant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

from ..p4a.bitvec import Bits


class FolBVError(Exception):
    """Raised on ill-formed FOL(BV) terms or formulas."""


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    __slots__ = ()

    @property
    def width(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class BVVar(Term):
    name: str
    var_width: int

    @property
    def width(self) -> int:
        return self.var_width

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BVConst(Term):
    value: Bits

    @property
    def width(self) -> int:
        return self.value.width

    def __str__(self) -> str:
        return f"#b{self.value.to_bitstring()}"


@dataclass(frozen=True)
class BVExtract(Term):
    """The inclusive slice ``term[lo:hi]`` (paper indexing, bit 0 first)."""

    term: Term
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo <= self.hi < self.term.width):
            raise FolBVError(
                f"extract [{self.lo}:{self.hi}] out of range for width {self.term.width}"
            )

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def __str__(self) -> str:
        return f"{self.term}[{self.lo}:{self.hi}]"


@dataclass(frozen=True)
class BVConcatT(Term):
    left: Term
    right: Term

    @property
    def width(self) -> int:
        return self.left.width + self.right.width

    def __str__(self) -> str:
        return f"({self.left} ++ {self.right})"


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class BFormula:
    __slots__ = ()


@dataclass(frozen=True)
class BTrue(BFormula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class BFalse(BFormula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class BEq(BFormula):
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.left.width != self.right.width:
            raise FolBVError(
                f"equality between widths {self.left.width} and {self.right.width}"
            )

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@dataclass(frozen=True)
class BNot(BFormula):
    operand: BFormula

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class BAnd(BFormula):
    operands: Tuple[BFormula, ...]

    def __str__(self) -> str:
        return "(and " + " ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class BOr(BFormula):
    operands: Tuple[BFormula, ...]

    def __str__(self) -> str:
        return "(or " + " ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class BImplies(BFormula):
    premise: BFormula
    conclusion: BFormula

    def __str__(self) -> str:
        return f"(=> {self.premise} {self.conclusion})"


B_TRUE = BTrue()
B_FALSE = BFalse()


def b_and(operands) -> BFormula:
    ops = [op for op in operands if not isinstance(op, BTrue)]
    if any(isinstance(op, BFalse) for op in ops):
        return B_FALSE
    if not ops:
        return B_TRUE
    if len(ops) == 1:
        return ops[0]
    return BAnd(tuple(ops))


def b_or(operands) -> BFormula:
    ops = [op for op in operands if not isinstance(op, BFalse)]
    if any(isinstance(op, BTrue) for op in ops):
        return B_TRUE
    if not ops:
        return B_FALSE
    if len(ops) == 1:
        return ops[0]
    return BOr(tuple(ops))


def b_not(operand: BFormula) -> BFormula:
    if isinstance(operand, BTrue):
        return B_FALSE
    if isinstance(operand, BFalse):
        return B_TRUE
    if isinstance(operand, BNot):
        return operand.operand
    return BNot(operand)


def b_implies(premise: BFormula, conclusion: BFormula) -> BFormula:
    if isinstance(premise, BFalse) or isinstance(conclusion, BTrue):
        return B_TRUE
    if isinstance(premise, BTrue):
        return conclusion
    if isinstance(conclusion, BFalse):
        return b_not(premise)
    return BImplies(premise, conclusion)


# ---------------------------------------------------------------------------
# Traversals and evaluation
# ---------------------------------------------------------------------------


def iter_terms(formula: BFormula) -> Iterator[Term]:
    if isinstance(formula, BEq):
        yield formula.left
        yield formula.right
    elif isinstance(formula, BNot):
        yield from iter_terms(formula.operand)
    elif isinstance(formula, (BAnd, BOr)):
        for operand in formula.operands:
            yield from iter_terms(operand)
    elif isinstance(formula, BImplies):
        yield from iter_terms(formula.premise)
        yield from iter_terms(formula.conclusion)
    elif isinstance(formula, (BTrue, BFalse)):
        return
    else:
        raise FolBVError(f"unknown formula {formula!r}")


def term_variables(term: Term, out: Dict[str, int]) -> None:
    if isinstance(term, BVVar):
        existing = out.get(term.name)
        if existing is not None and existing != term.var_width:
            raise FolBVError(f"variable {term.name!r} used at widths {existing} and {term.var_width}")
        out[term.name] = term.var_width
    elif isinstance(term, BVExtract):
        term_variables(term.term, out)
    elif isinstance(term, BVConcatT):
        term_variables(term.left, out)
        term_variables(term.right, out)
    elif isinstance(term, BVConst):
        return
    else:
        raise FolBVError(f"unknown term {term!r}")


def free_variables(formula: BFormula) -> Dict[str, int]:
    """Free variables of ``formula`` and their widths."""
    out: Dict[str, int] = {}
    for term in iter_terms(formula):
        term_variables(term, out)
    return out


def eval_term(term: Term, assignment: Mapping[str, Bits]) -> Bits:
    if isinstance(term, BVVar):
        value = assignment[term.name]
        if value.width != term.var_width:
            raise FolBVError(
                f"assignment for {term.name!r} has width {value.width}, expected {term.var_width}"
            )
        return value
    if isinstance(term, BVConst):
        return term.value
    if isinstance(term, BVExtract):
        return eval_term(term.term, assignment).slice(term.lo, term.hi)
    if isinstance(term, BVConcatT):
        return eval_term(term.left, assignment).concat(eval_term(term.right, assignment))
    raise FolBVError(f"unknown term {term!r}")


def eval_formula(formula: BFormula, assignment: Mapping[str, Bits]) -> bool:
    """Evaluate a FOL(BV) formula under a total assignment (used by tests and
    to validate models returned by the solvers)."""
    if isinstance(formula, BTrue):
        return True
    if isinstance(formula, BFalse):
        return False
    if isinstance(formula, BEq):
        return eval_term(formula.left, assignment) == eval_term(formula.right, assignment)
    if isinstance(formula, BNot):
        return not eval_formula(formula.operand, assignment)
    if isinstance(formula, BAnd):
        return all(eval_formula(op, assignment) for op in formula.operands)
    if isinstance(formula, BOr):
        return any(eval_formula(op, assignment) for op in formula.operands)
    if isinstance(formula, BImplies):
        return (not eval_formula(formula.premise, assignment)) or eval_formula(
            formula.conclusion, assignment
        )
    raise FolBVError(f"unknown formula {formula!r}")
