"""FOL(Conf): first-order logic over bitvectors and configuration stores.

This is the intermediate logic between ConfRelSimp and FOL(BV) in the paper's
compilation chain (Figure 6).  Terms may still refer to a configuration's
store through ``StoreSelect`` (a finite-map lookup) and to its buffer through
``BufferSel``; the *store elimination* pass replaces those by plain first-order
bitvector variables, producing FOL(BV).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import folbv
from .folbv import BFormula, Term


class FolConfError(Exception):
    """Raised on ill-formed FOL(Conf) terms."""


# ---------------------------------------------------------------------------
# Terms specific to FOL(Conf)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreSelect(Term):
    """``store(side)[header]``: a finite-map lookup into one side's store."""

    side: str
    header: str
    hdr_width: int

    @property
    def width(self) -> int:
        return self.hdr_width

    def __str__(self) -> str:
        return f"store{self.side}[{self.header}]"


@dataclass(frozen=True)
class BufferSel(Term):
    """The unread buffer of one side."""

    side: str
    buf_width: int

    @property
    def width(self) -> int:
        return self.buf_width

    def __str__(self) -> str:
        return f"buffer{self.side}"


# ---------------------------------------------------------------------------
# Store elimination
# ---------------------------------------------------------------------------


def _mangle_side(side: str) -> str:
    return "L" if side == "<" else "R"


def store_variable_name(side: str, header: str) -> str:
    """The FOL(BV) variable standing for header ``header`` of ``side``."""
    return f"hdr_{_mangle_side(side)}_{header}"


def buffer_variable_name(side: str) -> str:
    """The FOL(BV) variable standing for the buffer of ``side``."""
    return f"buf_{_mangle_side(side)}"


def eliminate_stores_term(term: Term) -> Term:
    """Replace store and buffer lookups in a term by plain variables."""
    if isinstance(term, StoreSelect):
        return folbv.BVVar(store_variable_name(term.side, term.header), term.hdr_width)
    if isinstance(term, BufferSel):
        return folbv.BVVar(buffer_variable_name(term.side), term.buf_width)
    if isinstance(term, folbv.BVExtract):
        return folbv.BVExtract(eliminate_stores_term(term.term), term.lo, term.hi)
    if isinstance(term, folbv.BVConcatT):
        return folbv.BVConcatT(
            eliminate_stores_term(term.left), eliminate_stores_term(term.right)
        )
    if isinstance(term, (folbv.BVVar, folbv.BVConst)):
        return term
    raise FolConfError(f"unknown term {term!r}")


def eliminate_stores(formula: BFormula) -> BFormula:
    """The store-elimination pass: FOL(Conf) → FOL(BV).

    After this pass the formula contains only ``BVVar``, ``BVConst``,
    ``BVExtract`` and ``BVConcatT`` terms and can be handed to the bitvector
    decision procedure or printed as SMT-LIB.
    """
    if isinstance(formula, folbv.BEq):
        return folbv.BEq(
            eliminate_stores_term(formula.left), eliminate_stores_term(formula.right)
        )
    if isinstance(formula, folbv.BNot):
        return folbv.b_not(eliminate_stores(formula.operand))
    if isinstance(formula, folbv.BAnd):
        return folbv.b_and([eliminate_stores(op) for op in formula.operands])
    if isinstance(formula, folbv.BOr):
        return folbv.b_or([eliminate_stores(op) for op in formula.operands])
    if isinstance(formula, folbv.BImplies):
        return folbv.b_implies(
            eliminate_stores(formula.premise), eliminate_stores(formula.conclusion)
        )
    if isinstance(formula, (folbv.BTrue, folbv.BFalse)):
        return formula
    raise FolConfError(f"unknown formula {formula!r}")


def contains_store_terms(formula: BFormula) -> bool:
    """Whether any finite-map (store/buffer) term remains in the formula."""

    def term_has_store(term: Term) -> bool:
        if isinstance(term, (StoreSelect, BufferSel)):
            return True
        if isinstance(term, folbv.BVExtract):
            return term_has_store(term.term)
        if isinstance(term, folbv.BVConcatT):
            return term_has_store(term.left) or term_has_store(term.right)
        return False

    return any(term_has_store(term) for term in folbv.iter_terms(formula))
