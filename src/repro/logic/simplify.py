"""Smart constructors and algebraic simplification for ConfRel.

The paper (Section 6.2, step 1) applies local algebraic rewrites via smart
constructors so that repeated weakest-precondition applications do not blow up
formula size.  The rewrites implemented here are:

* slices of literals are evaluated,
* slices of concatenations are pushed into the operands,
* nested slices are composed,
* full-width slices are dropped,
* concatenations of adjacent literals are fused and zero-width operands are
  dropped,
* equalities between syntactically equal or literal expressions are decided,
* equalities whose sides are concatenations are split component-wise when the
  boundaries line up,
* the boolean connectives constant-fold, flatten and de-duplicate.

All constructors preserve the denotational semantics of
:mod:`repro.logic.confrel`; this is checked by property-based tests.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..p4a.bitvec import Bits
from .confrel import (
    FALSE,
    TRUE,
    BVExpr,
    CConcat,
    CLit,
    CSlice,
    FAnd,
    FEq,
    FFalse,
    FImpl,
    FNot,
    FOr,
    FTrue,
    Formula,
)


# ---------------------------------------------------------------------------
# Expression constructors
# ---------------------------------------------------------------------------


def mk_lit(value: Bits) -> BVExpr:
    return CLit(value)


def mk_slice(expr: BVExpr, lo: int, hi: int) -> BVExpr:
    """Build ``expr[lo:hi]`` (inclusive), simplifying where possible."""
    width = expr.width
    if not (0 <= lo <= hi < width):
        raise ValueError(f"slice [{lo}:{hi}] out of range for width {width}")
    if lo == 0 and hi == width - 1:
        return expr
    if isinstance(expr, CLit):
        return CLit(expr.value.slice(lo, hi))
    if isinstance(expr, CSlice):
        return mk_slice(expr.expr, expr.lo + lo, expr.lo + hi)
    if isinstance(expr, CConcat):
        left_width = expr.left.width
        if hi < left_width:
            return mk_slice(expr.left, lo, hi)
        if lo >= left_width:
            return mk_slice(expr.right, lo - left_width, hi - left_width)
        return mk_concat(
            mk_slice(expr.left, lo, left_width - 1),
            mk_slice(expr.right, 0, hi - left_width),
        )
    return CSlice(expr, lo, hi)


def mk_concat(left: BVExpr, right: BVExpr) -> BVExpr:
    """Build ``left ++ right``, dropping empty operands and fusing literals."""
    if left.width == 0:
        return right
    if right.width == 0:
        return left
    if isinstance(left, CLit) and isinstance(right, CLit):
        return CLit(left.value.concat(right.value))
    # Merge adjacent slices of the same base expression.
    if (
        isinstance(left, CSlice)
        and isinstance(right, CSlice)
        and left.expr == right.expr
        and left.hi + 1 == right.lo
    ):
        return mk_slice(left.expr, left.lo, right.hi)
    # Right-associate so that literal fusion across nesting has a chance.
    if isinstance(left, CConcat):
        return mk_concat(left.left, mk_concat(left.right, right))
    if isinstance(right, CConcat) and isinstance(left, CLit) and isinstance(right.left, CLit):
        return mk_concat(CLit(left.value.concat(right.left.value)), right.right)
    return CConcat(left, right)


def mk_concat_all(exprs: Sequence[BVExpr]) -> BVExpr:
    """Concatenate a sequence of expressions (empty sequence → empty literal)."""
    result: BVExpr = CLit(Bits(""))
    for expr in reversed(exprs):
        result = mk_concat(expr, result)
    return result


def concat_parts(expr: BVExpr) -> List[BVExpr]:
    """Flatten nested concatenations into a list of non-concat parts."""
    if isinstance(expr, CConcat):
        return concat_parts(expr.left) + concat_parts(expr.right)
    if expr.width == 0:
        return []
    return [expr]


# ---------------------------------------------------------------------------
# Formula constructors
# ---------------------------------------------------------------------------


def mk_eq(left: BVExpr, right: BVExpr) -> Formula:
    """Build ``left = right``, splitting aligned concatenations and folding."""
    if left.width != right.width:
        raise ValueError(f"equality between widths {left.width} and {right.width}")
    if left.width == 0:
        return TRUE
    if left == right:
        return TRUE
    if isinstance(left, CLit) and isinstance(right, CLit):
        return TRUE if left.value == right.value else FALSE
    left_parts = concat_parts(left)
    right_parts = concat_parts(right)
    if len(left_parts) > 1 or len(right_parts) > 1:
        split = _split_aligned(left_parts, right_parts)
        if split is not None:
            return mk_and([mk_eq(a, b) for a, b in split])
    return FEq(left, right)


def _split_aligned(
    left_parts: List[BVExpr], right_parts: List[BVExpr]
) -> List[Tuple[BVExpr, BVExpr]]:
    """Split two concatenations into equal-width component pairs.

    The split always succeeds because any part can itself be sliced; the result
    is a list of pairs whose widths match.  Returns ``None`` when there is
    nothing to gain (a single pair covering everything).
    """
    pairs: List[Tuple[BVExpr, BVExpr]] = []
    left_queue = list(left_parts)
    right_queue = list(right_parts)
    while left_queue and right_queue:
        a = left_queue[0]
        b = right_queue[0]
        if a.width == b.width:
            pairs.append((a, b))
            left_queue.pop(0)
            right_queue.pop(0)
        elif a.width < b.width:
            pairs.append((a, mk_slice(b, 0, a.width - 1)))
            left_queue.pop(0)
            right_queue[0] = mk_slice(b, a.width, b.width - 1)
        else:
            pairs.append((mk_slice(a, 0, b.width - 1), b))
            right_queue.pop(0)
            left_queue[0] = mk_slice(a, b.width, a.width - 1)
    if len(pairs) <= 1:
        return None
    return pairs


def mk_not(operand: Formula) -> Formula:
    if isinstance(operand, FTrue):
        return FALSE
    if isinstance(operand, FFalse):
        return TRUE
    if isinstance(operand, FNot):
        return operand.operand
    return FNot(operand)


def mk_and(operands: Iterable[Formula]) -> Formula:
    flat: List[Formula] = []
    for operand in operands:
        if isinstance(operand, FFalse):
            return FALSE
        if isinstance(operand, FTrue):
            continue
        if isinstance(operand, FAnd):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    deduped: List[Formula] = []
    for operand in flat:
        if operand not in deduped:
            deduped.append(operand)
    if not deduped:
        return TRUE
    if len(deduped) == 1:
        return deduped[0]
    return FAnd(tuple(deduped))


def mk_or(operands: Iterable[Formula]) -> Formula:
    flat: List[Formula] = []
    for operand in operands:
        if isinstance(operand, FTrue):
            return TRUE
        if isinstance(operand, FFalse):
            continue
        if isinstance(operand, FOr):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    deduped: List[Formula] = []
    for operand in flat:
        if operand not in deduped:
            deduped.append(operand)
    if not deduped:
        return FALSE
    if len(deduped) == 1:
        return deduped[0]
    return FOr(tuple(deduped))


def mk_impl(premise: Formula, conclusion: Formula) -> Formula:
    if isinstance(premise, FFalse) or isinstance(conclusion, FTrue):
        return TRUE
    if isinstance(premise, FTrue):
        return conclusion
    if isinstance(conclusion, FFalse):
        return mk_not(premise)
    if premise == conclusion:
        return TRUE
    return FImpl(premise, conclusion)


def simplify_formula(formula: Formula) -> Formula:
    """Bottom-up re-application of all smart constructors."""
    if isinstance(formula, FEq):
        return mk_eq(simplify_expr(formula.left), simplify_expr(formula.right))
    if isinstance(formula, FNot):
        return mk_not(simplify_formula(formula.operand))
    if isinstance(formula, FAnd):
        return mk_and([simplify_formula(op) for op in formula.operands])
    if isinstance(formula, FOr):
        return mk_or([simplify_formula(op) for op in formula.operands])
    if isinstance(formula, FImpl):
        return mk_impl(simplify_formula(formula.premise), simplify_formula(formula.conclusion))
    return formula


def simplify_expr(expr: BVExpr) -> BVExpr:
    if isinstance(expr, CSlice):
        return mk_slice(simplify_expr(expr.expr), expr.lo, expr.hi)
    if isinstance(expr, CConcat):
        return mk_concat(simplify_expr(expr.left), simplify_expr(expr.right))
    return expr


def is_trivially_true(formula: Formula) -> bool:
    return isinstance(simplify_formula(formula), FTrue)


def is_trivially_false(formula: Formula) -> bool:
    return isinstance(simplify_formula(formula), FFalse)
