"""SMT-LIB 2 pretty-printing of FOL(BV) formulas.

This plays the role of the paper's trusted Coq plugin: it serialises the final
FOL(BV) verification conditions in the ``QF_BV`` logic so they can be handed to
an off-the-shelf solver (Z3, CVC4, Boolector).  The internal bit-blasting
solver does not go through this printer, but the external backend does, and the
printer is also exercised directly by the test suite.

Index convention: the code base numbers bits from the *first* bit (index 0 is
the first bit read off the wire, i.e. the most significant bit of the integer
interpretation), whereas SMT-LIB's ``extract`` numbers bits from the least
significant end.  The printer performs that flip.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional

from ..p4a.bitvec import Bits
from . import folbv
from .folbv import (
    BAnd,
    BEq,
    BFalse,
    BFormula,
    BImplies,
    BNot,
    BOr,
    BTrue,
    BVConcatT,
    BVConst,
    BVExtract,
    BVVar,
    Term,
)

_SYMBOL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.$]*$")


def sanitize_symbol(name: str) -> str:
    """Make ``name`` a legal SMT-LIB simple symbol."""
    if _SYMBOL_RE.match(name):
        return name
    return "|" + name.replace("|", "_").replace("\\", "_") + "|"


def print_term(term: Term) -> str:
    if isinstance(term, BVVar):
        return sanitize_symbol(term.name)
    if isinstance(term, BVConst):
        if term.width == 0:
            raise ValueError("SMT-LIB has no zero-width bitvectors")
        return f"#b{term.value.to_bitstring()}"
    if isinstance(term, BVExtract):
        width = term.term.width
        # Convert first-bit-is-0 indexing to SMT-LIB's LSB-is-0 indexing.
        high = width - 1 - term.lo
        low = width - 1 - term.hi
        return f"((_ extract {high} {low}) {print_term(term.term)})"
    if isinstance(term, BVConcatT):
        return f"(concat {print_term(term.left)} {print_term(term.right)})"
    raise TypeError(f"cannot print term {term!r}")


def print_formula(formula: BFormula) -> str:
    if isinstance(formula, BTrue):
        return "true"
    if isinstance(formula, BFalse):
        return "false"
    if isinstance(formula, BEq):
        return f"(= {print_term(formula.left)} {print_term(formula.right)})"
    if isinstance(formula, BNot):
        return f"(not {print_formula(formula.operand)})"
    if isinstance(formula, BAnd):
        return "(and " + " ".join(print_formula(op) for op in formula.operands) + ")"
    if isinstance(formula, BOr):
        return "(or " + " ".join(print_formula(op) for op in formula.operands) + ")"
    if isinstance(formula, BImplies):
        return f"(=> {print_formula(formula.premise)} {print_formula(formula.conclusion)})"
    raise TypeError(f"cannot print formula {formula!r}")


def to_smtlib(
    formula: BFormula,
    logic: str = "QF_BV",
    produce_models: bool = True,
    comments: Optional[Iterable[str]] = None,
) -> str:
    """Serialise a satisfiability query for ``formula`` as an SMT-LIB 2 script."""
    lines: List[str] = []
    for comment in comments or []:
        lines.append(f"; {comment}")
    lines.append(f"(set-logic {logic})")
    if produce_models:
        lines.append("(set-option :produce-models true)")
    variables = folbv.free_variables(formula)
    for name in sorted(variables):
        width = variables[name]
        if width == 0:
            continue
        lines.append(f"(declare-const {sanitize_symbol(name)} (_ BitVec {width}))")
    lines.append(f"(assert {print_formula(formula)})")
    lines.append("(check-sat)")
    if produce_models and variables:
        symbols = " ".join(sanitize_symbol(n) for n in sorted(variables) if variables[n] > 0)
        if symbols:
            lines.append(f"(get-value ({symbols}))")
    lines.append("(exit)")
    return "\n".join(lines) + "\n"


def parse_check_sat_result(output: str) -> Optional[bool]:
    """Parse a solver's stdout: returns True for sat, False for unsat, None otherwise."""
    for line in output.splitlines():
        line = line.strip()
        if line == "sat":
            return True
        if line == "unsat":
            return False
    return None


def parse_model_values(output: str, variables: Mapping[str, int]) -> Dict[str, Bits]:
    """Extract bitvector values from a ``(get-value ...)`` response.

    Only the simple forms ``#b...`` and ``#x...`` are recognised, which is what
    Z3, CVC4 and Boolector produce for QF_BV constants.
    """
    model: Dict[str, Bits] = {}
    pattern = re.compile(r"\(\s*([A-Za-z0-9_.$|]+)\s+(#b[01]+|#x[0-9a-fA-F]+)\s*\)")
    for symbol, literal in pattern.findall(output):
        name = symbol.strip("|")
        if name not in variables:
            continue
        if literal.startswith("#b"):
            model[name] = Bits(literal[2:])
        else:
            digits = literal[2:]
            model[name] = Bits.from_int(int(digits, 16), 4 * len(digits))
    return model
