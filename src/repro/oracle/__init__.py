"""Differential concrete-oracle subsystem.

Verification verdicts are only as trustworthy as the pipeline that produces
them: semantics → weakest preconditions → bit-blasting → CDCL.  This package
stress-tests the whole chain against the one component simple enough to trust
by inspection — the concrete interpreter of :mod:`repro.p4a.semantics`:

* :mod:`repro.oracle.sampler` — a seedable, structure-aware random
  packet/store generator (biased toward transition boundaries and
  header-field edge values) that replaces exhaustive ``language_sample``
  enumeration as the way to sample parser behaviours at scale;
* :mod:`repro.oracle.differential` — cross-checks a pair of parsers
  concretely on sampled packets and reports every disagreement;
* :mod:`repro.oracle.minimize` — confirms an extracted counterexample by
  concrete replay and greedily minimizes it (leap drops, bit drops, and
  symbolic re-solves under tightened bounds);
* :mod:`repro.oracle.suite` — the differential fuzz suite over all parser-gen
  scenarios, with divergence telemetry and reproducible JSON reports.
"""

from .differential import (
    Divergence,
    OracleDivergenceError,
    OracleError,
    OracleReport,
    cross_check,
)
from .minimize import MinimizationResult, confirm_counterexample, minimize_counterexample
from .sampler import PacketSampler, sample_store, seeded_language_sample
from .suite import ScenarioOracleRow, render_suite, run_differential_suite, write_reports

__all__ = [
    "Divergence",
    "MinimizationResult",
    "OracleDivergenceError",
    "OracleError",
    "OracleReport",
    "PacketSampler",
    "ScenarioOracleRow",
    "confirm_counterexample",
    "cross_check",
    "minimize_counterexample",
    "render_suite",
    "run_differential_suite",
    "sample_store",
    "seeded_language_sample",
    "write_reports",
]
