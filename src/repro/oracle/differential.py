"""Concrete differential cross-checking of parser pairs.

The oracle runs sampled packets through *both* parsers with the concrete
interpreter and records every acceptance disagreement.  On a pair the checker
proved ``equivalent`` a single divergence is a soundness bug somewhere in the
symbolic pipeline — the caller is expected to fail loudly
(:class:`OracleDivergenceError` carries a full reproduction: seed, packet and
both initial stores).  On an ``unknown`` verdict a divergence is a concrete
counterexample the symbolic search missed and can be promoted to a refutation.

Packets are drawn alternately from the structure of each side (plus uniform
noise), so a branch present in only one parser still gets sampled; the two
initial stores are drawn independently, matching the quantification of
language equivalence over all stores of both sides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..p4a.bitvec import Bits
from ..p4a.semantics import Store, accepts
from ..p4a.syntax import P4Automaton
from .sampler import PacketSampler, _random_bits


class OracleError(Exception):
    """Raised when the oracle cannot run (bad configuration)."""


@dataclass
class Divergence:
    """One concrete disagreement between the two parsers."""

    packet: Bits
    left_store: Store
    right_store: Store
    left_accepts: bool
    right_accepts: bool
    origin: str = "sampled"  # which sampling mode produced the packet

    def as_dict(self) -> Dict[str, object]:
        return {
            "packet": self.packet.to_bitstring(),
            "packet_bits": self.packet.width,
            "left_store": {name: bits.to_bitstring() for name, bits in self.left_store.items()},
            "right_store": {name: bits.to_bitstring() for name, bits in self.right_store.items()},
            "left_accepts": self.left_accepts,
            "right_accepts": self.right_accepts,
            "origin": self.origin,
        }

    def __str__(self) -> str:
        return (
            f"packet {self.packet} "
            f"(left {'accepts' if self.left_accepts else 'rejects'}, "
            f"right {'accepts' if self.right_accepts else 'rejects'})"
        )


@dataclass
class OracleReport:
    """Outcome of one cross-check run."""

    left_name: str
    right_name: str
    packets: int
    seed: Optional[int] = None
    divergences: List[Divergence] = field(default_factory=list)
    #: Total disagreements seen; ``divergences`` keeps at most ``max_recorded``.
    total_divergences: int = 0
    accepted_left: int = 0
    accepted_right: int = 0

    @property
    def ok(self) -> bool:
        return self.total_divergences == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "left": self.left_name,
            "right": self.right_name,
            "packets": self.packets,
            "seed": self.seed,
            "accepted_left": self.accepted_left,
            "accepted_right": self.accepted_right,
            "total_divergences": self.total_divergences,
            "divergences": [divergence.as_dict() for divergence in self.divergences],
        }

    def summary(self) -> Dict[str, int]:
        """The telemetry counters attached to ``CheckerStatistics.oracle``."""
        return {
            "packets": self.packets,
            "divergences": self.total_divergences,
            "accepted_left": self.accepted_left,
            "accepted_right": self.accepted_right,
        }


class OracleDivergenceError(OracleError):
    """A verdict the concrete oracle contradicts — a pipeline soundness bug."""

    def __init__(self, report: OracleReport, context: str) -> None:
        first = report.divergences[0]
        super().__init__(
            f"concrete oracle contradicts {context}: {report.total_divergences} of "
            f"{report.packets} packets disagree (seed {report.seed}); first: {first}; "
            f"left store {first.left_store}; right store {first.right_store}"
        )
        self.report = report


def cross_check(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    packets: int = 64,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    max_recorded: int = 16,
    max_uniform_bits: int = 512,
) -> OracleReport:
    """Run ``packets`` sampled packets through both parsers concretely.

    Every third packet is uniform noise of random length; the rest alternate
    between walks of the left and the right parser's structure.  At most
    ``max_recorded`` divergences are materialized (all are counted).
    """
    if packets < 0:
        raise OracleError(f"packet count must be >= 0, got {packets}")
    rng = rng if rng is not None else random.Random(seed)
    left_sampler = PacketSampler(left_aut, left_start, rng=rng)
    right_sampler = PacketSampler(right_aut, right_start, rng=rng)
    report = OracleReport(left_aut.name, right_aut.name, packets, seed=seed)
    for index in range(packets):
        left_store = left_sampler.random_store()
        right_store = right_sampler.random_store()
        mode = index % 3
        if mode == 0:
            packet = left_sampler.random_packet(left_store)
            origin = "left-walk"
        elif mode == 1:
            packet = right_sampler.random_packet(right_store)
            origin = "right-walk"
        else:
            packet = _random_bits(rng, rng.randint(0, max_uniform_bits))
            origin = "uniform"
        left_accepts = accepts(left_aut, left_start, packet, left_store)
        right_accepts = accepts(right_aut, right_start, packet, right_store)
        report.accepted_left += left_accepts
        report.accepted_right += right_accepts
        if left_accepts != right_accepts:
            report.total_divergences += 1
            if len(report.divergences) < max_recorded:
                report.divergences.append(
                    Divergence(packet, left_store, right_store,
                               left_accepts, right_accepts, origin)
                )
    return report
