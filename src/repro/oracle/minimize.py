"""Concrete confirmation and greedy minimization of counterexamples.

A refutation is only convincing if its witness is (a) *real* — both parsers,
run concretely, actually disagree on it — and (b) *small* — a 24-bit packet
that flips one branch is debuggable, a 4096-bit SAT model is not.  This module
provides both:

* :func:`confirm_counterexample` replays the packet through the concrete
  interpreter and checks the recorded verdicts;
* :func:`minimize_counterexample` shrinks a confirmed witness with three
  passes, cheapest first —

  1. **symbolic re-solve**: re-run the bounded search with
     ``max_packet_bits`` tightened below the current witness, reusing the
     search's incremental solver session (identical path prefixes hit the
     Tseitin memo and learned clauses), until no shorter witness exists
     within bounds.  This escapes leap-granularity local minima: a
     two-big-leap witness can be replaced by a three-small-leap one;
  2. **greedy leap-drop**: remove one whole leap's bits at a time and keep
     every drop the concrete replay still confirms (loops shrink this way —
     a distinguishing MPLS stack rarely needs all its labels);
  3. **greedy bit-drop**: the same at single-bit granularity, capped by
     width so minimization stays linear-ish on big packets.

Every candidate is validated by concrete replay only — the minimizer can
never produce an unconfirmed witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.counterexample import Counterexample, CounterexampleSearch
from ..p4a.bitvec import Bits
from ..p4a.semantics import Store, accepts
from ..p4a.syntax import P4Automaton


@dataclass
class MinimizationResult:
    """What the minimizer did to one counterexample."""

    counterexample: Counterexample
    original_width: int
    resolves: int = 0
    leap_drops: int = 0
    bit_drops: int = 0

    @property
    def minimized(self) -> bool:
        return self.counterexample.packet.width < self.original_width


def confirm_counterexample(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    cex: Counterexample,
) -> bool:
    """Replay the witness concretely and check the recorded verdicts hold."""
    left_accepts = accepts(left_aut, left_start, cex.packet, cex.left_store)
    right_accepts = accepts(right_aut, right_start, cex.packet, cex.right_store)
    return (
        left_accepts == cex.left_accepts
        and right_accepts == cex.right_accepts
        and left_accepts != right_accepts
    )


def _disagreement(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    packet: Bits,
    left_store: Store,
    right_store: Store,
) -> Optional[Tuple[bool, bool]]:
    """``(left, right)`` acceptance when they differ, else ``None``."""
    left_accepts = accepts(left_aut, left_start, packet, left_store)
    right_accepts = accepts(right_aut, right_start, packet, right_store)
    if left_accepts == right_accepts:
        return None
    return left_accepts, right_accepts


def minimize_counterexample(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    cex: Counterexample,
    search: Optional[CounterexampleSearch] = None,
    max_leaps: int = 32,
    max_resolves: int = 4,
    bit_drop_limit: int = 192,
) -> MinimizationResult:
    """Greedily shrink ``cex``; every intermediate witness is replay-confirmed.

    ``search`` (when given) must be the :class:`CounterexampleSearch` that
    produced the witness — its solver session is reused for the tightened
    re-solves.  ``bit_drop_limit`` bounds the width at which the quadratic
    single-bit pass still runs.
    """
    result = MinimizationResult(cex, cex.packet.width)
    best = cex

    # Pass 1: tighten the symbolic bound until no shorter witness exists.
    if search is not None:
        for _ in range(max_resolves):
            if best.packet.width == 0:
                break
            search.statistics.resolves += 1
            result.resolves += 1
            shorter = search.search(
                max_leaps=max_leaps, max_packet_bits=best.packet.width - 1
            )
            if shorter is None or shorter.packet.width >= best.packet.width:
                break
            best = shorter

    # Pass 2: drop whole leaps while the concrete disagreement survives.
    widths: List[int] = list(best.leap_widths)
    packet = best.packet
    left_store, right_store = best.left_store, best.right_store
    if sum(widths) == packet.width and widths:
        changed = True
        while changed:
            changed = False
            for index in range(len(widths) - 1, -1, -1):
                offset = sum(widths[:index])
                candidate = packet.take(offset).concat(packet.drop(offset + widths[index]))
                verdicts = _disagreement(
                    left_aut, left_start, right_aut, right_start,
                    candidate, left_store, right_store,
                )
                if verdicts is not None:
                    packet = candidate
                    del widths[index]
                    result.leap_drops += 1
                    changed = True

    # Pass 3: drop single bits (bounded, so huge packets stay cheap).
    if packet.width <= bit_drop_limit:
        changed = True
        while changed:
            changed = False
            for index in range(packet.width - 1, -1, -1):
                candidate = packet.take(index).concat(packet.drop(index + 1))
                verdicts = _disagreement(
                    left_aut, left_start, right_aut, right_start,
                    candidate, left_store, right_store,
                )
                if verdicts is not None:
                    packet = candidate
                    result.bit_drops += 1
                    changed = True

    final_verdicts = _disagreement(
        left_aut, left_start, right_aut, right_start, packet, left_store, right_store
    )
    if final_verdicts is None:
        # Cannot happen (every accepted candidate was replay-confirmed), but
        # never let a broken witness escape the minimizer.
        result.counterexample = cex
        return result
    left_accepts, right_accepts = final_verdicts
    result.counterexample = Counterexample(
        packet,
        left_store,
        right_store,
        left_accepts,
        right_accepts,
        leap_widths=tuple(widths) if sum(widths) == packet.width else (),
        minimized_from=cex.packet.width if packet.width < cex.packet.width else None,
    )
    return result


def minimize_witness_packet(
    left_aut: P4Automaton,
    left_start: str,
    right_aut: P4Automaton,
    right_start: str,
    packet: Bits,
    bit_drop_limit: int = 192,
) -> Bits:
    """Greedily shrink a store-default witness packet.

    The campaign distiller's entry point: synthesized witnesses live under
    all-zero initial stores and carry no leap structure, so this wraps the
    packet into a :class:`Counterexample` and reuses the greedy bit-drop pass
    of :func:`minimize_counterexample`.  Returns the packet unchanged when it
    does not actually diverge (the caller decides what that means).
    """
    verdicts = _disagreement(
        left_aut, left_start, right_aut, right_start, packet, None, None
    )
    if verdicts is None:
        return packet
    left_accepts, right_accepts = verdicts
    cex = Counterexample(packet, None, None, left_accepts, right_accepts)
    result = minimize_counterexample(
        left_aut, left_start, right_aut, right_start, cex,
        bit_drop_limit=bit_drop_limit,
    )
    return result.counterexample.packet
