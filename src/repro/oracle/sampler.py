"""Seedable, structure-aware random packet and store generation.

``language_sample`` (kept in :mod:`repro.p4a.semantics` for tiny automata)
enumerates all ``2^n`` packets and is useless beyond ~20 bits.  This module
samples parser behaviours at scale instead: a :class:`PacketSampler` walks the
automaton *concretely*, steering each state's input block toward a randomly
chosen ``select`` case by writing the case's pattern bits at the right
offsets, so even deep states (inner headers behind tunnels, bottom-of-stack
labels) are exercised with realistic probability.  The walk is deliberately
biased toward the places equivalence bugs hide:

* **transition boundaries** — packets are sometimes truncated mid-state
  (0, 1 or ``needed - 1`` buffered bits) and sometimes extended past
  ``accept`` by a stray bit;
* **header-field edge values** — input blocks and initial stores draw from
  all-zeros, all-ones and the exact pattern constants of the automaton's
  selects (the values on either side of every branch).

Everything is driven by one ``random.Random`` so a seed reproduces the exact
packet sequence; ``LEAPFROG_SEED`` (see :mod:`repro.envconfig`) threads a seed
end to end through the CLI, benchmarks and CI.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

from ..p4a.bitvec import Bits
from ..p4a.semantics import Store, accepts, eval_transition, exec_ops
from ..p4a.syntax import (
    ACCEPT,
    Concat,
    ExactPattern,
    Expr,
    Extract,
    HeaderRef,
    P4Automaton,
    REJECT,
    Select,
    SelectCase,
    Slice,
    State,
)


def sample_store(aut: P4Automaton, rng: random.Random, edge_bias: float = 0.5) -> Store:
    """A random initial store, biased toward per-header edge values.

    With probability ``edge_bias`` each header draws from its edge set
    (all-zeros, all-ones, and every select-pattern constant embedded at the
    slice offset it is compared against); otherwise the bits are uniform.
    """
    edges = _header_edge_values(aut)
    store: Store = {}
    for name, width in aut.headers.items():
        candidates = edges.get(name, ())
        if candidates and rng.random() < edge_bias:
            store[name] = rng.choice(candidates)
        else:
            store[name] = _random_bits(rng, width)
    return store


def _random_bits(rng: random.Random, width: int) -> Bits:
    return Bits("".join(rng.choice("01") for _ in range(width)))


def _header_edge_values(aut: P4Automaton) -> Dict[str, Tuple[Bits, ...]]:
    """Edge values per header: extremes plus every pattern constant in place."""
    values: Dict[str, List[Bits]] = {
        name: [Bits.zeros(width), Bits.ones(width)] for name, width in aut.headers.items()
    }
    for state in aut.states.values():
        transition = state.transition
        if not isinstance(transition, Select):
            continue
        for case in transition.cases:
            for expr, pattern in zip(transition.exprs, case.patterns):
                if not isinstance(pattern, ExactPattern):
                    continue
                target = _slice_of_header(expr)
                if target is None:
                    continue
                header, lo = target
                width = aut.header_size(header)
                if lo + pattern.value.width > width:
                    continue
                for background in (Bits.zeros(width), Bits.ones(width)):
                    bits = background.to_bitstring()
                    embedded = (
                        bits[:lo] + pattern.value.to_bitstring()
                        + bits[lo + pattern.value.width:]
                    )
                    values[header].append(Bits(embedded))
    return {name: tuple(dict.fromkeys(vals)) for name, vals in values.items()}


def _slice_of_header(expr: Expr) -> Optional[Tuple[str, int]]:
    """``(header, offset)`` when ``expr`` is a header or a slice of one."""
    if isinstance(expr, HeaderRef):
        return expr.name, 0
    if isinstance(expr, Slice) and isinstance(expr.expr, HeaderRef):
        return expr.expr.name, expr.lo
    return None


class PacketSampler:
    """Structure-aware random packets (and stores) for one parser.

    ``random_packet`` walks the automaton with the concrete semantics,
    choosing a successor state at every transition and constructing input
    bits that actually take that branch, so the sample distribution covers
    the automaton's *paths* rather than the (exponentially skewed) space of
    raw bitstrings.  The walk is seeded and fully deterministic for a given
    ``random.Random``.
    """

    def __init__(
        self,
        aut: P4Automaton,
        start: str,
        rng: Optional[random.Random] = None,
        seed: int = 0,
        max_states: int = 64,
        truncate_bias: float = 0.15,
        overrun_bias: float = 0.1,
        edge_bias: float = 0.3,
    ) -> None:
        self.aut = aut
        self.start = start
        self.rng = rng if rng is not None else random.Random(seed)
        self.max_states = max_states
        self.truncate_bias = truncate_bias
        self.overrun_bias = overrun_bias
        self.edge_bias = edge_bias
        # Per-state layout of extracted headers within the state's input block.
        self._layouts: Dict[str, Dict[str, int]] = {}
        for name, state in aut.states.items():
            layout: Dict[str, int] = {}
            position = 0
            for op in state.ops:
                if isinstance(op, Extract):
                    layout[op.header] = position
                    position += aut.header_size(op.header)
            self._layouts[name] = layout

    # ------------------------------------------------------------------

    def random_store(self) -> Store:
        return sample_store(self.aut, self.rng, edge_bias=self.edge_bias)

    def random_packet(self, store: Optional[Store] = None) -> Bits:
        """One structure-aware random packet (with boundary/overrun bias)."""
        rng = self.rng
        current = dict(store) if store is not None else sample_store(self.aut, rng)
        state_name = self.start
        packet: List[str] = []
        for _ in range(self.max_states):
            if state_name == ACCEPT:
                if rng.random() < self.overrun_bias:
                    # One bit past acceptance: must flip the verdict to reject.
                    packet.append(rng.choice("01"))
                break
            if state_name == REJECT:
                break
            state = self.aut.state(state_name)
            needed = self.aut.op_size(state_name)
            if needed == 0:
                break  # cannot make progress without consuming bits
            if rng.random() < self.truncate_bias:
                # Stop at a transition boundary: leave 0, 1 or needed-1 bits
                # buffered so the run ends mid-state (a reject by exhaustion).
                cut = rng.choice((0, 1, max(needed - 1, 0)))
                packet.extend(rng.choice("01") for _ in range(cut))
                break
            data = self._data_block(state, needed)
            packet.extend(data)
            current = exec_ops(self.aut, state, current, Bits("".join(data)))
            state_name = eval_transition(state.transition, current)
        return Bits("".join(packet))

    def sample(self, count: int) -> Iterator[Tuple[Bits, Store]]:
        """``count`` (packet, initial store) pairs; the store drives the walk."""
        for _ in range(count):
            store = self.random_store()
            yield self.random_packet(store), store

    # ------------------------------------------------------------------

    def _data_block(self, state: State, needed: int) -> List[str]:
        """Input bits for one state, steered toward a random select case."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.15:
            data = ["0"] * needed
        elif roll < 0.3:
            data = ["1"] * needed
        else:
            data = [rng.choice("01") for _ in range(needed)]
        transition = state.transition
        if isinstance(transition, Select) and transition.cases and rng.random() < 0.85:
            case = rng.choice(transition.cases)
            self._steer(state, case, transition, data)
        return data

    def _steer(self, state: State, case: SelectCase, transition: Select, data: List[str]) -> None:
        """Overwrite pattern-constrained positions of ``data`` to take ``case``.

        Only bits that flow directly from this state's extracts can be
        steered; patterns over assigned or previously-extracted headers are
        left to chance (the walk still follows whatever branch the concrete
        transition takes).
        """
        layout = self._layouts[state.name]
        for expr, pattern in zip(transition.exprs, case.patterns):
            if not isinstance(pattern, ExactPattern):
                continue
            positions = self._expr_positions(expr, layout)
            if positions is None or len(positions) != pattern.value.width:
                continue
            for position, bit in zip(positions, pattern.value.to_bitstring()):
                if 0 <= position < len(data):
                    data[position] = bit

    def _expr_positions(self, expr: Expr, layout: Dict[str, int]) -> Optional[List[int]]:
        """Positions in the state's input block that ``expr`` reads, if direct."""
        if isinstance(expr, HeaderRef):
            offset = layout.get(expr.name)
            if offset is None:
                return None
            return list(range(offset, offset + self.aut.header_size(expr.name)))
        if isinstance(expr, Slice):
            inner = self._expr_positions(expr.expr, layout)
            if inner is None or not inner:
                return None
            lo = min(expr.lo, len(inner) - 1)
            hi = min(expr.hi, len(inner) - 1)
            if lo > hi:
                return []
            return inner[lo : hi + 1]
        if isinstance(expr, Concat):
            left = self._expr_positions(expr.left, layout)
            right = self._expr_positions(expr.right, layout)
            if left is None or right is None:
                return None
            return left + right
        return None


def seeded_language_sample(
    aut: P4Automaton,
    start: str,
    count: int,
    seed: int = 0,
    store: Optional[Store] = None,
    max_attempts_per_packet: int = 50,
) -> List[Bits]:
    """Up to ``count`` distinct *accepted* packets, sampled (not enumerated).

    The seedable replacement for ``language_sample`` on automata too large to
    enumerate: packets come from structure-aware walks, filtered by concrete
    acceptance, deduplicated, in a deterministic order for a given seed.
    """
    rng = random.Random(seed)
    sampler = PacketSampler(aut, start, rng=rng, truncate_bias=0.0, overrun_bias=0.0)
    found: List[Bits] = []
    seen = set()
    attempts = 0
    budget = count * max_attempts_per_packet
    while len(found) < count and attempts < budget:
        attempts += 1
        walk_store = store if store is not None else sampler.random_store()
        packet = sampler.random_packet(walk_store)
        if packet in seen:
            continue
        if accepts(aut, start, packet, walk_store):
            seen.add(packet)
            found.append(packet)
    return found
