"""The differential fuzz suite over the registered scenarios.

For every scenario in the tagged registry (:mod:`repro.scenarios`) the suite
cross-checks two independently produced parsers with the concrete oracle:

* **graph scenarios** (the parser-gen deployment mixes) run a **self**
  cross-check — the scenario's reference P4A against itself (any divergence
  is an interpreter/sampler bug) — plus a **translation** cross-check against
  the automaton back-translated from the compiled hardware table (any
  divergence is a compiler or back-translation bug the symbolic
  translation-validation run should have caught);
* **pair scenarios** (the protocol-family workloads) cross-check their two
  sides against each other.  A pair tagged ``equivalent`` must produce zero
  divergences; a pair tagged ``not_equivalent`` must produce at least one.
  When the fuzz budget misses a deliberately planted bug, the suite falls
  back to the bounded symbolic counterexample search and replays its witness
  concretely, so an expected-inequivalent row never depends on sampler luck.

A row is **ok** when the observed divergences match the scenario's expected
verdict.  Rows carry full telemetry; :func:`write_reports` persists one JSON
file per failing row — including every recorded divergence with its seed,
packet and stores — so a CI failure is reproducible from the artifact alone.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..parsergen import compile_graph, graph_to_p4a, hardware_to_p4a
from ..scenarios import Scenario, get, mini_names, names as registry_names
from .differential import Divergence, OracleReport, cross_check


@dataclass
class ScenarioOracleRow:
    """Telemetry for one scenario's differential runs."""

    scenario: str
    packets: int
    seed: int
    self_report: OracleReport
    translation_report: Optional[OracleReport] = None
    elapsed_seconds: float = 0.0
    kind: str = "graph"
    expected_equivalent: bool = True
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def divergences(self) -> int:
        total = self.self_report.total_divergences
        if self.translation_report is not None:
            total += self.translation_report.total_divergences
        return total

    @property
    def ok(self) -> bool:
        """Observed divergences match the scenario's expected verdict."""
        if self.expected_equivalent:
            return self.divergences == 0
        return self.divergences > 0

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "scenario": self.scenario,
            "kind": self.kind,
            "expected": "equivalent" if self.expected_equivalent else "not_equivalent",
            "ok": self.ok,
            "packets": self.packets,
            "seed": self.seed,
            "divergences": self.divergences,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "self": self.self_report.as_dict(),
        }
        if self.translation_report is not None:
            record["translation"] = self.translation_report.as_dict()
        record.update(self.extra)
        return record


def _graph_row(info: Scenario, packets: int, seed: int, include_translation: bool):
    graph = info.graph()
    automaton, start = graph_to_p4a(graph)
    self_report = cross_check(
        automaton, start, automaton, start, packets=packets, seed=seed
    )
    translation_report = None
    extra: Dict[str, object] = {}
    if include_translation:
        hardware = compile_graph(graph)
        translated, translated_start = hardware_to_p4a(hardware)
        translation_report = cross_check(
            automaton, start, translated, translated_start,
            packets=packets, seed=seed,
        )
        extra["hardware_entries"] = len(hardware.entries)
    return self_report, translation_report, extra


def _pair_row(info: Scenario, packets: int, seed: int):
    left, left_start, right, right_start = info.automata()
    report = cross_check(
        left, left_start, right, right_start, packets=packets, seed=seed
    )
    extra: Dict[str, object] = {}
    if not info.expected_equivalent and report.total_divergences == 0:
        # The fuzz budget missed the planted inequivalence: find a witness
        # symbolically and replay it concretely so the row's verdict is
        # deterministic rather than a function of sampler luck.
        witness = _symbolic_witness(left, left_start, right, right_start)
        if witness is not None:
            report.divergences.append(witness)
            report.total_divergences += 1
            extra["witness_origin"] = "symbolic-search"
    return report, extra


def _symbolic_witness(left, left_start, right, right_start) -> Optional[Divergence]:
    """A replay-confirmed divergence from the bounded counterexample search."""
    from ..core.counterexample import CounterexampleSearch
    from ..p4a.semantics import accepts
    from ..smt.backend import InternalBackend

    search = CounterexampleSearch(
        left, left_start, right, right_start, backend=InternalBackend()
    )
    counterexample = search.search(max_leaps=16)
    if counterexample is None:
        return None
    left_accepts = accepts(left, left_start, counterexample.packet, counterexample.left_store)
    right_accepts = accepts(
        right, right_start, counterexample.packet, counterexample.right_store
    )
    if left_accepts == right_accepts:
        return None  # replay disagrees with the search; refuse the witness
    return Divergence(
        packet=counterexample.packet,
        left_store=counterexample.left_store,
        right_store=counterexample.right_store,
        left_accepts=left_accepts,
        right_accepts=right_accepts,
        origin="symbolic-search",
    )


def run_differential_suite(
    names: Optional[Sequence[str]] = None,
    packets: int = 128,
    seed: int = 0,
    include_translation: bool = True,
) -> List[ScenarioOracleRow]:
    """Cross-check every named scenario (default: all registered scenarios)."""
    if names is None:
        names = registry_names()
    known = set(registry_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ValueError(
            f"unknown scenarios: {', '.join(unknown)}; known: {sorted(known)}"
        )
    rows: List[ScenarioOracleRow] = []
    for name in names:
        info = get(name)
        start_time = time.perf_counter()
        translation_report = None
        if info.kind == "graph":
            self_report, translation_report, extra = _graph_row(
                info, packets, seed, include_translation
            )
        else:
            self_report, extra = _pair_row(info, packets, seed)
        rows.append(
            ScenarioOracleRow(
                scenario=name,
                packets=packets,
                seed=seed,
                self_report=self_report,
                translation_report=translation_report,
                elapsed_seconds=time.perf_counter() - start_time,
                kind=info.kind,
                expected_equivalent=info.expected_equivalent,
                extra=extra,
            )
        )
    return rows


def mini_scenario_names() -> List[str]:
    """Every ``mini`` scenario — the population the CI oracle smoke covers."""
    return mini_names()


def render_suite(rows: Sequence[ScenarioOracleRow]) -> str:
    """A fixed-width summary table of one suite run."""
    from ..reporting.table import render_fixed_width

    headers = ("Scenario", "Kind", "Expected", "Packets", "Seed",
               "Self div.", "Transl. div.", "Accepted", "OK", "Time (s)")
    table: List[List[str]] = []
    for row in rows:
        translation = (
            str(row.translation_report.total_divergences)
            if row.translation_report is not None else "-"
        )
        table.append([
            row.scenario,
            row.kind,
            "equiv" if row.expected_equivalent else "inequiv",
            str(row.packets),
            str(row.seed),
            str(row.self_report.total_divergences),
            translation,
            str(row.self_report.accepted_left),
            "yes" if row.ok else "NO",
            f"{row.elapsed_seconds:.2f}",
        ])
    return render_fixed_width(headers, table)


def write_reports(rows: Sequence[ScenarioOracleRow], directory: str) -> List[str]:
    """Persist the suite's telemetry (and any failures) as JSON files.

    Always writes ``summary.json``; additionally writes one
    ``divergence_<scenario>.json`` per *failing* row (unexpected divergences,
    or an expected inequivalence the oracle could not demonstrate), carrying
    the seed, the packets and the initial stores needed to reproduce.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    summary_path = os.path.join(directory, "summary.json")
    with open(summary_path, "w") as handle:
        json.dump(
            {
                "ok": all(row.ok for row in rows),
                "rows": [row.as_dict() for row in rows],
            },
            handle,
            indent=2,
        )
    written.append(summary_path)
    for row in rows:
        if row.ok:
            continue
        path = os.path.join(directory, f"divergence_{row.scenario}.json")
        with open(path, "w") as handle:
            json.dump(row.as_dict(), handle, indent=2)
        written.append(path)
    return written
