"""The differential fuzz suite over the parser-gen scenarios.

For every scenario (Edge, ServiceProvider, Datacenter, Enterprise and their
mini variants) the suite cross-checks two independently produced parsers with
the concrete oracle:

* **self** — the scenario's reference P4A against itself (any divergence is an
  interpreter/sampler bug);
* **translation** — the reference P4A against the automaton back-translated
  from the compiled hardware table (any divergence is a compiler or
  back-translation bug the symbolic translation-validation run should have
  caught).

Rows carry full telemetry; :func:`write_reports` persists one JSON file per
run — including every recorded divergence with its seed, packet and stores —
so a CI failure is reproducible from the artifact alone.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..parsergen import compile_graph, graph_to_p4a, hardware_to_p4a, scenario
from ..parsergen.scenarios import MINI_SCENARIOS, SCENARIOS
from .differential import OracleReport, cross_check


@dataclass
class ScenarioOracleRow:
    """Telemetry for one scenario's differential runs."""

    scenario: str
    packets: int
    seed: int
    self_report: OracleReport
    translation_report: Optional[OracleReport] = None
    elapsed_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def divergences(self) -> int:
        total = self.self_report.total_divergences
        if self.translation_report is not None:
            total += self.translation_report.total_divergences
        return total

    @property
    def ok(self) -> bool:
        return self.divergences == 0

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "scenario": self.scenario,
            "packets": self.packets,
            "seed": self.seed,
            "divergences": self.divergences,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "self": self.self_report.as_dict(),
        }
        if self.translation_report is not None:
            record["translation"] = self.translation_report.as_dict()
        record.update(self.extra)
        return record


def run_differential_suite(
    names: Optional[Sequence[str]] = None,
    packets: int = 128,
    seed: int = 0,
    include_translation: bool = True,
) -> List[ScenarioOracleRow]:
    """Cross-check every named scenario (default: all registered scenarios)."""
    if names is None:
        names = list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios: {', '.join(unknown)}; known: {sorted(SCENARIOS)}")
    rows: List[ScenarioOracleRow] = []
    for name in names:
        start_time = time.perf_counter()
        graph = scenario(name)
        automaton, start = graph_to_p4a(graph)
        self_report = cross_check(
            automaton, start, automaton, start, packets=packets, seed=seed
        )
        translation_report = None
        extra: Dict[str, object] = {}
        if include_translation:
            hardware = compile_graph(graph)
            translated, translated_start = hardware_to_p4a(hardware)
            translation_report = cross_check(
                automaton, start, translated, translated_start,
                packets=packets, seed=seed,
            )
            extra["hardware_entries"] = len(hardware.entries)
        rows.append(
            ScenarioOracleRow(
                scenario=name,
                packets=packets,
                seed=seed,
                self_report=self_report,
                translation_report=translation_report,
                elapsed_seconds=time.perf_counter() - start_time,
                extra=extra,
            )
        )
    return rows


def mini_scenario_names() -> List[str]:
    """The four mini scenarios the CI oracle smoke covers."""
    return list(MINI_SCENARIOS)


def render_suite(rows: Sequence[ScenarioOracleRow]) -> str:
    """A fixed-width summary table of one suite run."""
    headers = ("Scenario", "Packets", "Seed", "Self div.", "Transl. div.", "Accepted", "Time (s)")
    table: List[List[str]] = []
    for row in rows:
        translation = (
            str(row.translation_report.total_divergences)
            if row.translation_report is not None else "-"
        )
        table.append([
            row.scenario,
            str(row.packets),
            str(row.seed),
            str(row.self_report.total_divergences),
            translation,
            str(row.self_report.accepted_left),
            f"{row.elapsed_seconds:.2f}",
        ])
    widths = [len(header) for header in headers]
    for line in table:
        for index, cell in enumerate(line):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def write_reports(rows: Sequence[ScenarioOracleRow], directory: str) -> List[str]:
    """Persist the suite's telemetry (and any divergences) as JSON files.

    Always writes ``summary.json``; additionally writes one
    ``divergence_<scenario>.json`` per scenario that diverged, carrying the
    seed, the packets and the initial stores needed to reproduce.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    summary_path = os.path.join(directory, "summary.json")
    with open(summary_path, "w") as handle:
        json.dump(
            {
                "ok": all(row.ok for row in rows),
                "rows": [row.as_dict() for row in rows],
            },
            handle,
            indent=2,
        )
    written.append(summary_path)
    for row in rows:
        if row.ok:
            continue
        path = os.path.join(directory, f"divergence_{row.scenario}.json")
        with open(path, "w") as handle:
            json.dump(row.as_dict(), handle, indent=2)
        written.append(path)
    return written
