"""Immutable bitvector values.

Bitvectors in Leapfrog are finite strings over ``{0, 1}``.  Bit index 0 is the
*first* bit of the string — the first bit read off the wire — matching the
paper's zero-indexed, inclusive slicing convention (Definition 3.1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union


class Bits:
    """An immutable sequence of bits.

    The representation is a Python string of ``'0'``/``'1'`` characters, which
    keeps slicing and concatenation simple and fast enough for simulation and
    testing purposes.
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: Union[str, Iterable[int], "Bits"] = "") -> None:
        if isinstance(bits, Bits):
            self._bits = bits._bits
            return
        if isinstance(bits, str):
            if bits and set(bits) - {"0", "1"}:
                raise ValueError(f"invalid bit string: {bits!r}")
            self._bits = bits
            return
        chars = []
        for b in bits:
            if b not in (0, 1):
                raise ValueError(f"invalid bit value: {b!r}")
            chars.append("1" if b else "0")
        self._bits = "".join(chars)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def zeros(width: int) -> "Bits":
        return Bits("0" * width)

    @staticmethod
    def ones(width: int) -> "Bits":
        return Bits("1" * width)

    @staticmethod
    def from_int(value: int, width: int) -> "Bits":
        """Most-significant-bit-first encoding of ``value`` into ``width`` bits."""
        if value < 0:
            raise ValueError("negative values are not representable")
        if width < 0:
            raise ValueError("negative width")
        if value >= (1 << width) and width > 0:
            raise ValueError(f"value {value} does not fit in {width} bits")
        if width == 0:
            if value != 0:
                raise ValueError("nonzero value in zero width")
            return Bits("")
        return Bits(format(value, f"0{width}b"))

    @staticmethod
    def from_bytes(data: bytes) -> "Bits":
        return Bits("".join(format(byte, "08b") for byte in data))

    # -- accessors -----------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self._bits)

    def to_int(self) -> int:
        """Interpret the bits MSB-first as an unsigned integer."""
        if not self._bits:
            return 0
        return int(self._bits, 2)

    def to_bitstring(self) -> str:
        return self._bits

    def to_tuple(self) -> tuple:
        return tuple(1 if c == "1" else 0 for c in self._bits)

    # -- operations ----------------------------------------------------------

    def concat(self, other: "Bits") -> "Bits":
        return Bits(self._bits + other._bits)

    def slice(self, n1: int, n2: int) -> "Bits":
        """The paper's clamped, inclusive slice ``w[n1:n2]`` (Definition 3.1).

        The slice starts at ``min(n1, |w| - 1)`` and ends at ``min(n2, |w| - 1)``,
        inclusive.  Slicing the empty bitvector yields the empty bitvector.
        """
        if self.width == 0:
            return Bits("")
        lo = min(n1, self.width - 1)
        hi = min(n2, self.width - 1)
        if lo > hi:
            return Bits("")
        return Bits(self._bits[lo : hi + 1])

    def take(self, n: int) -> "Bits":
        return Bits(self._bits[:n])

    def drop(self, n: int) -> "Bits":
        return Bits(self._bits[n:])

    def bit(self, index: int) -> int:
        return 1 if self._bits[index] == "1" else 0

    # -- dunder --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[int]:
        return (1 if c == "1" else 0 for c in self._bits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Bits(self._bits[index])
        return self.bit(index)

    def __add__(self, other: "Bits") -> "Bits":
        return self.concat(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bits):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(("Bits", self._bits))

    def __repr__(self) -> str:
        return f"Bits({self._bits!r})"

    def __str__(self) -> str:
        return self._bits if self._bits else "ε"


def bits(value: Union[str, int, Bits], width: int = None) -> Bits:
    """Convenience constructor.

    ``bits("0101")`` builds from a literal bit string; ``bits(5, 4)`` builds
    from an integer and an explicit width.
    """
    if isinstance(value, Bits):
        return value
    if isinstance(value, int):
        if width is None:
            raise ValueError("integer bit literals require an explicit width")
        return Bits.from_int(value, width)
    return Bits(value)


EMPTY = Bits("")
