"""A fluent builder for constructing P4 automata programmatically.

Example
-------

>>> from repro.p4a import AutomatonBuilder
>>> builder = AutomatonBuilder("mpls_reference")
>>> builder.header("mpls", 32).header("udp", 64)
>>> (builder.state("q1")
...     .extract("mpls")
...     .select("mpls[23:23]", {"0": "q1", "1": "q2"}))
>>> builder.state("q2").extract("udp").goto("accept")
>>> aut = builder.build()
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .bitvec import Bits
from .errors import P4ATypeError
from .syntax import (
    ACCEPT,
    REJECT,
    Assign,
    BVLit,
    Concat,
    ExactPattern,
    Expr,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Pattern,
    Select,
    SelectCase,
    Slice,
    State,
    WILDCARD,
)
from .typing import check_automaton

_SLICE_RE = re.compile(r"^(?P<base>[A-Za-z_][A-Za-z0-9_]*)\[(?P<lo>\d+):(?P<hi>\d+)\]$")
_HEX_RE = re.compile(r"^0x[0-9a-fA-F]+$")
_BIN_RE = re.compile(r"^0b[01]+$")


def parse_expr_shorthand(text: Union[str, Expr], headers: Mapping[str, int]) -> Expr:
    """Parse the compact expression notation used by the builder.

    Supported forms: ``"hdr"``, ``"hdr[lo:hi]"``, ``"0b0101"``, ``"0xAB"``,
    and ``"a ++ b"`` (concatenation, left-associative).  Full expressions can
    always be supplied as :class:`Expr` values instead.
    """
    if isinstance(text, Expr):
        return text
    text = text.strip()
    if "++" in text:
        parts = [part.strip() for part in text.split("++")]
        exprs = [parse_expr_shorthand(part, headers) for part in parts]
        result = exprs[0]
        for expr in exprs[1:]:
            result = Concat(result, expr)
        return result
    match = _SLICE_RE.match(text)
    if match:
        base = parse_expr_shorthand(match.group("base"), headers)
        return Slice(base, int(match.group("lo")), int(match.group("hi")))
    if _BIN_RE.match(text):
        return BVLit(Bits(text[2:]))
    if _HEX_RE.match(text):
        digits = text[2:]
        return BVLit(Bits.from_int(int(digits, 16), 4 * len(digits)))
    if text in headers:
        return HeaderRef(text)
    raise P4ATypeError(f"cannot parse expression shorthand {text!r}")


def parse_pattern_shorthand(text: Union[str, Pattern, Bits], width: Optional[int] = None) -> Pattern:
    """Parse a pattern: ``"_"`` (wildcard), ``"0b.."``, ``"0x.."`` or plain bits."""
    if isinstance(text, Pattern):
        return text
    if isinstance(text, Bits):
        return ExactPattern(text)
    text = text.strip()
    if text == "_":
        return WILDCARD
    if _BIN_RE.match(text):
        return ExactPattern(Bits(text[2:]))
    if _HEX_RE.match(text):
        digits = text[2:]
        return ExactPattern(Bits.from_int(int(digits, 16), 4 * len(digits)))
    if set(text) <= {"0", "1"} and text:
        return ExactPattern(Bits(text))
    raise P4ATypeError(f"cannot parse pattern shorthand {text!r}")


class StateBuilder:
    """Builds a single state.  Obtained from :meth:`AutomatonBuilder.state`."""

    def __init__(self, parent: "AutomatonBuilder", name: str) -> None:
        self._parent = parent
        self._name = name
        self._ops: List = []
        self._transition = None

    # -- operations -----------------------------------------------------------

    def extract(self, header: str, size: Optional[int] = None) -> "StateBuilder":
        """Add ``extract(header)``; optionally declares the header's size inline."""
        if size is not None:
            self._parent.header(header, size)
        self._ops.append(Extract(header))
        return self

    def assign(self, header: str, expr: Union[str, Expr]) -> "StateBuilder":
        self._ops.append(Assign(header, parse_expr_shorthand(expr, self._parent._headers)))
        return self

    # -- transitions ----------------------------------------------------------

    def goto(self, target: str) -> "StateBuilder":
        self._transition = Goto(target)
        self._finish()
        return self

    def accept(self) -> "StateBuilder":
        return self.goto(ACCEPT)

    def reject(self) -> "StateBuilder":
        return self.goto(REJECT)

    def select(
        self,
        exprs: Union[str, Expr, Sequence[Union[str, Expr]]],
        cases: Union[Mapping, Sequence[Tuple]],
    ) -> "StateBuilder":
        """Add a ``select`` transition.

        ``exprs`` is one expression or a sequence of them.  ``cases`` is either
        a mapping from pattern (or pattern tuple) to target state, or a sequence
        of (pattern(s), target) pairs when order matters.
        """
        if isinstance(exprs, (str, Expr)):
            expr_list = [parse_expr_shorthand(exprs, self._parent._headers)]
        else:
            expr_list = [parse_expr_shorthand(e, self._parent._headers) for e in exprs]
        if isinstance(cases, Mapping):
            case_items = list(cases.items())
        else:
            case_items = list(cases)
        select_cases = []
        for patterns, target in case_items:
            if isinstance(patterns, (str, Pattern, Bits)):
                pattern_tuple = (parse_pattern_shorthand(patterns),)
            else:
                pattern_tuple = tuple(parse_pattern_shorthand(p) for p in patterns)
            select_cases.append(SelectCase(pattern_tuple, target))
        self._transition = Select(tuple(expr_list), tuple(select_cases))
        self._finish()
        return self

    # -- internal -------------------------------------------------------------

    def _finish(self) -> None:
        self._parent._register_state(State(self._name, tuple(self._ops), self._transition))


class AutomatonBuilder:
    """Incrementally constructs a :class:`P4Automaton` and type-checks it."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._headers: Dict[str, int] = {}
        self._states: Dict[str, State] = {}

    def header(self, name: str, size: int) -> "AutomatonBuilder":
        existing = self._headers.get(name)
        if existing is not None and existing != size:
            raise P4ATypeError(
                f"header {name!r} declared with conflicting sizes {existing} and {size}"
            )
        self._headers[name] = size
        return self

    def headers(self, sizes: Mapping[str, int]) -> "AutomatonBuilder":
        for name, size in sizes.items():
            self.header(name, size)
        return self

    def state(self, name: str) -> StateBuilder:
        if name in (ACCEPT, REJECT):
            raise P4ATypeError(f"state name {name!r} is reserved")
        return StateBuilder(self, name)

    def _register_state(self, state: State) -> None:
        self._states[state.name] = state

    def build(self, check: bool = True) -> P4Automaton:
        aut = P4Automaton(self._name, dict(self._headers), dict(self._states))
        if check:
            check_automaton(aut)
        return aut
