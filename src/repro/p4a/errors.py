"""Exception hierarchy for the P4 automaton model."""

from __future__ import annotations


class P4AError(Exception):
    """Base class for all errors raised by the ``repro.p4a`` package."""


class P4ATypeError(P4AError):
    """A P4 automaton or one of its components is ill-typed (⊢E, ⊢O, ⊢T, ⊢A)."""


class P4ASemanticsError(P4AError):
    """A dynamic error during concrete execution (should not occur on
    well-typed automata; signals a violated internal invariant)."""


class P4ASyntaxError(P4AError):
    """A parse error in the concrete surface syntax."""

    def __init__(self, message: str, line: int = None, column: int = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column
