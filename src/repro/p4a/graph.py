"""Graph views of P4 automata.

Provides adjacency structure, reachability over states, simple structural
statistics, and DOT export for visualisation.  The equivalence checker's
template-level reachability analysis lives in :mod:`repro.core.reachability`;
this module is about the state graph only.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from .syntax import FINAL_STATES, P4Automaton, REJECT


def successors(aut: P4Automaton, state: str) -> Tuple[str, ...]:
    """States reachable from ``state`` in one transition (final states map to reject)."""
    if state in FINAL_STATES:
        return (REJECT,)
    return aut.transition_targets(state)


def reachable_states(aut: P4Automaton, start: str) -> Set[str]:
    """All states reachable from ``start``, including final states."""
    seen = {start}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for nxt in successors(aut, current):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen


def unreachable_states(aut: P4Automaton, start: str) -> Set[str]:
    return set(aut.states) - reachable_states(aut, start)


def adjacency(aut: P4Automaton) -> Dict[str, Tuple[str, ...]]:
    return {state: successors(aut, state) for state in aut.states}


def has_cycle(aut: P4Automaton) -> bool:
    """Whether the state graph (excluding final states) contains a cycle.

    Parsers with loops (e.g. MPLS label stacks, TLV options) have cyclic state
    graphs; they still terminate on finite packets because every state consumes
    at least one bit.
    """
    colour: Dict[str, int] = {state: 0 for state in aut.states}

    def visit(state: str) -> bool:
        colour[state] = 1
        for nxt in successors(aut, state):
            if nxt in FINAL_STATES:
                continue
            if colour.get(nxt) == 1:
                return True
            if colour.get(nxt) == 0 and visit(nxt):
                return True
        colour[state] = 2
        return False

    return any(colour[state] == 0 and visit(state) for state in aut.states)


def longest_acyclic_packet_bits(aut: P4Automaton, start: str) -> int:
    """An upper bound on packet length along acyclic paths from ``start``.

    Used by the bounded counterexample search to pick a sensible depth.  For
    cyclic automata this returns the longest simple path, which is a heuristic
    rather than a bound.
    """
    best = 0
    stack: List[Tuple[str, int, frozenset]] = [(start, 0, frozenset({start}))]
    while stack:
        state, bits, seen = stack.pop()
        best = max(best, bits)
        if state in FINAL_STATES:
            continue
        consumed = aut.op_size(state)
        for nxt in successors(aut, state):
            if nxt in seen and nxt not in FINAL_STATES:
                continue
            stack.append((nxt, bits + consumed, seen | {nxt}))
    return best


def to_dot(aut: P4Automaton, start: str = None) -> str:
    """Render the state graph in Graphviz DOT format."""
    lines = [f'digraph "{aut.name}" {{', "  rankdir=LR;"]
    lines.append('  accept [shape=doublecircle, color=darkgreen];')
    lines.append('  reject [shape=doublecircle, color=firebrick];')
    for state in aut.states.values():
        bits = aut.op_size(state.name)
        shape = "box" if state.name == start else "ellipse"
        lines.append(f'  "{state.name}" [shape={shape}, label="{state.name}\\n{bits} bits"];')
        for target in successors(aut, state.name):
            lines.append(f'  "{state.name}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines)
