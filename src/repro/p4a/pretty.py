"""Pretty-printer for P4 automata.

The output uses the concrete surface syntax accepted by
:mod:`repro.p4a.surface`, so ``parse_automaton(pretty(aut))`` round-trips.
"""

from __future__ import annotations

from .syntax import (
    Assign,
    BVLit,
    Concat,
    ExactPattern,
    Expr,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Pattern,
    Select,
    Slice,
    State,
    Transition,
    WildcardPattern,
)


def pretty_expr(expr: Expr) -> str:
    if isinstance(expr, HeaderRef):
        return expr.name
    if isinstance(expr, BVLit):
        return f"0b{expr.value.to_bitstring()}"
    if isinstance(expr, Slice):
        return f"{pretty_expr(expr.expr)}[{expr.lo}:{expr.hi}]"
    if isinstance(expr, Concat):
        return f"({pretty_expr(expr.left)} ++ {pretty_expr(expr.right)})"
    raise TypeError(f"unknown expression {expr!r}")


def pretty_pattern(pattern: Pattern) -> str:
    if isinstance(pattern, WildcardPattern):
        return "_"
    if isinstance(pattern, ExactPattern):
        return f"0b{pattern.value.to_bitstring()}"
    raise TypeError(f"unknown pattern {pattern!r}")


def pretty_transition(transition: Transition, indent: str) -> str:
    if isinstance(transition, Goto):
        return f"{indent}goto {transition.target};"
    if isinstance(transition, Select):
        exprs = ", ".join(pretty_expr(e) for e in transition.exprs)
        lines = [f"{indent}select({exprs}) {{"]
        for case in transition.cases:
            patterns = ", ".join(pretty_pattern(p) for p in case.patterns)
            lines.append(f"{indent}  ({patterns}) => {case.target}")
        lines.append(f"{indent}}}")
        return "\n".join(lines)
    raise TypeError(f"unknown transition {transition!r}")


def pretty_state(state: State, indent: str = "  ") -> str:
    lines = [f"{state.name} {{"]
    for op in state.ops:
        if isinstance(op, Extract):
            lines.append(f"{indent}extract({op.header});")
        elif isinstance(op, Assign):
            lines.append(f"{indent}{op.header} := {pretty_expr(op.expr)};")
        else:
            raise TypeError(f"unknown operation {op!r}")
    lines.append(pretty_transition(state.transition, indent))
    lines.append("}")
    return "\n".join(lines)


def pretty(aut: P4Automaton) -> str:
    """Render ``aut`` in concrete surface syntax."""
    lines = []
    for header, size in aut.headers.items():
        lines.append(f"header {header} : {size};")
    if aut.headers:
        lines.append("")
    for state in aut.states.values():
        lines.append(pretty_state(state))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
