"""Disjoint sums and renamings of P4 automata.

The equivalence checker compares configurations drawn from two automata.  The
paper does this by forming the disjoint sum, "renaming states and headers as
necessary" (Section 4).  The core algorithm in this reproduction keeps the two
automata separate and tags each side explicitly, but the disjoint sum is still
useful for reasoning about a pair of parsers as a single P4A (e.g. for the
explicit-state baseline and for exporting combined graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .syntax import (
    Assign,
    BVLit,
    Concat,
    Expr,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Select,
    SelectCase,
    Slice,
    State,
    Transition,
    FINAL_STATES,
)
from .typing import check_automaton


def rename_expr(expr: Expr, header_map: Dict[str, str]) -> Expr:
    if isinstance(expr, HeaderRef):
        return HeaderRef(header_map[expr.name])
    if isinstance(expr, BVLit):
        return expr
    if isinstance(expr, Slice):
        return Slice(rename_expr(expr.expr, header_map), expr.lo, expr.hi)
    if isinstance(expr, Concat):
        return Concat(rename_expr(expr.left, header_map), rename_expr(expr.right, header_map))
    raise TypeError(f"unknown expression {expr!r}")


def rename_transition(
    transition: Transition, state_map: Dict[str, str], header_map: Dict[str, str]
) -> Transition:
    def target(name: str) -> str:
        return name if name in FINAL_STATES else state_map[name]

    if isinstance(transition, Goto):
        return Goto(target(transition.target))
    if isinstance(transition, Select):
        exprs = tuple(rename_expr(e, header_map) for e in transition.exprs)
        cases = tuple(SelectCase(c.patterns, target(c.target)) for c in transition.cases)
        return Select(exprs, cases)
    raise TypeError(f"unknown transition {transition!r}")


def rename_automaton(aut: P4Automaton, prefix: str, name: str = None) -> Tuple[P4Automaton, Dict[str, str]]:
    """Prefix every state and header name; returns the renamed automaton and
    the state-name mapping."""
    state_map = {state: f"{prefix}{state}" for state in aut.states}
    header_map = {header: f"{prefix}{header}" for header in aut.headers}
    headers = {header_map[h]: size for h, size in aut.headers.items()}
    states: Dict[str, State] = {}
    for state in aut.states.values():
        ops = []
        for op in state.ops:
            if isinstance(op, Extract):
                ops.append(Extract(header_map[op.header]))
            elif isinstance(op, Assign):
                ops.append(Assign(header_map[op.header], rename_expr(op.expr, header_map)))
            else:
                raise TypeError(f"unknown operation {op!r}")
        states[state_map[state.name]] = State(
            state_map[state.name],
            tuple(ops),
            rename_transition(state.transition, state_map, header_map),
        )
    renamed = P4Automaton(name or f"{prefix}{aut.name}", headers, states)
    return renamed, state_map


@dataclass(frozen=True)
class DisjointSum:
    """The disjoint sum of two automata, with the original-to-renamed maps."""

    automaton: P4Automaton
    left_states: Dict[str, str]
    right_states: Dict[str, str]


def disjoint_sum(left: P4Automaton, right: P4Automaton, check: bool = True) -> DisjointSum:
    """Combine two automata into one, renaming apart states and headers."""
    renamed_left, left_map = rename_automaton(left, "L_")
    renamed_right, right_map = rename_automaton(right, "R_")
    headers = dict(renamed_left.headers)
    headers.update(renamed_right.headers)
    states = dict(renamed_left.states)
    states.update(renamed_right.states)
    combined = P4Automaton(f"{left.name}+{right.name}", headers, states)
    if check:
        check_automaton(combined)
    return DisjointSum(combined, left_map, right_map)
