"""Concrete semantics of P4 automata (Definitions 3.1–3.6).

The dynamics of a P4A are defined in terms of a deterministic automaton over
*configurations* ``⟨q, s, w⟩`` where ``q`` is a state, ``s`` a store mapping
headers to bitvectors, and ``w`` a buffer of bits not yet consumed by the
current state's operation block.  The step function reads one bit at a time;
once the buffer holds exactly ``||op(q)||`` bits the operation block executes
and the transition block selects the next state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .bitvec import EMPTY, Bits
from .errors import P4ASemanticsError
from .syntax import (
    ACCEPT,
    REJECT,
    Assign,
    BVLit,
    Concat,
    ExactPattern,
    Expr,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Pattern,
    Select,
    Slice,
    State,
    Transition,
    WildcardPattern,
)

Store = Dict[str, Bits]


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


def initial_store(aut: P4Automaton, fill: int = 0) -> Store:
    """A store with every header set to all-``fill`` bits.

    Initial header values are unspecified in P4; Leapfrog treats them as part
    of the input, so verification is quantified over all initial stores.  This
    helper is used by the simulator and tests.
    """
    bit = "1" if fill else "0"
    return {name: Bits(bit * size) for name, size in aut.headers.items()}


def store_update(store: Store, header: str, value: Bits) -> Store:
    """Functional store update ``s[v/h]`` (Definition 3.2)."""
    updated = dict(store)
    updated[header] = value
    return updated


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def eval_expr(expr: Expr, store: Mapping[str, Bits]) -> Bits:
    """Expression semantics ⟦e⟧E (Definition 3.1)."""
    if isinstance(expr, HeaderRef):
        try:
            return store[expr.name]
        except KeyError:
            raise P4ASemanticsError(f"header {expr.name!r} is not in the store") from None
    if isinstance(expr, BVLit):
        return expr.value
    if isinstance(expr, Slice):
        return eval_expr(expr.expr, store).slice(expr.lo, expr.hi)
    if isinstance(expr, Concat):
        return eval_expr(expr.left, store).concat(eval_expr(expr.right, store))
    raise P4ASemanticsError(f"unknown expression form: {expr!r}")


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


def op_bits(aut: P4Automaton, ops: Iterable) -> int:
    """``||op||``: the number of bits consumed by an operation block."""
    return sum(aut.header_size(op.header) for op in ops if isinstance(op, Extract))


def exec_ops(aut: P4Automaton, state: State, store: Store, data: Bits) -> Store:
    """Execute the operation block of ``state`` on ``data`` (⟦op⟧O).

    ``data`` must contain exactly ``||op(state)||`` bits; the resulting store is
    returned and the packet data is fully consumed.
    """
    expected = aut.op_size(state.name)
    if data.width != expected:
        raise P4ASemanticsError(
            f"state {state.name!r} expects {expected} bits, got {data.width}"
        )
    current = dict(store)
    position = 0
    for op in state.ops:
        if isinstance(op, Extract):
            size = aut.header_size(op.header)
            current[op.header] = data.slice(position, position + size - 1) if size else EMPTY
            position += size
        elif isinstance(op, Assign):
            value = eval_expr(op.expr, current)
            if value.width != aut.header_size(op.header):
                raise P4ASemanticsError(
                    f"assignment to {op.header!r} produced {value.width} bits, "
                    f"expected {aut.header_size(op.header)}"
                )
            current[op.header] = value
        else:
            raise P4ASemanticsError(f"unknown operation {op!r}")
    return current


# ---------------------------------------------------------------------------
# Patterns and transitions
# ---------------------------------------------------------------------------


def pattern_matches(pattern: Pattern, value: Bits) -> bool:
    """Pattern semantics ⟦pat⟧P (Definition 3.3)."""
    if isinstance(pattern, WildcardPattern):
        return True
    if isinstance(pattern, ExactPattern):
        return pattern.value == value
    raise P4ASemanticsError(f"unknown pattern {pattern!r}")


def eval_transition(transition: Transition, store: Mapping[str, Bits]) -> str:
    """Transition semantics ⟦tz⟧T (Definition 3.3).

    ``select`` takes the first case whose patterns all match; if no case
    matches the result is ``reject``.
    """
    if isinstance(transition, Goto):
        return transition.target
    if isinstance(transition, Select):
        values = [eval_expr(expr, store) for expr in transition.exprs]
        for case in transition.cases:
            if all(pattern_matches(p, v) for p, v in zip(case.patterns, values)):
                return case.target
        return REJECT
    raise P4ASemanticsError(f"unknown transition {transition!r}")


# ---------------------------------------------------------------------------
# Configurations and dynamics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Configuration:
    """A configuration ``⟨q, s, w⟩`` (Definition 3.4).

    Stores are kept as a sorted tuple of (header, bits) pairs so configurations
    are hashable, which the explicit-state baseline relies on.
    """

    state: str
    store: Tuple[Tuple[str, Bits], ...]
    buffer: Bits

    @staticmethod
    def make(state: str, store: Mapping[str, Bits], buffer: Bits = EMPTY) -> "Configuration":
        return Configuration(state, tuple(sorted(store.items())), buffer)

    def store_dict(self) -> Store:
        return dict(self.store)

    def is_accepting(self) -> bool:
        return self.state == ACCEPT and self.buffer.width == 0

    def __str__(self) -> str:
        fields = ", ".join(f"{h}={v}" for h, v in self.store)
        return f"⟨{self.state}, {{{fields}}}, {self.buffer}⟩"


def initial_configuration(aut: P4Automaton, state: str, store: Optional[Store] = None) -> Configuration:
    if store is None:
        store = initial_store(aut)
    return Configuration.make(state, store, EMPTY)


def step(aut: P4Automaton, config: Configuration, bit: int) -> Configuration:
    """The one-bit step function δ (Definition 3.5)."""
    if bit not in (0, 1):
        raise P4ASemanticsError(f"invalid bit {bit!r}")
    if config.state in (ACCEPT, REJECT):
        # Accepting configurations must not consume more input: one more bit
        # sends them to reject, where they stay.
        return Configuration(REJECT, config.store, EMPTY)
    state = aut.state(config.state)
    buffer = config.buffer.concat(Bits("1" if bit else "0"))
    needed = aut.op_size(config.state)
    if buffer.width < needed:
        return Configuration(config.state, config.store, buffer)
    store = exec_ops(aut, state, config.store_dict(), buffer)
    next_state = eval_transition(state.transition, store)
    return Configuration.make(next_state, store, EMPTY)


def multi_step(aut: P4Automaton, config: Configuration, packet: Bits) -> Configuration:
    """The lifted step function δ* (Definition 3.6)."""
    current = config
    for bit in packet:
        current = step(aut, current, bit)
    return current


def accepts(aut: P4Automaton, state: str, packet: Bits, store: Optional[Store] = None) -> bool:
    """Language membership: does ``packet`` drive ``state`` to acceptance?"""
    config = initial_configuration(aut, state, store)
    return multi_step(aut, config, packet).is_accepting()


def run_trace(
    aut: P4Automaton, state: str, packet: Bits, store: Optional[Store] = None
) -> Iterator[Configuration]:
    """Yield every configuration along the run of ``packet`` (for debugging)."""
    config = initial_configuration(aut, state, store)
    yield config
    for bit in packet:
        config = step(aut, config, bit)
        yield config


def parse_packet(
    aut: P4Automaton, state: str, packet: Bits, store: Optional[Store] = None
) -> Tuple[bool, Store]:
    """Run the parser and return (accepted, final store).

    This is the "user level" view of a parser: whether the packet is accepted
    and the headers it populated.
    """
    final = multi_step(aut, initial_configuration(aut, state, store), packet)
    return final.is_accepting(), final.store_dict()


def language_sample(
    aut: P4Automaton, state: str, max_length: int, store: Optional[Store] = None
) -> Iterator[Bits]:
    """Enumerate all accepted packets up to ``max_length`` bits (testing helper).

    Exponential in ``max_length``; only usable on tiny automata.  For anything
    larger, sample the language instead:
    :func:`repro.oracle.sampler.seeded_language_sample` draws distinct accepted
    packets from seeded structure-aware walks at any scale.
    """
    from itertools import product

    for length in range(max_length + 1):
        for combo in product("01", repeat=length):
            packet = Bits("".join(combo))
            if accepts(aut, state, packet, store):
                yield packet
