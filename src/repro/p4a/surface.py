"""Concrete surface syntax for P4 automata.

This module implements a lexer and recursive-descent parser for the textual
parser language used in the paper's figures, e.g.::

    header mpls : 32;
    header udp : 64;

    q1 {
      extract(mpls, 32);
      select(mpls[23:23]) {
        0 => q1
        1 => q2
      }
    }

    q2 {
      extract(udp, 64);
      goto accept
    }

Header sizes may be declared up front with ``header name : width;`` or inline
as the second argument of ``extract``.  Assignments are written ``h := e``.
Patterns are binary literals (``0``, ``1011``, ``0b1011``), hexadecimal
literals (``0x8847``), or the wildcard ``_``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .bitvec import Bits
from .errors import P4ASyntaxError
from .syntax import (
    Assign,
    BVLit,
    Concat,
    ExactPattern,
    Expr,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Pattern,
    Select,
    SelectCase,
    Slice,
    State,
    WILDCARD,
)
from .typing import check_automaton

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_KEYWORDS = {"header", "extract", "select", "goto", "automaton"}
_PUNCTUATION = {
    "{": "LBRACE",
    "}": "RBRACE",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ";": "SEMI",
    ",": "COMMA",
    ":": "COLON",
    "_": "WILDCARD",
}


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i) or source.startswith("#", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("=>", i) or source.startswith("⇒", i):
            width = 2 if source.startswith("=>", i) else 1
            tokens.append(Token("ARROW", source[i : i + width], line, column))
            i += width
            column += width
            continue
        if source.startswith(":=", i) or source.startswith("←", i):
            width = 2 if source.startswith(":=", i) else 1
            tokens.append(Token("ASSIGN", source[i : i + width], line, column))
            i += width
            column += width
            continue
        if source.startswith("++", i):
            tokens.append(Token("CONCAT", "++", line, column))
            i += 2
            column += 2
            continue
        if ch in _PUNCTUATION and not (
            ch == "_" and i + 1 < n and (source[i + 1].isalnum() or source[i + 1] == "_")
        ):
            # A lone `_` is the wildcard pattern; `_`-led names (`__dead0`,
            # produced by the builders) are ordinary identifiers, so their
            # pretty() rendering parses back.
            tokens.append(Token(_PUNCTUATION[ch], ch, line, column))
            i += 1
            column += 1
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                tokens.append(Token("HEX", source[start:i], line, column))
            elif source.startswith("0b", i) or source.startswith("0B", i):
                i += 2
                while i < n and source[i] in "01":
                    i += 1
                tokens.append(Token("BIN", source[start:i], line, column))
            else:
                while i < n and source[i].isdigit():
                    i += 1
                tokens.append(Token("NUM", source[start:i], line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            if text == "_":
                tokens.append(Token("WILDCARD", text, line, column))
            elif text in _KEYWORDS:
                tokens.append(Token(text.upper(), text, line, column))
            else:
                tokens.append(Token("IDENT", text, line, column))
            column += i - start
            continue
        raise P4ASyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise P4ASyntaxError(
                f"expected {kind}, found {token.kind} ({token.text!r})", token.line, token.column
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    # -- grammar --------------------------------------------------------------

    def parse_automaton(self, name: str) -> P4Automaton:
        headers: Dict[str, int] = {}
        states: Dict[str, State] = {}
        if self._accept("AUTOMATON"):
            name = self._expect("IDENT").text
            self._accept("SEMI")
        while not self._check("EOF"):
            if self._check("HEADER"):
                header_name, size = self._parse_header_decl()
                headers[header_name] = size
            else:
                state = self._parse_state(headers)
                states[state.name] = state
        return P4Automaton(name, headers, states)

    def _parse_header_decl(self) -> Tuple[str, int]:
        self._expect("HEADER")
        name = self._expect("IDENT").text
        self._expect("COLON")
        size = int(self._expect("NUM").text)
        self._accept("SEMI")
        return name, size

    def _parse_state(self, headers: Dict[str, int]) -> State:
        name = self._expect("IDENT").text
        self._expect("LBRACE")
        ops = []
        transition = None
        while not self._check("RBRACE"):
            if self._check("GOTO"):
                self._advance()
                target = self._parse_state_name()
                transition = Goto(target)
                self._accept("SEMI")
            elif self._check("SELECT"):
                transition = self._parse_select()
                self._accept("SEMI")
            elif self._check("EXTRACT"):
                ops.append(self._parse_extract(headers))
                self._accept("SEMI")
            else:
                ops.append(self._parse_assign())
                self._accept("SEMI")
        self._expect("RBRACE")
        if transition is None:
            token = self._peek()
            raise P4ASyntaxError(f"state {name!r} has no transition", token.line, token.column)
        return State(name, tuple(ops), transition)

    def _parse_state_name(self) -> str:
        token = self._peek()
        if token.kind == "IDENT":
            return self._advance().text
        raise P4ASyntaxError(f"expected a state name, found {token.text!r}", token.line, token.column)

    def _parse_extract(self, headers: Dict[str, int]) -> Extract:
        self._expect("EXTRACT")
        self._expect("LPAREN")
        header = self._expect("IDENT").text
        if self._accept("COMMA"):
            size = int(self._expect("NUM").text)
            existing = headers.get(header)
            if existing is not None and existing != size:
                token = self._peek()
                raise P4ASyntaxError(
                    f"header {header!r} declared with conflicting sizes {existing} and {size}",
                    token.line,
                    token.column,
                )
            headers[header] = size
        self._expect("RPAREN")
        return Extract(header)

    def _parse_assign(self) -> Assign:
        header = self._expect("IDENT").text
        self._expect("ASSIGN")
        expr = self._parse_expr()
        return Assign(header, expr)

    def _parse_select(self) -> Select:
        self._expect("SELECT")
        self._expect("LPAREN")
        exprs = [self._parse_expr()]
        while self._accept("COMMA"):
            exprs.append(self._parse_expr())
        self._expect("RPAREN")
        self._expect("LBRACE")
        cases = []
        while not self._check("RBRACE"):
            cases.append(self._parse_case(len(exprs)))
        self._expect("RBRACE")
        return Select(tuple(exprs), tuple(cases))

    def _parse_case(self, arity: int) -> SelectCase:
        if self._accept("LPAREN"):
            patterns = [self._parse_pattern()]
            while self._accept("COMMA"):
                patterns.append(self._parse_pattern())
            self._expect("RPAREN")
        else:
            patterns = [self._parse_pattern()]
        self._expect("ARROW")
        self._accept("GOTO")
        target = self._parse_state_name()
        token = self._peek()
        if len(patterns) != arity:
            raise P4ASyntaxError(
                f"case has {len(patterns)} patterns but select examines {arity} expressions",
                token.line,
                token.column,
            )
        return SelectCase(tuple(patterns), target)

    def _parse_pattern(self) -> Pattern:
        token = self._peek()
        if token.kind == "WILDCARD":
            self._advance()
            return WILDCARD
        return ExactPattern(self._parse_bits_literal())

    def _parse_bits_literal(self) -> Bits:
        token = self._advance()
        if token.kind == "HEX":
            digits = token.text[2:]
            return Bits.from_int(int(digits, 16), 4 * len(digits))
        if token.kind == "BIN":
            return Bits(token.text[2:])
        if token.kind == "NUM":
            if set(token.text) <= {"0", "1"}:
                return Bits(token.text)
            raise P4ASyntaxError(
                f"decimal literal {token.text!r} is ambiguous; use 0b or 0x", token.line, token.column
            )
        raise P4ASyntaxError(f"expected a bit pattern, found {token.text!r}", token.line, token.column)

    def _parse_expr(self) -> Expr:
        expr = self._parse_atom()
        while self._check("CONCAT"):
            self._advance()
            expr = Concat(expr, self._parse_atom())
        return expr

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token.kind in ("HEX", "BIN", "NUM"):
            return BVLit(self._parse_bits_literal())
        if token.kind == "LPAREN":
            self._advance()
            expr = self._parse_expr()
            self._expect("RPAREN")
            return expr
        name = self._expect("IDENT").text
        expr: Expr = HeaderRef(name)
        while self._check("LBRACKET"):
            self._advance()
            lo = int(self._expect("NUM").text)
            self._expect("COLON")
            hi = int(self._expect("NUM").text)
            self._expect("RBRACKET")
            expr = Slice(expr, lo, hi)
        return expr


def parse_automaton(source: str, name: str = "automaton", check: bool = True) -> P4Automaton:
    """Parse a P4 automaton from its concrete surface syntax."""
    parser = _Parser(tokenize(source))
    aut = parser.parse_automaton(name)
    if check:
        check_automaton(aut)
    return aut
