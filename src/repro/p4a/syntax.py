"""Abstract syntax for P4 automata (Figure 2 of the paper).

A P4 automaton (P4A) is a finite state machine whose states contain an
*operation block* (a sequence of ``extract`` and assignment operations) and a
*transition block* (either ``goto`` or ``select``).  Headers are fixed-width
bitvector variables shared between states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple, Union

from .bitvec import Bits
from .errors import P4ATypeError

# Names of the two distinguished final states.
ACCEPT = "accept"
REJECT = "reject"
FINAL_STATES = (ACCEPT, REJECT)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of header expressions (``e`` in Figure 2)."""

    __slots__ = ()


@dataclass(frozen=True)
class HeaderRef(Expr):
    """A reference to a header variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BVLit(Expr):
    """A bitvector literal."""

    value: Bits

    def __str__(self) -> str:
        return f"0b{self.value.to_bitstring()}" if self.value.width else "ε"


@dataclass(frozen=True)
class Slice(Expr):
    """The inclusive, clamped slice ``e[n1:n2]``."""

    expr: Expr
    lo: int
    hi: int

    def __str__(self) -> str:
        return f"{self.expr}[{self.lo}:{self.hi}]"


@dataclass(frozen=True)
class Concat(Expr):
    """Concatenation ``e1 ++ e2``."""

    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} ++ {self.right})"


def concat_all(exprs: Sequence[Expr]) -> Expr:
    """Right-associated concatenation of a non-empty sequence of expressions."""
    if not exprs:
        raise ValueError("concat_all requires at least one expression")
    result = exprs[-1]
    for expr in reversed(exprs[:-1]):
        result = Concat(expr, result)
    return result


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class Pattern:
    """Base class of select patterns."""

    __slots__ = ()


@dataclass(frozen=True)
class ExactPattern(Pattern):
    """An exact bitvector match."""

    value: Bits

    def __str__(self) -> str:
        return f"0b{self.value.to_bitstring()}"


@dataclass(frozen=True)
class WildcardPattern(Pattern):
    """The wildcard pattern ``_`` which matches any bitvector."""

    def __str__(self) -> str:
        return "_"


WILDCARD = WildcardPattern()


# ---------------------------------------------------------------------------
# Transitions
# ---------------------------------------------------------------------------


class Transition:
    """Base class of transition blocks (``tz`` in Figure 2)."""

    __slots__ = ()


@dataclass(frozen=True)
class Goto(Transition):
    """An unconditional transition."""

    target: str

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True)
class SelectCase:
    """One arm of a ``select``: a tuple of patterns and a target state."""

    patterns: Tuple[Pattern, ...]
    target: str

    def __str__(self) -> str:
        pats = ", ".join(str(p) for p in self.patterns)
        return f"({pats}) => {self.target}"


@dataclass(frozen=True)
class Select(Transition):
    """A conditional transition branching on the values of expressions.

    The first case whose patterns all match is taken.  If no case matches the
    automaton transitions to ``reject`` (per Definition 3.3, the empty select
    rejects).
    """

    exprs: Tuple[Expr, ...]
    cases: Tuple[SelectCase, ...]

    def __str__(self) -> str:
        exprs = ", ".join(str(e) for e in self.exprs)
        cases = " ".join(str(c) for c in self.cases)
        return f"select({exprs}) {{ {cases} }}"


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


class Op:
    """Base class of primitive operations (``op`` in Figure 2)."""

    __slots__ = ()


@dataclass(frozen=True)
class Extract(Op):
    """``extract(h)``: move the next ``sz(h)`` bits of the packet into ``h``."""

    header: str

    def __str__(self) -> str:
        return f"extract({self.header})"


@dataclass(frozen=True)
class Assign(Op):
    """``h := e``: overwrite header ``h`` with the value of ``e``."""

    header: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.header} := {self.expr}"


# ---------------------------------------------------------------------------
# States and automata
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class State:
    """A named state with an operation block and a transition block."""

    name: str
    ops: Tuple[Op, ...]
    transition: Transition

    def __str__(self) -> str:
        body = "; ".join(str(op) for op in self.ops)
        return f"{self.name} {{ {body}; {self.transition} }}"


@dataclass
class P4Automaton:
    """A P4 automaton: header declarations plus a set of named states.

    ``headers`` maps each header name to its size in bits (``sz`` in the
    paper).  ``states`` maps state names to :class:`State` records.  The
    distinguished names ``accept`` and ``reject`` are implicit and may not be
    redefined.
    """

    name: str
    headers: Dict[str, int]
    states: Dict[str, State] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for final in FINAL_STATES:
            if final in self.states:
                raise P4ATypeError(f"state name {final!r} is reserved")
        for header, size in self.headers.items():
            if size <= 0:
                raise P4ATypeError(f"header {header!r} must have positive size, got {size}")

    # -- convenience accessors ------------------------------------------------

    def state(self, name: str) -> State:
        try:
            return self.states[name]
        except KeyError:
            raise P4ATypeError(f"automaton {self.name!r} has no state {name!r}") from None

    def state_names(self) -> Tuple[str, ...]:
        return tuple(self.states)

    def header_size(self, header: str) -> int:
        try:
            return self.headers[header]
        except KeyError:
            raise P4ATypeError(f"automaton {self.name!r} has no header {header!r}") from None

    def is_final(self, state: str) -> bool:
        return state in FINAL_STATES

    def op_size(self, state: str) -> int:
        """``||op(q)||``: the number of bits consumed in state ``q``."""
        return sum(self.headers[op.header] for op in self.state(state).ops if isinstance(op, Extract))

    def total_header_bits(self) -> int:
        """Total number of store bits (the "Total" column of Table 2 counts this
        over both automata in a comparison)."""
        return sum(self.headers.values())

    def branched_bits(self) -> int:
        """Number of bits examined by ``select`` statements (Table 2, "Branched")."""
        from .typing import expr_width  # local import to avoid a cycle

        total = 0
        for state in self.states.values():
            if isinstance(state.transition, Select):
                for expr in state.transition.exprs:
                    total += expr_width(self, expr)
        return total

    def transition_targets(self, state: str) -> Tuple[str, ...]:
        """All states that ``state`` can transition to (including implicit reject)."""
        transition = self.state(state).transition
        if isinstance(transition, Goto):
            return (transition.target,)
        targets = [case.target for case in transition.cases]
        # A select may fall through to reject when no case matches.
        if not any(
            all(isinstance(p, WildcardPattern) for p in case.patterns) for case in transition.cases
        ):
            targets.append(REJECT)
        seen = []
        for target in targets:
            if target not in seen:
                seen.append(target)
        return tuple(seen)

    def __str__(self) -> str:
        lines = [f"automaton {self.name}"]
        for header, size in self.headers.items():
            lines.append(f"  header {header} : {size}")
        for state in self.states.values():
            lines.append(f"  {state}")
        return "\n".join(lines)


StateLike = Union[str, State]
HeaderSizes = Mapping[str, int]
