"""Typing judgements for P4 automata.

The paper elides its type system (⊢E, ⊢O, ⊢T, ⊢A) but relies on it to make the
semantics total.  This module implements those judgements:

* ``expr_width`` computes the static width of an expression (⊢E e : n).
* ``check_ops`` verifies an operation block is well-formed (⊢O): assignments
  match the destination header's width and every state extracts at least one
  bit, which guarantees progress.
* ``check_transition`` verifies patterns match the widths of the selected
  expressions and all targets exist (⊢T).
* ``check_automaton`` combines the above into ⊢A.
"""

from __future__ import annotations

from typing import List

from .errors import P4ATypeError
from .syntax import (
    FINAL_STATES,
    Assign,
    BVLit,
    Concat,
    ExactPattern,
    Expr,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Select,
    Slice,
    State,
    Transition,
    WildcardPattern,
)


def expr_width(aut: P4Automaton, expr: Expr) -> int:
    """The static bit width of ``expr`` (the ⊢E judgement)."""
    if isinstance(expr, HeaderRef):
        return aut.header_size(expr.name)
    if isinstance(expr, BVLit):
        return expr.value.width
    if isinstance(expr, Slice):
        inner = expr_width(aut, expr.expr)
        if inner == 0:
            raise P4ATypeError(f"cannot slice the zero-width expression {expr.expr}")
        if expr.lo < 0 or expr.hi < 0:
            raise P4ATypeError(f"negative slice bounds in {expr}")
        if expr.lo > expr.hi:
            raise P4ATypeError(f"empty slice {expr}: lower bound exceeds upper bound")
        lo = min(expr.lo, inner - 1)
        hi = min(expr.hi, inner - 1)
        return hi - lo + 1
    if isinstance(expr, Concat):
        return expr_width(aut, expr.left) + expr_width(aut, expr.right)
    raise P4ATypeError(f"unknown expression form: {expr!r}")


def check_expr(aut: P4Automaton, expr: Expr) -> int:
    """Check an expression and return its width.  Raises :class:`P4ATypeError`."""
    return expr_width(aut, expr)


def check_ops(aut: P4Automaton, state: State) -> None:
    """Check the operation block of ``state`` (the ⊢O judgement)."""
    extracted_bits = 0
    for op in state.ops:
        if isinstance(op, Extract):
            extracted_bits += aut.header_size(op.header)
        elif isinstance(op, Assign):
            dest_width = aut.header_size(op.header)
            src_width = check_expr(aut, op.expr)
            if dest_width != src_width:
                raise P4ATypeError(
                    f"state {state.name!r}: assignment to {op.header!r} has width "
                    f"{src_width}, expected {dest_width}"
                )
        else:
            raise P4ATypeError(f"state {state.name!r}: unknown operation {op!r}")
    if extracted_bits == 0:
        raise P4ATypeError(
            f"state {state.name!r} extracts no bits; every state must make progress"
        )


def check_transition(aut: P4Automaton, state: State) -> None:
    """Check the transition block of ``state`` (the ⊢T judgement)."""
    transition: Transition = state.transition
    valid_targets = set(aut.states) | set(FINAL_STATES)
    if isinstance(transition, Goto):
        if transition.target not in valid_targets:
            raise P4ATypeError(
                f"state {state.name!r}: goto target {transition.target!r} does not exist"
            )
        return
    if not isinstance(transition, Select):
        raise P4ATypeError(f"state {state.name!r}: unknown transition {transition!r}")
    widths = [check_expr(aut, expr) for expr in transition.exprs]
    for case in transition.cases:
        if case.target not in valid_targets:
            raise P4ATypeError(
                f"state {state.name!r}: select target {case.target!r} does not exist"
            )
        if len(case.patterns) != len(transition.exprs):
            raise P4ATypeError(
                f"state {state.name!r}: case {case} has {len(case.patterns)} patterns "
                f"but the select examines {len(transition.exprs)} expressions"
            )
        for pattern, width in zip(case.patterns, widths):
            if isinstance(pattern, WildcardPattern):
                continue
            if isinstance(pattern, ExactPattern):
                if pattern.value.width != width:
                    raise P4ATypeError(
                        f"state {state.name!r}: pattern {pattern} has width "
                        f"{pattern.value.width}, expected {width}"
                    )
            else:
                raise P4ATypeError(f"state {state.name!r}: unknown pattern {pattern!r}")


def check_state(aut: P4Automaton, state: State) -> None:
    check_ops(aut, state)
    check_transition(aut, state)


def check_automaton(aut: P4Automaton) -> None:
    """The top-level ⊢A judgement.

    Raises :class:`P4ATypeError` if the automaton is ill-formed; a well-typed
    automaton has a total, terminating step function.
    """
    if not aut.states:
        raise P4ATypeError(f"automaton {aut.name!r} has no states")
    for final in FINAL_STATES:
        if final in aut.headers:
            raise P4ATypeError(f"header name {final!r} is reserved")
    errors: List[str] = []
    for state in aut.states.values():
        try:
            check_state(aut, state)
        except P4ATypeError as exc:  # collect all errors for better diagnostics
            errors.append(str(exc))
    if errors:
        raise P4ATypeError("; ".join(errors))


def is_well_typed(aut: P4Automaton) -> bool:
    """Boolean version of :func:`check_automaton`."""
    try:
        check_automaton(aut)
    except P4ATypeError:
        return False
    return True
