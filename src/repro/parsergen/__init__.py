"""parser-gen substrate: parse graphs, hardware tables, compiler, back-translation."""

from .backtranslate import hardware_to_p4a
from .compiler import CompileError, ParserGenCompiler, compile_graph
from .hardware import (
    ACCEPT_STATE,
    REJECT_STATE,
    HardwareConfig,
    HardwareParser,
    TableEntry,
    simulate,
)
from .ir import (
    DONE,
    DROP,
    Edge,
    Field,
    HeaderFormat,
    Node,
    ParseGraph,
    edge,
    header,
    interpret,
    make_graph,
)
from .scenarios import SCENARIOS, scenario
from .to_p4a import graph_to_p4a

__all__ = [
    "ACCEPT_STATE",
    "CompileError",
    "DONE",
    "DROP",
    "Edge",
    "Field",
    "HardwareConfig",
    "HardwareParser",
    "HeaderFormat",
    "Node",
    "ParseGraph",
    "ParserGenCompiler",
    "REJECT_STATE",
    "SCENARIOS",
    "TableEntry",
    "compile_graph",
    "edge",
    "graph_to_p4a",
    "hardware_to_p4a",
    "header",
    "interpret",
    "make_graph",
    "scenario",
    "simulate",
]
