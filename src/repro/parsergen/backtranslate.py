"""Back-translation from hardware parser tables to P4 automata.

The translation-validation study (Section 7.2, Figure 8) runs the parser-gen
compiler, translates the resulting hardware table *back* into a P4 automaton
and asks Leapfrog whether it is equivalent to the original parser.  This module
performs that reverse translation automatically:

* every hardware state becomes a P4A state extracting its per-cycle window;
* the TCAM match becomes a ``select`` over the bit ranges that some entry
  masks, with per-entry exact patterns and wildcards (priority order is
  preserved);
* entries whose advance exceeds the state's minimum advance (the result of the
  compiler's state-merging optimization) route through auxiliary states that
  consume the extra bytes before continuing.

The paper performed parts of this translation by hand ("the reverse
translation is fuzzy"); automating it is possible here because the compiler in
:mod:`repro.parsergen.compiler` keeps lookup bytes inside the matching chunk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..p4a.bitvec import Bits
from ..p4a.syntax import (
    ACCEPT,
    REJECT,
    ExactPattern,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Select,
    SelectCase,
    Slice,
    State,
    WILDCARD,
)
from ..p4a.typing import check_automaton
from .hardware import ACCEPT_STATE, REJECT_STATE, HardwareParser, TableEntry


class BacktranslateError(Exception):
    """Raised when a table cannot be expressed as a P4 automaton."""


def _state_name(parser: HardwareParser, state: int) -> str:
    if state == ACCEPT_STATE:
        return ACCEPT
    if state == REJECT_STATE:
        return REJECT
    label = parser.state_names.get(state, f"s{state}")
    return f"hw_{label}".replace(".", "_").replace("#", "_")


def _mask_bit_ranges(entries: List[TableEntry], window_bytes: int) -> List[Tuple[int, int]]:
    """Maximal window-bit ranges on which every entry is all-masked or all-clear.

    Returned ranges are (start_bit, end_bit) inclusive, in window bit order
    (byte 0 bit 0 first), restricted to bits masked by at least one entry.
    """
    total_bits = 8 * window_bytes
    masked_by = []
    for bit in range(total_bits):
        byte, bit_in_byte = divmod(bit, 8)
        profile = tuple(
            bool(entry.match_mask[byte] & (1 << (7 - bit_in_byte))) for entry in entries
        )
        masked_by.append(profile)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for bit in range(1, total_bits + 1):
        if bit == total_bits or masked_by[bit] != masked_by[start]:
            if any(masked_by[start]):
                ranges.append((start, bit - 1))
            start = bit
    return ranges


def _entry_pattern(entry: TableEntry, bit_range: Tuple[int, int]):
    start, end = bit_range
    byte, bit_in_byte = divmod(start, 8)
    if not entry.match_mask[byte] & (1 << (7 - bit_in_byte)):
        return WILDCARD
    bits = []
    for bit in range(start, end + 1):
        byte, bit_in_byte = divmod(bit, 8)
        if not entry.match_mask[byte] & (1 << (7 - bit_in_byte)):
            raise BacktranslateError("entry masks only part of a match range")
        bits.append("1" if entry.match_value[byte] & (1 << (7 - bit_in_byte)) else "0")
    return ExactPattern(Bits("".join(bits)))


def hardware_to_p4a(parser: HardwareParser, name: Optional[str] = None) -> Tuple[P4Automaton, str]:
    """Translate a hardware table into a P4 automaton and return its start state."""
    parser.validate()
    headers: Dict[str, int] = {}
    states: Dict[str, State] = {}
    auxiliary: List[Tuple[str, int, str]] = []  # (state name, extra bytes, target)

    for state_id in parser.states():
        entries = parser.entries_for_state(state_id)
        if not entries:
            continue
        state_name = _state_name(parser, state_id)
        min_advance = min(entry.advance for entry in entries)
        if min_advance == 0:
            raise BacktranslateError(f"hardware state {state_id} does not make progress")
        window_header = f"win_{state_id}"
        headers[window_header] = 8 * min_advance

        # The entry lookup offsets tell us where the matched bits live relative
        # to the current position; they must fall inside the extracted window.
        lookup = parser.initial_lookup if state_id == parser.initial_state else None
        incoming = [e for e in parser.entries if e.next_state == state_id]
        lookups = {e.next_lookup for e in incoming}
        if state_id == parser.initial_state:
            lookups.add(parser.initial_lookup)
        if len(lookups) > 1:
            raise BacktranslateError(
                f"hardware state {state_id} is entered with inconsistent lookup windows"
            )
        lookup = next(iter(lookups)) if lookups else tuple([0] * parser.config.window_bytes)

        def window_bit_expr(bit_range: Tuple[int, int]):
            start, end = bit_range
            start_byte, start_bit = divmod(start, 8)
            end_byte, end_bit = divmod(end, 8)
            if lookup[start_byte] != lookup[end_byte] - (end_byte - start_byte):
                # Non-contiguous window bytes: fall back to per-byte handling by
                # requiring the range to stay within one byte.
                if start_byte != end_byte:
                    raise BacktranslateError(
                        "match range spans non-adjacent window bytes"
                    )
            packet_start = 8 * lookup[start_byte] + start_bit
            packet_end = 8 * lookup[end_byte] + end_bit
            if packet_end >= 8 * min_advance:
                raise BacktranslateError(
                    f"hardware state {state_id} matches bytes it does not consume"
                )
            return Slice(HeaderRef(window_header), packet_start, packet_end)

        has_match = any(any(entry.match_mask) for entry in entries)
        if not has_match:
            entry = entries[0]
            target = _exit_target(parser, entry, state_name, min_advance, auxiliary)
            states[state_name] = State(state_name, (Extract(window_header),), Goto(target))
            continue

        ranges = _mask_bit_ranges(entries, parser.config.window_bytes)
        exprs = tuple(window_bit_expr(r) for r in ranges)
        cases: List[SelectCase] = []
        for entry in entries:
            patterns = tuple(_entry_pattern(entry, r) for r in ranges)
            target = _exit_target(parser, entry, state_name, min_advance, auxiliary)
            cases.append(SelectCase(patterns, target))
        states[state_name] = State(
            state_name, (Extract(window_header),), Select(exprs, tuple(cases))
        )

    # Auxiliary states created for entries that advance further than the
    # state's extracted window (merged nodes).
    for aux_name, extra_bytes, target in auxiliary:
        header_name = f"win_{aux_name}"
        headers[header_name] = 8 * extra_bytes
        states[aux_name] = State(aux_name, (Extract(header_name),), Goto(target))

    automaton = P4Automaton(name or f"{parser.name}_p4a", headers, states)
    check_automaton(automaton)
    return automaton, _state_name(parser, parser.initial_state)


def _exit_target(
    parser: HardwareParser,
    entry: TableEntry,
    state_name: str,
    min_advance: int,
    auxiliary: List[Tuple[str, int, str]],
) -> str:
    """P4A target for ``entry``, inserting an auxiliary state when the entry
    advances further than the state's extracted window."""
    target = _state_name(parser, entry.next_state)
    extra = entry.advance - min_advance
    if extra == 0:
        return target
    aux_name = f"{state_name}_adv{entry.advance}_{target}"
    if not any(existing[0] == aux_name for existing in auxiliary):
        auxiliary.append((aux_name, extra, target))
    return aux_name
