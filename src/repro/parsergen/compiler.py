"""Compiler from parse graphs to hardware parser tables.

This reproduces the role of the third-party ``parser-gen`` compiler in the
translation-validation case study: it lowers a parse graph onto the TCAM-driven
engine of :mod:`repro.parsergen.hardware`, respecting the hardware limits
(window size, maximum advance per cycle, lookup reach) and applying two of the
optimizations the paper calls out:

* **state splitting** — headers longer than the per-cycle advance limit are
  carved into a matching chunk followed by continuation chunks;
* **state merging** — a header with no lookup fields is folded into its
  predecessors' table entries whenever the combined advance fits in one cycle,
  eliminating its hardware state entirely.

The output is deliberately *not* structurally identical to the input graph —
that is what makes validating it against the original parser interesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .hardware import ACCEPT_STATE, REJECT_STATE, HardwareConfig, HardwareParser, TableEntry
from .ir import DONE, DROP, Edge, Node, ParseGraph


class CompileError(Exception):
    """Raised when a graph cannot be mapped onto the hardware."""


@dataclass
class _NodeLayout:
    """Placement information for one graph node."""

    node: Node
    byte_length: int
    match_advance: int            # bytes consumed by the matching chunk
    continuation_lengths: List[int]  # bytes consumed by each continuation chunk
    lookup_bytes: List[int]       # byte offsets (within the header) in the window
    merged: bool = False          # folded into predecessors; no own state


def _lookup_bytes(node: Node) -> List[int]:
    touched: Set[int] = set()
    for field_name in node.lookup_fields:
        offset = node.format.field_offset(field_name)
        width = node.format.field(field_name).width
        for bit in range(offset, offset + width):
            touched.add(bit // 8)
    return sorted(touched)


def _field_match_bytes(node: Node, edge: Edge, lookup_bytes: List[int], window_bytes: int):
    """Per-window-byte (mask, value) for one edge."""
    mask = [0] * window_bytes
    value = [0] * window_bytes
    byte_position = {byte: index for index, byte in enumerate(lookup_bytes)}
    for field_name, field_value in edge.values:
        offset = node.format.field_offset(field_name)
        width = node.format.field(field_name).width
        for bit_index in range(width):
            absolute_bit = offset + bit_index
            byte = absolute_bit // 8
            bit_in_byte = absolute_bit % 8
            window_index = byte_position[byte]
            bit_value = (field_value >> (width - 1 - bit_index)) & 1
            mask[window_index] |= 1 << (7 - bit_in_byte)
            value[window_index] |= bit_value << (7 - bit_in_byte)
    return tuple(mask), tuple(value)


class ParserGenCompiler:
    """Compiles one parse graph onto one hardware configuration."""

    def __init__(
        self,
        graph: ParseGraph,
        config: Optional[HardwareConfig] = None,
        merge_states: bool = True,
    ) -> None:
        self.graph = graph
        self.config = config or HardwareConfig()
        self.config.validate()
        self.merge_states = merge_states
        self._layouts: Dict[str, _NodeLayout] = {}
        self._state_ids: Dict[str, int] = {}
        self._next_state_id = 0

    # ------------------------------------------------------------------

    def compile(self) -> HardwareParser:
        reachable = sorted(self.graph.reachable_nodes())
        for name in reachable:
            self._layouts[name] = self._layout_node(self.graph.nodes[name])
        if self.merge_states:
            self._mark_merged(reachable)
        for name in reachable:
            if not self._layouts[name].merged:
                self._allocate_states(name)
        entries: List[TableEntry] = []
        for name in reachable:
            if not self._layouts[name].merged:
                entries.extend(self._entries_for_node(name))
        parser = HardwareParser(
            name=f"{self.graph.name}_hw",
            config=self.config,
            entries=entries,
            initial_state=self._state_ids[self.graph.root],
            initial_lookup=self._window_offsets(self.graph.root),
            state_names={v: k for k, v in self._state_ids.items()},
        )
        parser.validate()
        return parser

    # ------------------------------------------------------------------

    def _layout_node(self, node: Node) -> _NodeLayout:
        byte_length = node.format.byte_length
        lookup_bytes = _lookup_bytes(node)
        if len(lookup_bytes) > self.config.window_bytes:
            raise CompileError(
                f"node {node.name!r} examines {len(lookup_bytes)} bytes but the window "
                f"holds only {self.config.window_bytes}"
            )
        match_advance = min(byte_length, self.config.max_advance_bytes)
        if lookup_bytes and lookup_bytes[-1] >= match_advance:
            raise CompileError(
                f"node {node.name!r}: lookup byte {lookup_bytes[-1]} lies beyond the "
                f"matching chunk of {match_advance} bytes"
            )
        if lookup_bytes and lookup_bytes[-1] > self.config.max_lookup_offset:
            raise CompileError(
                f"node {node.name!r}: lookup byte {lookup_bytes[-1]} exceeds the hardware "
                f"lookup reach of {self.config.max_lookup_offset}"
            )
        remaining = byte_length - match_advance
        continuation: List[int] = []
        while remaining > 0:
            chunk = min(remaining, self.config.max_advance_bytes)
            continuation.append(chunk)
            remaining -= chunk
        return _NodeLayout(node, byte_length, match_advance, continuation, lookup_bytes)

    def _mark_merged(self, reachable: Sequence[str]) -> None:
        """Fold lookup-free nodes into their predecessors when the advance fits."""
        predecessors: Dict[str, List[str]] = {name: [] for name in reachable}
        for name in reachable:
            node = self.graph.nodes[name]
            for target in [e.target for e in node.edges] + [node.default]:
                if target in predecessors:
                    predecessors[target].append(name)
        def is_candidate(name: str) -> bool:
            layout = self._layouts[name]
            node = layout.node
            return (
                not node.lookup_fields
                and not layout.continuation_lengths
                and name != self.graph.root
                and node.default not in (DONE, DROP)
            )

        candidates = {name for name in reachable if is_candidate(name)}
        for name in reachable:
            if name not in candidates:
                continue
            layout = self._layouts[name]
            node = layout.node
            target = node.default
            if target in candidates:
                # Avoid merge chains so the per-cycle advance bound stays easy
                # to check; the target keeps its own hardware state.
                continue
            preds = predecessors[name]
            if not preds:
                continue
            # Every predecessor must be able to absorb this node's bytes into
            # the advance of its final chunk.  (The successor's lookup window is
            # fetched after the combined advance, so its offsets are unaffected.)
            absorbable = True
            for pred in preds:
                pred_layout = self._layouts[pred]
                if pred_layout.merged:
                    absorbable = False
                    break
                final_chunk = (
                    pred_layout.continuation_lengths[-1]
                    if pred_layout.continuation_lengths
                    else pred_layout.match_advance
                )
                if final_chunk + layout.byte_length > self.config.max_advance_bytes:
                    absorbable = False
                    break
            if absorbable:
                layout.merged = True

    def _allocate_states(self, name: str) -> None:
        layout = self._layouts[name]
        self._state_ids[name] = self._fresh_state(name)
        chain = 0
        for targets in self._successor_groups(layout.node):
            for index in range(len(layout.continuation_lengths)):
                self._state_ids[f"{name}#cont{chain}_{index}"] = self._fresh_state(
                    f"{name}.cont{chain}.{index}"
                )
            chain += 1

    def _fresh_state(self, label: str) -> int:
        if self._next_state_id >= self.config.max_states:
            raise CompileError("the parse graph needs more states than the hardware provides")
        state_id = self._next_state_id
        self._next_state_id += 1
        return state_id

    # ------------------------------------------------------------------

    def _successor_groups(self, node: Node) -> List[str]:
        """Distinct successor targets of a node, in edge order then default."""
        targets: List[str] = []
        for e in node.edges:
            if e.target not in targets:
                targets.append(e.target)
        if node.default not in targets:
            targets.append(node.default)
        return targets

    def _resolve_target(self, target: str) -> Tuple[int, Tuple[int, ...]]:
        """Hardware state id and next-lookup window for a graph-level target,
        following merged nodes transparently.

        The bytes of merged nodes are folded into the *advance* of the entry
        that jumps over them (see :meth:`_merged_extra_advance`), so the
        next-lookup offsets are simply the final target's own lookup bytes.
        """
        while target not in (DONE, DROP) and self._layouts[target].merged:
            target = self._layouts[target].node.default
        if target == DONE:
            return ACCEPT_STATE, self._pad_window([])
        if target == DROP:
            return REJECT_STATE, self._pad_window([])
        return self._state_ids[target], self._pad_window(self._layouts[target].lookup_bytes)

    def _merged_extra_advance(self, target: str) -> int:
        """Bytes of merged nodes skipped on the way to ``target``."""
        extra = 0
        while target not in (DONE, DROP) and self._layouts[target].merged:
            extra += self._layouts[target].byte_length
            target = self._layouts[target].node.default
        return extra

    def _pad_window(self, offsets: Sequence[int]) -> Tuple[int, ...]:
        padded = list(offsets)[: self.config.window_bytes]
        while len(padded) < self.config.window_bytes:
            padded.append(0)
        return tuple(padded)

    def _window_offsets(self, name: str) -> Tuple[int, ...]:
        return self._pad_window(self._layouts[name].lookup_bytes)

    # ------------------------------------------------------------------

    def _entries_for_node(self, name: str) -> List[TableEntry]:
        layout = self._layouts[name]
        node = layout.node
        entries: List[TableEntry] = []
        groups = self._successor_groups(node)
        chain_of_target = {target: index for index, target in enumerate(groups)}

        def exit_entry_fields(target: str) -> Tuple[int, Tuple[int, ...], int]:
            """next_state, next_lookup and extra advance for leaving the node."""
            next_state, next_lookup = self._resolve_target(target)
            return next_state, next_lookup, self._merged_extra_advance(target)

        wildcard = tuple([0] * self.config.window_bytes)
        for e in list(node.edges) + [Edge((), node.default)]:
            target = e.target
            mask, value = _field_match_bytes(node, e, layout.lookup_bytes, self.config.window_bytes)
            if layout.continuation_lengths:
                # Splitting: the matching chunk picks a per-target continuation chain.
                chain = chain_of_target[target]
                first_cont = self._state_ids[f"{name}#cont{chain}_0"]
                entries.append(
                    TableEntry(
                        state=self._state_ids[name],
                        match_mask=mask,
                        match_value=value,
                        next_state=first_cont,
                        advance=layout.match_advance,
                        next_lookup=self._pad_window([]),
                    )
                )
            else:
                next_state, next_lookup, extra = exit_entry_fields(target)
                entries.append(
                    TableEntry(
                        state=self._state_ids[name],
                        match_mask=mask,
                        match_value=value,
                        next_state=next_state,
                        advance=layout.match_advance + extra,
                        next_lookup=next_lookup,
                    )
                )
        # Continuation chains (one per distinct successor) for split nodes.
        if layout.continuation_lengths:
            for target, chain in chain_of_target.items():
                for index, chunk in enumerate(layout.continuation_lengths):
                    state_id = self._state_ids[f"{name}#cont{chain}_{index}"]
                    is_last = index == len(layout.continuation_lengths) - 1
                    if is_last:
                        next_state, next_lookup, extra = exit_entry_fields(target)
                        advance = chunk + extra
                    else:
                        next_state = self._state_ids[f"{name}#cont{chain}_{index + 1}"]
                        next_lookup = self._pad_window([])
                        advance = chunk
                    entries.append(
                        TableEntry(
                            state=state_id,
                            match_mask=wildcard,
                            match_value=wildcard,
                            next_state=next_state,
                            advance=advance,
                            next_lookup=next_lookup,
                        )
                    )
        return entries


def compile_graph(
    graph: ParseGraph,
    config: Optional[HardwareConfig] = None,
    merge_states: bool = True,
) -> HardwareParser:
    """Convenience wrapper around :class:`ParserGenCompiler`."""
    return ParserGenCompiler(graph, config, merge_states).compile()
