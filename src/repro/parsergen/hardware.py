"""The hardware parser table representation and its simulator.

parser-gen compiles parse graphs to a fixed-function hardware engine driven by
a TCAM table (Figure 8 of the Leapfrog paper).  Every cycle the engine:

1. reads a small *lookup window* — a handful of bytes fetched at offsets
   (chosen by the previous cycle) relative to the current packet position,
2. matches the pair (current state, window) against the table entries in
   priority order under a per-byte mask,
3. follows the winning entry: advance the position by a bounded number of
   bytes, move to the next state, and remember the window offsets to fetch for
   that state.

This module defines the table format, the hardware configuration limits, and a
cycle-accurate simulator used for differential testing against the parse-graph
interpreter; :mod:`repro.parsergen.compiler` produces the tables and
:mod:`repro.parsergen.backtranslate` converts them back into P4 automata for
translation validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..p4a.bitvec import Bits

#: Distinguished hardware state identifiers (Figure 8 prints accept as 255/255).
ACCEPT_STATE = 255
REJECT_STATE = 254


class HardwareError(Exception):
    """Raised on malformed tables or configurations."""


@dataclass(frozen=True)
class HardwareConfig:
    """Resource limits of the parser engine."""

    window_bytes: int = 4          # how many bytes the TCAM examines per cycle
    max_advance_bytes: int = 16    # how far the engine can move per cycle
    max_lookup_offset: int = 15    # how far ahead a window byte may be fetched
    max_states: int = 254          # user states (255/254 are accept/reject)

    def validate(self) -> None:
        if self.window_bytes <= 0 or self.max_advance_bytes <= 0:
            raise HardwareError("window and advance must be positive")
        if self.max_states > 254:
            raise HardwareError("state identifiers above 253 are reserved")


@dataclass(frozen=True)
class TableEntry:
    """One TCAM entry.

    ``match_mask``/``match_value`` have one byte per window byte; a mask byte of
    0x00 makes that window byte a wildcard.  ``next_lookup`` gives the byte
    offsets (relative to the position *after* advancing) that the engine
    fetches for the next cycle's window.
    """

    state: int
    match_mask: Tuple[int, ...]
    match_value: Tuple[int, ...]
    next_state: int
    advance: int
    next_lookup: Tuple[int, ...]

    def matches(self, state: int, window: Sequence[int]) -> bool:
        if state != self.state:
            return False
        return all(
            (byte & mask) == (value & mask)
            for byte, mask, value in zip(window, self.match_mask, self.match_value)
        )

    def describe(self) -> str:
        mask = ", ".join(f"{b:02x}" for b in self.match_mask)
        value = ", ".join(f"{b:02x}" for b in self.match_value)
        lookup = ", ".join(str(o) for o in self.next_lookup)
        return (
            f"Match: ([{mask}], [{value}])  Next-State: {self.next_state}/255  "
            f"Adv: {self.advance:3d}  Next-Lookup: [{lookup}]"
        )


@dataclass
class HardwareParser:
    """A compiled parser: the table plus the initial engine state."""

    name: str
    config: HardwareConfig
    entries: List[TableEntry]
    initial_state: int
    initial_lookup: Tuple[int, ...]
    state_names: Dict[int, str] = field(default_factory=dict)

    def validate(self) -> None:
        self.config.validate()
        for entry in self.entries:
            if len(entry.match_mask) != self.config.window_bytes:
                raise HardwareError("mask width does not match the window size")
            if len(entry.match_value) != self.config.window_bytes:
                raise HardwareError("value width does not match the window size")
            if entry.advance < 0 or entry.advance > self.config.max_advance_bytes:
                raise HardwareError(f"advance {entry.advance} exceeds the hardware limit")
            if len(entry.next_lookup) != self.config.window_bytes:
                raise HardwareError("next-lookup width does not match the window size")
            for offset in entry.next_lookup:
                if offset < 0 or offset > self.config.max_lookup_offset:
                    raise HardwareError(f"lookup offset {offset} exceeds the hardware limit")

    def entries_for_state(self, state: int) -> List[TableEntry]:
        return [entry for entry in self.entries if entry.state == state]

    def states(self) -> List[int]:
        seen: List[int] = []
        for entry in self.entries:
            if entry.state not in seen:
                seen.append(entry.state)
        return seen

    def dump(self) -> str:
        """Render the table in the style of Figure 8."""
        lines = [f"# {self.name}: {len(self.entries)} entries"]
        for entry in self.entries:
            name = self.state_names.get(entry.state, str(entry.state))
            lines.append(f"[{name:>18}] {entry.describe()}")
        return "\n".join(lines)


@dataclass
class HardwareRun:
    accepted: bool
    consumed_bytes: int
    cycles: int
    trace: List[int]


def simulate(parser: HardwareParser, packet: Bits, max_cycles: int = 4096) -> HardwareRun:
    """Cycle-accurate simulation of the hardware engine on ``packet``.

    The packet must be byte aligned (hardware parsers operate on bytes).  A
    packet is accepted when the engine reaches :data:`ACCEPT_STATE` having
    consumed exactly the whole packet.  Windows that extend past the end of the
    packet read zero bytes, but advancing past the end rejects, as does
    reaching accept with bytes left over.
    """
    if packet.width % 8:
        return HardwareRun(False, 0, 0, [])
    data = [packet.slice(8 * i, 8 * i + 7).to_int() for i in range(packet.width // 8)]
    position = 0
    state = parser.initial_state
    lookup = parser.initial_lookup
    trace = [state]
    for cycle in range(1, max_cycles + 1):
        if state == ACCEPT_STATE:
            return HardwareRun(position == len(data), position, cycle, trace)
        if state == REJECT_STATE:
            return HardwareRun(False, position, cycle, trace)
        window = [
            data[position + offset] if position + offset < len(data) else 0
            for offset in lookup
        ]
        chosen: Optional[TableEntry] = None
        for entry in parser.entries:
            if entry.matches(state, window):
                chosen = entry
                break
        if chosen is None:
            return HardwareRun(False, position, cycle, trace)
        if position + chosen.advance > len(data):
            return HardwareRun(False, position, cycle, trace)
        position += chosen.advance
        state = chosen.next_state
        lookup = chosen.next_lookup
        trace.append(state)
    return HardwareRun(False, position, max_cycles, trace)
