"""Parse-graph intermediate representation (the parser-gen input language).

``parser-gen`` (Gibb et al., ANCS 2013) describes parsers as *parse graphs*:
nodes are protocol headers with named, fixed-width fields; edges are guarded by
the values of designated *lookup fields* and point to the next header.  This
module defines that IR, a reference interpreter for it, and small utilities
(reachability, statistics) used by the compiler and the scenarios.

Widths are given in bits but headers must be whole bytes long, matching the
byte-oriented hardware of parser-gen.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from ..p4a.bitvec import Bits

#: Special edge targets.
DONE = "accept"
DROP = "reject"


class ParseGraphError(Exception):
    """Raised on malformed parse graphs."""


@dataclass(frozen=True)
class Field:
    """A named field of a header."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ParseGraphError(f"field {self.name!r} must have positive width")


@dataclass(frozen=True)
class HeaderFormat:
    """A protocol header: an ordered list of fields."""

    name: str
    fields: Tuple[Field, ...]

    @property
    def width(self) -> int:
        return sum(f.width for f in self.fields)

    @property
    def byte_length(self) -> int:
        if self.width % 8:
            raise ParseGraphError(f"header {self.name!r} is not byte aligned ({self.width} bits)")
        return self.width // 8

    def field_offset(self, name: str) -> int:
        """Bit offset of a field from the start of the header."""
        offset = 0
        for f in self.fields:
            if f.name == name:
                return offset
            offset += f.width
        raise ParseGraphError(f"header {self.name!r} has no field {name!r}")

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise ParseGraphError(f"header {self.name!r} has no field {name!r}")


def header(name: str, *fields: Tuple[str, int]) -> HeaderFormat:
    """Convenience constructor: ``header("ipv4", ("proto", 8), ...)``."""
    return HeaderFormat(name, tuple(Field(n, w) for n, w in fields))


@dataclass(frozen=True)
class Edge:
    """A guarded edge: taken when every lookup field matches its value.

    ``values`` maps lookup-field names to integers; fields omitted from the
    mapping are wildcards.  ``target`` is a node name, :data:`DONE` or
    :data:`DROP`.
    """

    values: Tuple[Tuple[str, int], ...]
    target: str

    def value_map(self) -> Dict[str, int]:
        return dict(self.values)


def edge(target: str, **values: int) -> Edge:
    return Edge(tuple(sorted(values.items())), target)


@dataclass
class Node:
    """A parse-graph node: a header plus its outgoing edges.

    ``lookup_fields`` are the fields examined to choose the successor; when
    empty the node has a single unconditional edge (or terminates).
    """

    name: str
    format: HeaderFormat
    lookup_fields: Tuple[str, ...] = ()
    edges: Tuple[Edge, ...] = ()
    default: str = DROP

    def __post_init__(self) -> None:
        for field_name in self.lookup_fields:
            self.format.field(field_name)
        for e in self.edges:
            for field_name, _ in e.values:
                if field_name not in self.lookup_fields:
                    raise ParseGraphError(
                        f"edge of node {self.name!r} constrains {field_name!r} which is "
                        "not a lookup field"
                    )


@dataclass
class ParseGraph:
    """A rooted parse graph."""

    name: str
    root: str
    nodes: Dict[str, Node] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.root not in self.nodes:
            raise ParseGraphError(f"root node {self.root!r} is not defined")
        for node in self.nodes.values():
            targets = [e.target for e in node.edges] + [node.default]
            for target in targets:
                if target not in (DONE, DROP) and target not in self.nodes:
                    raise ParseGraphError(
                        f"node {node.name!r} references undefined node {target!r}"
                    )

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def reachable_nodes(self) -> Set[str]:
        seen = {self.root}
        queue = deque([self.root])
        while queue:
            current = queue.popleft()
            node = self.nodes[current]
            for target in [e.target for e in node.edges] + [node.default]:
                if target in (DONE, DROP) or target in seen:
                    continue
                seen.add(target)
                queue.append(target)
        return seen

    def total_header_bits(self) -> int:
        return sum(self.nodes[name].format.width for name in self.reachable_nodes())

    def branched_bits(self) -> int:
        return sum(
            self.nodes[name].format.field(f).width
            for name in self.reachable_nodes()
            for f in self.nodes[name].lookup_fields
        )


def make_graph(name: str, root: str, nodes: Iterable[Node]) -> ParseGraph:
    return ParseGraph(name, root, {node.name: node for node in nodes})


# ---------------------------------------------------------------------------
# Reference interpreter
# ---------------------------------------------------------------------------


@dataclass
class ParseResult:
    accepted: bool
    headers: Dict[str, Dict[str, int]]
    consumed_bits: int


def interpret(graph: ParseGraph, packet: Bits) -> ParseResult:
    """Run the parse graph over ``packet`` (the reference semantics).

    A packet is accepted when a :data:`DONE` edge is reached exactly at the end
    of the packet; running out of bits mid-header, hitting :data:`DROP`, or
    finishing with unread bits all reject.
    """
    position = 0
    headers: Dict[str, Dict[str, int]] = {}
    current = graph.root
    while True:
        node = graph.nodes[current]
        width = node.format.width
        if position + width > packet.width:
            return ParseResult(False, headers, position)
        data = packet.slice(position, position + width - 1) if width else Bits("")
        position += width
        values: Dict[str, int] = {}
        offset = 0
        for f in node.format.fields:
            values[f.name] = data.slice(offset, offset + f.width - 1).to_int()
            offset += f.width
        headers[node.name] = values
        target = node.default
        for e in node.edges:
            if all(values[name] == value for name, value in e.values):
                target = e.target
                break
        if target == DONE:
            return ParseResult(position == packet.width, headers, position)
        if target == DROP:
            return ParseResult(False, headers, position)
        current = target
