"""The four parser-gen benchmark scenarios (Section 7.2).

Gibb et al. evaluate their parser generator on four deployment scenarios —
Edge, Service Provider, Datacenter and Enterprise — each supporting a
different set of protocols.  The parse graphs below model those protocol mixes
with realistic header layouts (Ethernet, 802.1Q, MPLS, IPv4/IPv6, GRE, VXLAN,
TCP/UDP/ICMP).  ``mini_*`` variants with the same shape but far fewer nodes
are provided for fast tests and the default benchmark configuration.
"""

from __future__ import annotations

from typing import Callable, Dict

from .ir import DONE, DROP, Node, ParseGraph, edge, header, make_graph

# ---------------------------------------------------------------------------
# Header formats
# ---------------------------------------------------------------------------

ETHERNET = header("ethernet", ("dst", 48), ("src", 48), ("ethertype", 16))
VLAN = header("vlan", ("pcp", 3), ("dei", 1), ("vid", 12), ("ethertype", 16))
MPLS = header("mpls", ("label", 20), ("tc", 3), ("bos", 1), ("ttl", 8))
IPV4 = header(
    "ipv4",
    ("version_ihl", 8),
    ("tos", 8),
    ("length", 16),
    ("id", 16),
    ("flags_frag", 16),
    ("ttl", 8),
    ("protocol", 8),
    ("checksum", 16),
    ("src", 32),
    ("dst", 32),
)
IPV6 = header(
    "ipv6",
    ("version_class_flow", 32),
    ("payload_len", 16),
    ("next_header", 8),
    ("hop_limit", 8),
    ("src", 128),
    ("dst", 128),
)
TCP = header("tcp", ("src_port", 16), ("dst_port", 16), ("rest", 128))
UDP = header("udp", ("src_port", 16), ("dst_port", 16), ("length", 16), ("checksum", 16))
ICMP = header("icmp", ("type", 8), ("code", 8), ("checksum", 16), ("rest", 32))
GRE = header("gre", ("flags", 16), ("protocol", 16))
VXLAN = header("vxlan", ("flags", 8), ("reserved", 24), ("vni", 24), ("reserved2", 8))

# EtherType and protocol numbers.
ETH_VLAN = 0x8100
ETH_MPLS = 0x8847
ETH_IPV4 = 0x0800
ETH_IPV6 = 0x86DD
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_GRE = 47
VXLAN_PORT = 4789


def _terminal(name: str, fmt) -> Node:
    return Node(name, fmt, (), (), DONE)


def _l4_nodes(suffix: str = "", include_icmp: bool = True) -> list:
    nodes = [_terminal(f"tcp{suffix}", TCP), _terminal(f"udp{suffix}", UDP)]
    if include_icmp:
        nodes.append(_terminal(f"icmp{suffix}", ICMP))
    return nodes


def _ipv4_node(name: str, targets: Dict[int, str], default: str = DROP) -> Node:
    return Node(
        name,
        IPV4,
        ("protocol",),
        tuple(edge(target, protocol=value) for value, target in targets.items()),
        default,
    )


def _ipv6_node(name: str, targets: Dict[int, str], default: str = DROP) -> Node:
    return Node(
        name,
        IPV6,
        ("next_header",),
        tuple(edge(target, next_header=value) for value, target in targets.items()),
        default,
    )


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def enterprise() -> ParseGraph:
    """Campus/company router: Ethernet, up to two VLAN tags, IPv4/IPv6, L4."""
    l3 = {ETH_IPV4: "ipv4", ETH_IPV6: "ipv6"}
    l4 = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}
    nodes = [
        Node("ethernet", ETHERNET, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in {ETH_VLAN: "vlan0", **l3}.items()), DROP),
        Node("vlan0", VLAN, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in {ETH_VLAN: "vlan1", **l3}.items()), DROP),
        Node("vlan1", VLAN, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in l3.items()), DROP),
        _ipv4_node("ipv4", l4),
        _ipv6_node("ipv6", l4),
        *_l4_nodes(),
    ]
    return make_graph("enterprise", "ethernet", nodes)


def edge_router() -> ParseGraph:
    """Gateway router: VLANs, an MPLS stack of depth two, GRE tunnelling."""
    l3 = {ETH_IPV4: "ipv4", ETH_IPV6: "ipv6"}
    l4 = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp", PROTO_GRE: "gre"}
    inner_l4 = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}
    nodes = [
        Node("ethernet", ETHERNET, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in
                   {ETH_VLAN: "vlan0", ETH_MPLS: "mpls0", **l3}.items()), DROP),
        Node("vlan0", VLAN, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in
                   {ETH_VLAN: "vlan1", ETH_MPLS: "mpls0", **l3}.items()), DROP),
        Node("vlan1", VLAN, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in
                   {ETH_MPLS: "mpls0", **l3}.items()), DROP),
        Node("mpls0", MPLS, ("bos",), (edge("mpls1", bos=0), edge("ipv4_mpls", bos=1)), DROP),
        Node("mpls1", MPLS, ("bos",), (edge("ipv4_mpls", bos=1),), DROP),
        _ipv4_node("ipv4", l4),
        _ipv6_node("ipv6", l4),
        _ipv4_node("ipv4_mpls", inner_l4),
        Node("gre", GRE, ("protocol",),
             (edge("ipv4_inner", protocol=ETH_IPV4), edge("ipv6_inner", protocol=ETH_IPV6)), DROP),
        _ipv4_node("ipv4_inner", inner_l4),
        _ipv6_node("ipv6_inner", inner_l4),
        *_l4_nodes(),
    ]
    return make_graph("edge", "ethernet", nodes)


def service_provider() -> ParseGraph:
    """Core router: a deep MPLS label stack in front of the IP payload."""
    l3 = {ETH_IPV4: "ipv4", ETH_IPV6: "ipv6"}
    l4 = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}
    depth = 4
    nodes = [
        Node("ethernet", ETHERNET, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in {ETH_MPLS: "mpls0", **l3}.items()), DROP),
        _ipv4_node("ipv4", l4),
        _ipv6_node("ipv6", l4),
        _ipv4_node("ipv4_mpls", l4),
        *_l4_nodes(include_icmp=False),
    ]
    for level in range(depth):
        next_target = f"mpls{level + 1}" if level + 1 < depth else DROP
        edges = [edge("ipv4_mpls", bos=1)]
        if next_target != DROP:
            edges.append(edge(next_target, bos=0))
        nodes.append(Node(f"mpls{level}", MPLS, ("bos",), tuple(edges), DROP))
    return make_graph("service_provider", "ethernet", nodes)


def datacenter() -> ParseGraph:
    """Top-of-rack switch: VLAN, IPv4/IPv6, VXLAN tunnelling to an inner stack."""
    l3 = {ETH_IPV4: "ipv4", ETH_IPV6: "ipv6"}
    inner_l3 = {ETH_IPV4: "ipv4_inner", ETH_IPV6: "ipv6_inner"}
    nodes = [
        Node("ethernet", ETHERNET, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in {ETH_VLAN: "vlan", **l3}.items()), DROP),
        Node("vlan", VLAN, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in l3.items()), DROP),
        _ipv4_node("ipv4", {PROTO_TCP: "tcp", PROTO_UDP: "udp"}),
        _ipv6_node("ipv6", {PROTO_TCP: "tcp", PROTO_UDP: "udp"}),
        _terminal("tcp", TCP),
        Node("udp", UDP, ("dst_port",), (edge("vxlan", dst_port=VXLAN_PORT),), DONE),
        Node("vxlan", VXLAN, (), (), "ethernet_inner"),
        Node("ethernet_inner", ETHERNET, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in {ETH_VLAN: "vlan_inner", **inner_l3}.items()),
             DROP),
        Node("vlan_inner", VLAN, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in inner_l3.items()), DROP),
        _ipv4_node("ipv4_inner", {PROTO_TCP: "tcp_inner", PROTO_UDP: "udp_inner"}),
        _ipv6_node("ipv6_inner", {PROTO_TCP: "tcp_inner", PROTO_UDP: "udp_inner"}),
        _terminal("tcp_inner", TCP),
        _terminal("udp_inner", UDP),
    ]
    return make_graph("datacenter", "ethernet", nodes)


# ---------------------------------------------------------------------------
# Miniature variants (same shape, fewer protocols) for tests and quick benches
# ---------------------------------------------------------------------------

MINI_ETHERNET = header("ethernet", ("addr", 16), ("ethertype", 8))
MINI_VLAN = header("vlan", ("vid", 8), ("ethertype", 8))
MINI_IPV4 = header("ipv4", ("meta", 8), ("protocol", 8))
MINI_IPV6 = header("ipv6", ("meta", 24), ("next_header", 8))
MINI_TCP = header("tcp", ("ports", 16))
MINI_UDP = header("udp", ("ports", 8))

MINI_ETH_VLAN = 0x81
MINI_ETH_IPV4 = 0x08
MINI_ETH_IPV6 = 0x86
MINI_PROTO_TCP = 6
MINI_PROTO_UDP = 17


def mini_enterprise() -> ParseGraph:
    """A small Enterprise-shaped graph used by tests and quick benchmarks."""
    l3 = {MINI_ETH_IPV4: "ipv4", MINI_ETH_IPV6: "ipv6"}
    l4 = {MINI_PROTO_TCP: "tcp", MINI_PROTO_UDP: "udp"}
    nodes = [
        Node("ethernet", MINI_ETHERNET, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in {MINI_ETH_VLAN: "vlan", **l3}.items()), DROP),
        Node("vlan", MINI_VLAN, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in l3.items()), DROP),
        Node("ipv4", MINI_IPV4, ("protocol",),
             tuple(edge(t, protocol=v) for v, t in l4.items()), DROP),
        Node("ipv6", MINI_IPV6, ("next_header",),
             tuple(edge(t, next_header=v) for v, t in l4.items()), DROP),
        _terminal("tcp", MINI_TCP),
        _terminal("udp", MINI_UDP),
    ]
    return make_graph("mini_enterprise", "ethernet", nodes)


def mini_edge() -> ParseGraph:
    """A small Edge-shaped graph (adds an MPLS-like tag in front of IP)."""
    mini_mpls = header("mpls", ("label", 7), ("bos", 1))
    l3 = {MINI_ETH_IPV4: "ipv4", MINI_ETH_IPV6: "ipv6"}
    nodes = [
        Node("ethernet", MINI_ETHERNET, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in
                   {MINI_ETH_VLAN: "vlan", 0x47: "mpls0", **l3}.items()), DROP),
        Node("vlan", MINI_VLAN, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in l3.items()), DROP),
        Node("mpls0", mini_mpls, ("bos",), (edge("mpls1", bos=0), edge("ipv4", bos=1)), DROP),
        Node("mpls1", mini_mpls, ("bos",), (edge("ipv4", bos=1),), DROP),
        Node("ipv4", MINI_IPV4, ("protocol",),
             (edge("tcp", protocol=MINI_PROTO_TCP), edge("udp", protocol=MINI_PROTO_UDP)), DROP),
        Node("ipv6", MINI_IPV6, ("next_header",),
             (edge("tcp", next_header=MINI_PROTO_TCP), edge("udp", next_header=MINI_PROTO_UDP)),
             DROP),
        _terminal("tcp", MINI_TCP),
        _terminal("udp", MINI_UDP),
    ]
    return make_graph("mini_edge", "ethernet", nodes)


def mini_service_provider() -> ParseGraph:
    """A small ServiceProvider-shaped graph: an MPLS-like stack of depth two."""
    mini_mpls = header("mpls", ("label", 7), ("bos", 1))
    l3 = {MINI_ETH_IPV4: "ipv4", MINI_ETH_IPV6: "ipv6"}
    nodes = [
        Node("ethernet", MINI_ETHERNET, ("ethertype",),
             tuple(edge(t, ethertype=v) for v, t in {0x47: "mpls0", **l3}.items()), DROP),
        Node("mpls0", mini_mpls, ("bos",),
             (edge("mpls1", bos=0), edge("ipv4_mpls", bos=1)), DROP),
        Node("mpls1", mini_mpls, ("bos",), (edge("ipv4_mpls", bos=1),), DROP),
        Node("ipv4", MINI_IPV4, ("protocol",),
             (edge("tcp", protocol=MINI_PROTO_TCP), edge("udp", protocol=MINI_PROTO_UDP)), DROP),
        Node("ipv6", MINI_IPV6, ("next_header",),
             (edge("tcp", next_header=MINI_PROTO_TCP), edge("udp", next_header=MINI_PROTO_UDP)),
             DROP),
        Node("ipv4_mpls", MINI_IPV4, ("protocol",),
             (edge("tcp", protocol=MINI_PROTO_TCP), edge("udp", protocol=MINI_PROTO_UDP)), DROP),
        _terminal("tcp", MINI_TCP),
        _terminal("udp", MINI_UDP),
    ]
    return make_graph("mini_service_provider", "ethernet", nodes)


def mini_datacenter() -> ParseGraph:
    """A small Datacenter-shaped graph: a VXLAN-like tunnel to an inner stack."""
    mini_vxlan = header("vxlan", ("vni", 8))
    mini_vxlan_port = 0x12
    nodes = [
        Node("ethernet", MINI_ETHERNET, ("ethertype",),
             (edge("ipv4", ethertype=MINI_ETH_IPV4),), DROP),
        Node("ipv4", MINI_IPV4, ("protocol",),
             (edge("tcp", protocol=MINI_PROTO_TCP), edge("udp", protocol=MINI_PROTO_UDP)), DROP),
        _terminal("tcp", MINI_TCP),
        Node("udp", MINI_UDP, ("ports",), (edge("vxlan", ports=mini_vxlan_port),), DONE),
        Node("vxlan", mini_vxlan, (), (), "ethernet_inner"),
        Node("ethernet_inner", MINI_ETHERNET, ("ethertype",),
             (edge("ipv4_inner", ethertype=MINI_ETH_IPV4),), DROP),
        Node("ipv4_inner", MINI_IPV4, ("protocol",),
             (edge("tcp_inner", protocol=MINI_PROTO_TCP),
              edge("udp_inner", protocol=MINI_PROTO_UDP)), DROP),
        _terminal("tcp_inner", MINI_TCP),
        _terminal("udp_inner", MINI_UDP),
    ]
    return make_graph("mini_datacenter", "ethernet", nodes)


#: The parse-graph builders defined in this module, keyed by catalog name.
#: Enumeration and lookup now live in :mod:`repro.scenarios` (the tagged
#: registry); this mapping remains for direct access to the graph builders.
SCENARIOS: Dict[str, Callable[[], ParseGraph]] = {
    "enterprise": enterprise,
    "edge": edge_router,
    "service_provider": service_provider,
    "datacenter": datacenter,
    "mini_enterprise": mini_enterprise,
    "mini_edge": mini_edge,
    "mini_service_provider": mini_service_provider,
    "mini_datacenter": mini_datacenter,
}

#: The four scaled-down deployment graphs (the quick-test population).
MINI_SCENARIOS = ("mini_edge", "mini_enterprise", "mini_service_provider", "mini_datacenter")


def scenario(name: str) -> ParseGraph:
    """Look up a parse-graph scenario by its registry name.

    Delegates to the tagged registry (:func:`repro.scenarios.get`), so lookup
    errors name near-misses; only ``graph``-kind scenarios have a parse graph
    to return.
    """
    from ..scenarios import get

    info = get(name)
    graph = info.graph()
    if graph is None:
        raise ValueError(
            f"scenario {name!r} is an automaton pair, not a parse graph; "
            "use repro.scenarios.get(name).automata()"
        )
    return graph
