"""Translation from parse graphs to P4 automata.

Each parse-graph node becomes a P4A state that extracts the node's header into
a single header variable and selects the successor on the lookup-field slices.
This is the "reference" translation used both by the applicability studies
(self-comparison of a scenario's P4A) and as the left-hand side of the
translation-validation study.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..p4a.bitvec import Bits
from ..p4a.syntax import (
    ACCEPT,
    REJECT,
    ExactPattern,
    Extract,
    Goto,
    HeaderRef,
    P4Automaton,
    Select,
    SelectCase,
    Slice,
    State,
    WILDCARD,
)
from ..p4a.typing import check_automaton
from .ir import DONE, DROP, Node, ParseGraph


def _p4a_target(target: str) -> str:
    if target == DONE:
        return ACCEPT
    if target == DROP:
        return REJECT
    return target


def _node_transition(node: Node):
    header_name = f"hdr_{node.name}"
    if not node.lookup_fields:
        return Goto(_p4a_target(node.default))
    exprs = []
    for field_name in node.lookup_fields:
        offset = node.format.field_offset(field_name)
        width = node.format.field(field_name).width
        exprs.append(Slice(HeaderRef(header_name), offset, offset + width - 1))
    cases: List[SelectCase] = []
    for e in node.edges:
        values = e.value_map()
        patterns = []
        for field_name in node.lookup_fields:
            if field_name in values:
                width = node.format.field(field_name).width
                patterns.append(ExactPattern(Bits.from_int(values[field_name], width)))
            else:
                patterns.append(WILDCARD)
        cases.append(SelectCase(tuple(patterns), _p4a_target(e.target)))
    # The default edge becomes a final all-wildcard case.
    cases.append(SelectCase(tuple(WILDCARD for _ in node.lookup_fields), _p4a_target(node.default)))
    return Select(tuple(exprs), tuple(cases))


def graph_to_p4a(graph: ParseGraph, name: str = None) -> Tuple[P4Automaton, str]:
    """Translate ``graph`` into a P4A.  Returns the automaton and its start state."""
    headers: Dict[str, int] = {}
    states: Dict[str, State] = {}
    for node_name in sorted(graph.reachable_nodes()):
        node = graph.nodes[node_name]
        header_name = f"hdr_{node.name}"
        headers[header_name] = node.format.width
        states[node.name] = State(node.name, (Extract(header_name),), _node_transition(node))
    automaton = P4Automaton(name or f"{graph.name}_p4a", headers, states)
    check_automaton(automaton)
    return automaton, graph.root
