"""Protocol parser library: case-study parsers from the paper's figures plus
the real-world protocol families of the scenario catalog."""

from . import (
    arp_icmp,
    ethernet_ip,
    ethernet_vlan,
    geneve,
    ip_options,
    ip_tcp_udp,
    ipv6_ext,
    mpls,
    qinq,
    srv6,
    tiny,
    vxlan_gre,
)

__all__ = [
    "arp_icmp",
    "ethernet_ip",
    "ethernet_vlan",
    "geneve",
    "ip_options",
    "ip_tcp_udp",
    "ipv6_ext",
    "mpls",
    "qinq",
    "srv6",
    "tiny",
    "vxlan_gre",
]
