"""Protocol parser library: the case-study parsers from the paper's figures."""

from . import mpls, tiny

__all__ = ["mpls", "tiny"]
