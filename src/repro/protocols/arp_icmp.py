"""ARP and ICMP control-plane parsers (enterprise campus switch).

A control-plane punt path classifies exactly the traffic the CPU must see:
ARP requests and replies, ICMP echo request/reply, and ICMP destination
unreachable (which carries a stub of the original datagram):

    eth ( arp(oper ∈ {1,2})
        | ipv4 icmp(type ∈ {0,8})
        | ipv4 icmp(type = 3) orig )

Three parsers over that language:

* :func:`reference_parser` — extracts each protocol header in one block and
  selects on the opcode/type field;
* :func:`split_parser` — an equivalent variant that extracts the selector
  field first and the header body in a separate state (the
  incremental-vs-block extraction shape of the paper's Figure 5), valid
  because the branch depends only on the leading field;
* :func:`broken_parser` — a deliberately inequivalent variant that accepts
  ICMP destination-unreachable without the mandatory original-datagram stub.

The ARP opcode and ICMP type occupy the *leading* bits of their headers (as
in the real formats); the ethertype and IPv4 protocol lookups occupy the
trailing bits of theirs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..p4a.bitvec import Bits
from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import ACCEPT, P4Automaton, REJECT

START = "ethernet"

ARP_REQUEST = 1
ARP_REPLY = 2
ICMP_ECHO_REPLY = 0
ICMP_UNREACHABLE = 3
ICMP_ECHO_REQUEST = 8


@dataclass(frozen=True)
class Widths:
    """Header and lookup-field bit widths plus the selector values."""

    eth: int
    eth_type: int
    arp: int
    arp_oper: int
    ip: int
    ip_proto: int
    icmp: int
    icmp_type: int
    orig: int
    eth_arp: int
    eth_ipv4: int
    proto_icmp: int


FULL = Widths(eth=112, eth_type=16, arp=224, arp_oper=16, ip=160, ip_proto=8,
              icmp=64, icmp_type=8, orig=64,
              eth_arp=0x0806, eth_ipv4=0x0800, proto_icmp=1)

MINI = Widths(eth=8, eth_type=8, arp=16, arp_oper=8, ip=8, ip_proto=8,
              icmp=16, icmp_type=8, orig=8,
              eth_arp=0x06, eth_ipv4=0x08, proto_icmp=1)


def _pat(value: int, width: int) -> Bits:
    return Bits.from_int(value, width)


def _outer_states(builder: AutomatonBuilder, w: Widths, arp_target: str) -> None:
    builder.header("eth", w.eth).header("ip", w.ip)
    builder.state("ethernet").extract("eth").select(
        f"eth[{w.eth - w.eth_type}:{w.eth - 1}]",
        [
            (_pat(w.eth_arp, w.eth_type), arp_target),
            (_pat(w.eth_ipv4, w.eth_type), "ipv4"),
            ("_", REJECT),
        ],
    )


def _ipv4_state(builder: AutomatonBuilder, w: Widths, icmp_target: str) -> None:
    builder.state("ipv4").extract("ip").select(
        f"ip[{w.ip - w.ip_proto}:{w.ip - 1}]",
        [(_pat(w.proto_icmp, w.ip_proto), icmp_target), ("_", REJECT)],
    )


def reference_parser(w: Widths = FULL) -> P4Automaton:
    """Block extraction: whole ARP and ICMP headers, then one select each."""
    builder = AutomatonBuilder(f"arp_icmp_reference_{w.eth}")
    _outer_states(builder, w, "arp")
    builder.header("arp_hdr", w.arp).header("icmp_hdr", w.icmp).header("orig_hdr", w.orig)
    builder.state("arp").extract("arp_hdr").select(
        f"arp_hdr[0:{w.arp_oper - 1}]",
        [
            (_pat(ARP_REQUEST, w.arp_oper), ACCEPT),
            (_pat(ARP_REPLY, w.arp_oper), ACCEPT),
            ("_", REJECT),
        ],
    )
    _ipv4_state(builder, w, "icmp")
    builder.state("icmp").extract("icmp_hdr").select(
        f"icmp_hdr[0:{w.icmp_type - 1}]",
        [
            (_pat(ICMP_ECHO_REPLY, w.icmp_type), ACCEPT),
            (_pat(ICMP_ECHO_REQUEST, w.icmp_type), ACCEPT),
            (_pat(ICMP_UNREACHABLE, w.icmp_type), "unreachable"),
            ("_", REJECT),
        ],
    )
    builder.state("unreachable").extract("orig_hdr").accept()
    return builder.build()


def split_parser(w: Widths = FULL) -> P4Automaton:
    """Equivalent variant extracting the selector field before the body.

    The ARP opcode and ICMP type are the leading bits of their headers and
    fully determine the branch, so extracting them alone and deferring the
    rest of the header to a successor state accepts exactly the same packets
    as the block extraction of the reference.
    """
    builder = AutomatonBuilder(f"arp_icmp_split_{w.eth}")
    _outer_states(builder, w, "arp_oper")
    builder.header("oper", w.arp_oper).header("arp_body", w.arp - w.arp_oper)
    builder.header("icmp_type_hdr", w.icmp_type).header("icmp_body", w.icmp - w.icmp_type)
    builder.header("orig_hdr", w.orig)
    builder.state("arp_oper").extract("oper").select(
        "oper",
        [
            (_pat(ARP_REQUEST, w.arp_oper), "arp_body_state"),
            (_pat(ARP_REPLY, w.arp_oper), "arp_body_state"),
            ("_", REJECT),
        ],
    )
    builder.state("arp_body_state").extract("arp_body").accept()
    _ipv4_state(builder, w, "icmp_type_state")
    builder.state("icmp_type_state").extract("icmp_type_hdr").select(
        "icmp_type_hdr",
        [
            (_pat(ICMP_ECHO_REPLY, w.icmp_type), "icmp_body_state"),
            (_pat(ICMP_ECHO_REQUEST, w.icmp_type), "icmp_body_state"),
            (_pat(ICMP_UNREACHABLE, w.icmp_type), "icmp_unreachable"),
            ("_", REJECT),
        ],
    )
    builder.state("icmp_body_state").extract("icmp_body").accept()
    builder.state("icmp_unreachable").extract("icmp_body").goto("orig")
    builder.state("orig").extract("orig_hdr").accept()
    return builder.build()


def broken_parser(w: Widths = FULL) -> P4Automaton:
    """Inequivalent variant: the punt path's validity checks are gone.

    The ARP state accepts *any* opcode (not just request/reply), and ICMP
    type 3 goes straight to accept, so destination-unreachable packets
    missing the original-datagram stub are wrongly accepted — and well-formed
    ones (with the stub) are wrongly rejected for trailing bits.
    """
    builder = AutomatonBuilder(f"arp_icmp_broken_{w.eth}")
    _outer_states(builder, w, "arp")
    builder.header("arp_hdr", w.arp).header("icmp_hdr", w.icmp)
    # Bug: no opcode check.
    builder.state("arp").extract("arp_hdr").accept()
    _ipv4_state(builder, w, "icmp")
    # Bug: type 3 accepts immediately instead of requiring the stub.
    builder.state("icmp").extract("icmp_hdr").select(
        f"icmp_hdr[0:{w.icmp_type - 1}]",
        [
            (_pat(ICMP_ECHO_REPLY, w.icmp_type), ACCEPT),
            (_pat(ICMP_ECHO_REQUEST, w.icmp_type), ACCEPT),
            (_pat(ICMP_UNREACHABLE, w.icmp_type), ACCEPT),
            ("_", REJECT),
        ],
    )
    return builder.build()


def mini_reference() -> P4Automaton:
    return reference_parser(MINI)


def mini_split() -> P4Automaton:
    return split_parser(MINI)


def mini_broken() -> P4Automaton:
    return broken_parser(MINI)
