"""Sloppy and strict Ethernet/IP parsers (Figure 10).

The *sloppy* (lenient) parser assumes that anything that is not IPv4 is IPv6;
the *strict* parser checks the EtherType explicitly and rejects unknown types.
The two are **not** language equivalent — they disagree exactly on packets with
an unknown EtherType — which makes them the input for two relational case
studies:

* **External filtering**: the parsers agree on every packet whose EtherType is
  IPv4 or IPv6, i.e. the packets an external filter would let through.  This is
  phrased by replacing the "equally accepting" initial relation with one that
  allows acceptance mismatches only when the parsed EtherType is neither IPv4
  nor IPv6 (:func:`external_filter_initial_relation`).
* **Relational verification**: whenever *both* parsers accept, their stores
  agree on the EtherType and on whichever IP header that type selects
  (:func:`store_correspondence`).
"""

from __future__ import annotations

from typing import List

from ..logic.confrel import LEFT, RIGHT, CHdr, CLit, Formula
from ..logic.simplify import mk_and, mk_eq, mk_impl, mk_not, mk_or, mk_slice
from ..p4a.bitvec import Bits
from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import P4Automaton
from ..core.reachability import ReachabilityAnalysis
from ..core.templates import GuardedFormula

START = "parse_eth"

ETHERTYPE_IPV4 = 0x8600  # the stylised value used in Figure 10
ETHERTYPE_IPV6 = 0x86DD


def _build(
    name: str,
    strict: bool,
    eth_bits: int,
    ipv4_bits: int,
    ipv6_bits: int,
    type_bits: int,
) -> P4Automaton:
    builder = AutomatonBuilder(name)
    builder.header("ether", eth_bits).header("ipv4", ipv4_bits).header("ipv6", ipv6_bits)
    type_lo = eth_bits - type_bits
    type_hi = eth_bits - 1
    ipv4_pattern = Bits.from_int(ETHERTYPE_IPV4 % (1 << type_bits), type_bits)
    ipv6_pattern = Bits.from_int(ETHERTYPE_IPV6 % (1 << type_bits), type_bits)
    if strict:
        cases = [
            (ipv6_pattern, "parse_ipv6"),
            (ipv4_pattern, "parse_ipv4"),
            ("_", "reject"),
        ]
    else:
        cases = [
            (ipv4_pattern, "parse_ipv4"),
            ("_", "parse_ipv6"),
        ]
    builder.state("parse_eth").extract("ether").select(f"ether[{type_lo}:{type_hi}]", cases)
    builder.state("parse_ipv4").extract("ipv4").accept()
    builder.state("parse_ipv6").extract("ipv6").accept()
    return builder.build()


def sloppy_parser(
    eth_bits: int = 112, ipv4_bits: int = 160, ipv6_bits: int = 320, type_bits: int = 16
) -> P4Automaton:
    """The lenient parser: not-IPv4 is treated as IPv6."""
    return _build("ethernet_ip_sloppy", False, eth_bits, ipv4_bits, ipv6_bits, type_bits)


def strict_parser(
    eth_bits: int = 112, ipv4_bits: int = 160, ipv6_bits: int = 320, type_bits: int = 16
) -> P4Automaton:
    """The strict parser: unknown EtherTypes are rejected."""
    return _build("ethernet_ip_strict", True, eth_bits, ipv4_bits, ipv6_bits, type_bits)


def scaled_sloppy(scale: int = 4) -> P4Automaton:
    return sloppy_parser(eth_bits=2 * scale, ipv4_bits=scale, ipv6_bits=2 * scale, type_bits=4)


def scaled_strict(scale: int = 4) -> P4Automaton:
    return strict_parser(eth_bits=2 * scale, ipv4_bits=scale, ipv6_bits=2 * scale, type_bits=4)


# ---------------------------------------------------------------------------
# Relational specifications
# ---------------------------------------------------------------------------


def _ether_type(side: str, aut: P4Automaton) -> "CHdr":
    eth_bits = aut.header_size("ether")
    return CHdr(side, "ether", eth_bits)


def _type_slice(side: str, aut: P4Automaton, type_bits: int):
    eth_bits = aut.header_size("ether")
    return mk_slice(_ether_type(side, aut), eth_bits - type_bits, eth_bits - 1)


def known_type_formula(side: str, aut: P4Automaton, type_bits: int = 16) -> Formula:
    """The EtherType stored on ``side`` is IPv4 or IPv6."""
    type_expr = _type_slice(side, aut, type_bits)
    ipv4 = CLit(Bits.from_int(ETHERTYPE_IPV4 % (1 << type_bits), type_bits))
    ipv6 = CLit(Bits.from_int(ETHERTYPE_IPV6 % (1 << type_bits), type_bits))
    return mk_or([mk_eq(type_expr, ipv4), mk_eq(type_expr, ipv6)])


def external_filter_initial_relation(
    sloppy: P4Automaton,
    strict: P4Automaton,
    reach: ReachabilityAnalysis,
    type_bits: int = 16,
) -> List[GuardedFormula]:
    """Initial relation for the External Filtering study.

    At every reachable template pair where exactly one side accepts, require
    that the accepting side's parsed EtherType is *not* one of the filtered
    (well-known) types.  Proving a pre-bisimulation for this relation shows the
    two parsers agree on every packet an IPv4/IPv6 filter would admit.
    """
    formulas: List[GuardedFormula] = []
    for pair in reach.accept_mismatch_pairs():
        if pair.left.is_accepting():
            condition = mk_not(known_type_formula(LEFT, sloppy, type_bits))
        else:
            condition = mk_not(known_type_formula(RIGHT, strict, type_bits))
        formulas.append(GuardedFormula(pair, condition))
    return formulas


def store_correspondence(
    sloppy: P4Automaton, strict: P4Automaton, type_bits: int = 16
) -> Formula:
    """Store relation for the Relational Verification study.

    Whenever both parsers accept: the EtherTypes agree, and the IP header that
    the type selects was parsed to the same value on both sides.
    """
    ether_eq = mk_eq(
        CHdr(LEFT, "ether", sloppy.header_size("ether")),
        CHdr(RIGHT, "ether", strict.header_size("ether")),
    )
    left_type = _type_slice(LEFT, sloppy, type_bits)
    ipv4 = CLit(Bits.from_int(ETHERTYPE_IPV4 % (1 << type_bits), type_bits))
    ipv6 = CLit(Bits.from_int(ETHERTYPE_IPV6 % (1 << type_bits), type_bits))
    ipv4_eq = mk_eq(
        CHdr(LEFT, "ipv4", sloppy.header_size("ipv4")),
        CHdr(RIGHT, "ipv4", strict.header_size("ipv4")),
    )
    ipv6_eq = mk_eq(
        CHdr(LEFT, "ipv6", sloppy.header_size("ipv6")),
        CHdr(RIGHT, "ipv6", strict.header_size("ipv6")),
    )
    return mk_and(
        [
            ether_eq,
            mk_impl(mk_eq(left_type, ipv4), ipv4_eq),
            mk_impl(mk_eq(left_type, ipv6), ipv6_eq),
        ]
    )
