"""Ethernet stack with an optional VLAN tag (Figure 9): Header Initialization.

A common P4 bug is branching on a header that was never written on some path.
The parser below either extracts a VLAN tag or assigns it a default value
before continuing to IP and UDP; the final state branches on the VLAN field.
Because every path writes ``vlan``, the set of accepted packets is independent
of the initial store, which Leapfrog establishes with a self-comparison whose
two sides use unconstrained, independent initial stores.

``buggy_parser`` omits the default assignment, reintroducing the bug: its
acceptance depends on the uninitialised ``vlan`` header and the independence
check fails with a counterexample.
"""

from __future__ import annotations

from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import P4Automaton

START = "parse_eth"


def vlan_parser(
    eth_bits: int = 112,
    vlan_bits: int = 32,
    ip_bits: int = 160,
    udp_bits: int = 64,
) -> P4Automaton:
    """The Figure 9 parser with a defaulted optional VLAN tag."""
    builder = AutomatonBuilder("ethernet_vlan")
    builder.header("ether", eth_bits).header("vlan", vlan_bits)
    builder.header("ip", ip_bits).header("udp", udp_bits)
    builder.state("parse_eth").extract("ether").select(
        "ether[0:0]", [("0", "default_vlan"), ("1", "parse_vlan")]
    )
    (
        builder.state("default_vlan")
        .extract("ip")
        .assign("vlan", "0b" + "0" * vlan_bits)
        .goto("parse_udp")
    )
    builder.state("parse_vlan").extract("vlan").goto("parse_ip")
    builder.state("parse_ip").extract("ip").goto("parse_udp")
    builder.state("parse_udp").extract("udp").select(
        "vlan[0:3]", [("1111", "reject"), ("_", "accept")]
    )
    return builder.build()


def buggy_parser(
    eth_bits: int = 112,
    vlan_bits: int = 32,
    ip_bits: int = 160,
    udp_bits: int = 64,
) -> P4Automaton:
    """Same stack, but the default-VLAN path forgets the assignment."""
    builder = AutomatonBuilder("ethernet_vlan_buggy")
    builder.header("ether", eth_bits).header("vlan", vlan_bits)
    builder.header("ip", ip_bits).header("udp", udp_bits)
    builder.state("parse_eth").extract("ether").select(
        "ether[0:0]", [("0", "default_vlan"), ("1", "parse_vlan")]
    )
    builder.state("default_vlan").extract("ip").goto("parse_udp")
    builder.state("parse_vlan").extract("vlan").goto("parse_ip")
    builder.state("parse_ip").extract("ip").goto("parse_udp")
    builder.state("parse_udp").extract("udp").select(
        "vlan[0:3]", [("1111", "reject"), ("_", "accept")]
    )
    return builder.build()


def scaled_vlan_parser(scale: int = 4) -> P4Automaton:
    """A narrow variant keeping the same five-state structure (for tests)."""
    return vlan_parser(eth_bits=2 * scale, vlan_bits=scale, ip_bits=2 * scale, udp_bits=scale)


def scaled_buggy_parser(scale: int = 4) -> P4Automaton:
    return buggy_parser(eth_bits=2 * scale, vlan_bits=scale, ip_bits=2 * scale, udp_bits=scale)
