"""Geneve tunnel parsers (RFC 8926, UDP port 6081).

A tunnel endpoint decapsulates Ethernet / IPv4 / UDP / Geneve, where the
Geneve base header announces how many option words follow (bounded here at
two) and which protocol the inner payload speaks:

    eth ipv4 udp geneve opt{0,1,2} inner_eth

Three parsers over that language:

* :func:`reference_parser` — one state per layer and per option word; the
  Geneve state validates the inner protocol (Trans-Ether-Bridging) and
  routes on the option length;
* :func:`fused_parser` — an equivalent variant that extracts UDP and the
  Geneve base as one block, validating destination port, option length and
  inner protocol with a single three-expression select (the one-cycle
  decap lookup of a wide pipeline);
* :func:`broken_parser` — a deliberately inequivalent variant with an
  off-by-one length-miscount: the decap consumes ``optlen - 1`` option
  words instead of ``optlen``, so every packet that actually carries
  options has its inner frame read one option word too early.

Lookup fields sit at fixed offsets: the ethertype and IP protocol at the
trailing bits of their headers, the UDP destination port and the Geneve
option-length/protocol fields at their RFC offsets (scaled down for the
mini widths).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..p4a.bitvec import Bits
from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import P4Automaton, REJECT

START = "ethernet"


@dataclass(frozen=True)
class Widths:
    """Header widths, lookup-field positions and selector values."""

    eth: int
    ip: int
    udp: int
    gnv: int
    opt: int
    inner: int
    ethertype: int     # width of the trailing ethertype field in ``eth``
    eth_ipv4: int
    ipproto: int       # width of the trailing protocol field in ``ip``
    proto_udp: int
    dport_lo: int      # destination-port field inside ``udp`` (inclusive)
    dport_hi: int
    dport_geneve: int
    optlen_lo: int     # option-length field inside ``gnv`` (inclusive)
    optlen_hi: int
    proto_lo: int      # inner-protocol field inside ``gnv`` (inclusive)
    proto_hi: int
    proto_eth: int


FULL = Widths(eth=112, ip=160, udp=64, gnv=64, opt=32, inner=112,
              ethertype=16, eth_ipv4=0x0800, ipproto=8, proto_udp=17,
              dport_lo=16, dport_hi=31, dport_geneve=6081,
              optlen_lo=2, optlen_hi=7,
              proto_lo=16, proto_hi=31, proto_eth=0x6558)

MINI = Widths(eth=6, ip=6, udp=8, gnv=8, opt=6, inner=6,
              ethertype=3, eth_ipv4=0b100, ipproto=3, proto_udp=0b110,
              dport_lo=4, dport_hi=7, dport_geneve=0b1011,
              optlen_lo=0, optlen_hi=1,
              proto_lo=4, proto_hi=6, proto_eth=0b101)


def _pat(value: int, width: int) -> Bits:
    return Bits.from_int(value, width)


def _outer_states(builder: AutomatonBuilder, w: Widths) -> None:
    """Ethernet and IPv4: shared by all three variants."""
    builder.header("eth", w.eth).header("ip", w.ip)
    builder.state("ethernet").extract("eth").select(
        f"eth[{w.eth - w.ethertype}:{w.eth - 1}]",
        [(_pat(w.eth_ipv4, w.ethertype), "ipv4"), ("_", REJECT)],
    )
    builder.state("ipv4").extract("ip").select(
        f"ip[{w.ip - w.ipproto}:{w.ip - 1}]",
        [(_pat(w.proto_udp, w.ipproto), "udp"), ("_", REJECT)],
    )


def _option_states(builder: AutomatonBuilder, w: Widths) -> None:
    builder.header("opt1", w.opt).header("opt2", w.opt)
    builder.header("inner", w.inner)
    builder.state("opt_pair").extract("opt1").goto("opt_last")
    builder.state("opt_last").extract("opt2").goto("inner_eth")
    builder.state("inner_eth").extract("inner").accept()


def _geneve_fields(w: Widths):
    optlen = f"gnv[{w.optlen_lo}:{w.optlen_hi}]"
    proto = f"gnv[{w.proto_lo}:{w.proto_hi}]"
    olw = w.optlen_hi - w.optlen_lo + 1
    prw = w.proto_hi - w.proto_lo + 1
    return optlen, proto, olw, prw


def _geneve_cases(w: Widths, targets) -> list:
    """The (optlen, proto) case table: 0/1/2 option words, bridged payload."""
    _, _, olw, prw = _geneve_fields(w)
    none_t, one_t, two_t = targets
    return [
        ((_pat(0, olw), _pat(w.proto_eth, prw)), none_t),
        ((_pat(1, olw), _pat(w.proto_eth, prw)), one_t),
        ((_pat(2, olw), _pat(w.proto_eth, prw)), two_t),
        (("_", "_"), REJECT),
    ]


def reference_parser(w: Widths = FULL) -> P4Automaton:
    """One state per layer and per option word."""
    builder = AutomatonBuilder(f"geneve_reference_{w.opt}")
    _outer_states(builder, w)
    builder.header("udp_hdr", w.udp).header("gnv", w.gnv)
    builder.state("udp").extract("udp_hdr").select(
        f"udp_hdr[{w.dport_lo}:{w.dport_hi}]",
        [(_pat(w.dport_geneve, w.dport_hi - w.dport_lo + 1), "geneve"),
         ("_", REJECT)],
    )
    optlen, proto, _, _ = _geneve_fields(w)
    builder.state("geneve").extract("gnv").select(
        [optlen, proto],
        _geneve_cases(w, ("inner_eth", "opt_last", "opt_pair")),
    )
    _option_states(builder, w)
    return builder.build()


def fused_parser(w: Widths = FULL) -> P4Automaton:
    """Equivalent variant reading UDP and the Geneve base as one block.

    Sound because the reference UDP state rejects everything except
    destination port 6081: on every accepted packet the Geneve base
    immediately follows the UDP header, so the fused block sees the same
    bits and the three-expression select enforces the same constraints.
    """
    builder = AutomatonBuilder(f"geneve_fused_{w.opt}")
    _outer_states(builder, w)
    builder.header("udpgnv", w.udp + w.gnv)
    dpw = w.dport_hi - w.dport_lo + 1
    _, _, olw, prw = _geneve_fields(w)
    cases = [
        ((_pat(w.dport_geneve, dpw), _pat(0, olw), _pat(w.proto_eth, prw)),
         "inner_eth"),
        ((_pat(w.dport_geneve, dpw), _pat(1, olw), _pat(w.proto_eth, prw)),
         "opt_last"),
        ((_pat(w.dport_geneve, dpw), _pat(2, olw), _pat(w.proto_eth, prw)),
         "opt_pair"),
        (("_", "_", "_"), REJECT),
    ]
    builder.state("udp").extract("udpgnv").select(
        [
            f"udpgnv[{w.dport_lo}:{w.dport_hi}]",
            f"udpgnv[{w.udp + w.optlen_lo}:{w.udp + w.optlen_hi}]",
            f"udpgnv[{w.udp + w.proto_lo}:{w.udp + w.proto_hi}]",
        ],
        cases,
    )
    _option_states(builder, w)
    return builder.build()


def broken_parser(w: Widths = FULL) -> P4Automaton:
    """Inequivalent variant: ``optlen - 1`` option words are consumed.

    The classic off-by-one in a variable-length decap loop — whenever the
    option-length field says N words the parser consumes N-1, so the inner
    frame of every optioned packet is read one option word too early.
    Packets the reference accepts with options are rejected (and the
    correspondingly shifted shapes wrongly accepted).
    """
    builder = AutomatonBuilder(f"geneve_broken_{w.opt}")
    _outer_states(builder, w)
    builder.header("udp_hdr", w.udp).header("gnv", w.gnv)
    builder.state("udp").extract("udp_hdr").select(
        f"udp_hdr[{w.dport_lo}:{w.dport_hi}]",
        [(_pat(w.dport_geneve, w.dport_hi - w.dport_lo + 1), "geneve"),
         ("_", REJECT)],
    )
    optlen, proto, _, _ = _geneve_fields(w)
    # Bug: every case routes one option state too shallow (N-1 words).
    builder.state("geneve").extract("gnv").select(
        [optlen, proto],
        _geneve_cases(w, ("inner_eth", "inner_eth", "opt_last")),
    )
    _option_states(builder, w)
    return builder.build()


def mini_reference() -> P4Automaton:
    return reference_parser(MINI)


def mini_fused() -> P4Automaton:
    return fused_parser(MINI)


def mini_broken() -> P4Automaton:
    return broken_parser(MINI)
