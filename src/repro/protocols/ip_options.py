"""IP options parsers (Figures 11 and 12): the Variable-Length Formats study.

IP options are a type-length-value (TLV) encoding: each option starts with a
one-byte type and a one-byte length, followed by up to six bytes of data.  The
*generic* parser reads a fixed number of option slots, dispatching on the
length byte to a state that extracts the right number of data bytes and shifts
them into the slot's value register.  The *timestamp-specialised* parser adds a
dedicated state for the Timestamp option (type 0x44, length 6) that extracts
its fields individually.  Both accept exactly the same packets.

The figures in the paper use three option slots and 48-bit value registers;
the evaluated version (Table 2, "Variable-length parsing", 30 states) uses two
slots.  Both the slot count and the maximum data length are parameters here so
tests and benchmarks can pick their size.
"""

from __future__ import annotations

from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import ACCEPT, P4Automaton

START = "parse_0"

#: Option type/length pairs that terminate the option list immediately:
#: End-of-Options (0x00) and No-Operation (0x01), both with length 0.
_TERMINATORS = (("0x00", "0x00"), ("0x01", "0x00"))

TIMESTAMP_TYPE = "0x44"


def _value_bits(max_data_bytes: int) -> int:
    return 8 * max_data_bytes


def _next_state(slot: int, slots: int) -> str:
    return ACCEPT if slot + 1 >= slots else f"parse_{slot + 1}"


def generic_parser(slots: int = 2, max_data_bytes: int = 6) -> P4Automaton:
    """The generic TLV parser of Figure 11 with ``slots`` option slots."""
    if slots < 1:
        raise ValueError("need at least one option slot")
    if not 1 <= max_data_bytes <= 31:
        raise ValueError("max_data_bytes out of range")
    builder = AutomatonBuilder(f"ip_options_generic_{slots}x{max_data_bytes}")
    value_bits = _value_bits(max_data_bytes)
    for size in range(1, max_data_bytes + 1):
        builder.header(f"scratch{8 * size}", 8 * size)
    for slot in range(slots):
        builder.header(f"T{slot}", 8).header(f"L{slot}", 8).header(f"v{slot}", value_bits)
    for slot in range(slots):
        _add_generic_slot(builder, slot, slots, max_data_bytes, timestamp=False)
    return builder.build()


def timestamp_parser(slots: int = 2, max_data_bytes: int = 6) -> P4Automaton:
    """The Timestamp-specialised TLV parser of Figure 12.

    Identical to the generic parser except that each slot has an extra,
    higher-priority case for the Timestamp option (type 0x44, length 6) that
    extracts the pointer/overflow/flag/timestamp fields separately.  Requires
    ``max_data_bytes == 6`` so the specialised state consumes the same number
    of bits as the generic length-6 case.
    """
    if max_data_bytes != 6:
        raise ValueError("the Timestamp option is 6 bytes long")
    builder = AutomatonBuilder(f"ip_options_timestamp_{slots}x{max_data_bytes}")
    value_bits = _value_bits(max_data_bytes)
    for size in range(1, max_data_bytes + 1):
        builder.header(f"scratch{8 * size}", 8 * size)
    for slot in range(slots):
        builder.header(f"T{slot}", 8).header(f"L{slot}", 8).header(f"v{slot}", value_bits)
        builder.header(f"ptr{slot}", 8).header(f"over{slot}", 4)
        builder.header(f"flag{slot}", 4).header(f"time{slot}", 32)
    for slot in range(slots):
        _add_generic_slot(builder, slot, slots, max_data_bytes, timestamp=True)
        _add_timestamp_state(builder, slot, slots)
    return builder.build()


def _add_generic_slot(
    builder: AutomatonBuilder, slot: int, slots: int, max_data_bytes: int, timestamp: bool
) -> None:
    """The ``parse_<slot>`` dispatch state plus its per-length data states."""
    cases = [((t, l), ACCEPT) for t, l in _TERMINATORS]
    if timestamp:
        cases.append(((TIMESTAMP_TYPE, "0x06"), f"parse_stamp{slot}"))
    for size in range(1, max_data_bytes + 1):
        cases.append((("_", f"0x{size:02x}"), f"parse_v{slot}_{size}"))
    builder.state(f"parse_{slot}").extract(f"T{slot}").extract(f"L{slot}").select(
        [f"T{slot}", f"L{slot}"], cases
    )
    value_bits = _value_bits(max_data_bytes)
    nxt = _next_state(slot, slots)
    for size in range(1, max_data_bytes + 1):
        data_bits = 8 * size
        state = builder.state(f"parse_v{slot}_{size}").extract(f"scratch{data_bits}")
        if data_bits == value_bits:
            state.assign(f"v{slot}", f"scratch{data_bits}").goto(nxt)
        else:
            state.assign(
                f"v{slot}", f"scratch{data_bits} ++ v{slot}[{data_bits}:{value_bits - 1}]"
            ).goto(nxt)


def _add_timestamp_state(builder: AutomatonBuilder, slot: int, slots: int) -> None:
    nxt = _next_state(slot, slots)
    (
        builder.state(f"parse_stamp{slot}")
        .extract(f"ptr{slot}")
        .extract(f"over{slot}")
        .extract(f"flag{slot}")
        .extract(f"time{slot}")
        .goto(nxt)
    )


def scaled_generic(slots: int = 1, max_data_bytes: int = 2) -> P4Automaton:
    """A small generic parser for tests (one slot, two data lengths)."""
    return generic_parser(slots=slots, max_data_bytes=max_data_bytes)


def broken_generic(slots: int = 2, max_data_bytes: int = 6) -> P4Automaton:
    """A generic parser with an off-by-one in one length case: the length-2
    state extracts only one byte.  Not equivalent to :func:`generic_parser`."""
    if max_data_bytes < 2:
        raise ValueError("need at least two data lengths to inject the bug")
    aut = generic_parser(slots=slots, max_data_bytes=max_data_bytes)
    builder = AutomatonBuilder(f"ip_options_generic_broken_{slots}x{max_data_bytes}")
    for name, size in aut.headers.items():
        builder.header(name, size)
    value_bits = _value_bits(max_data_bytes)
    for slot in range(slots):
        cases = [((t, l), ACCEPT) for t, l in _TERMINATORS]
        for size in range(1, max_data_bytes + 1):
            cases.append((("_", f"0x{size:02x}"), f"parse_v{slot}_{size}"))
        builder.state(f"parse_{slot}").extract(f"T{slot}").extract(f"L{slot}").select(
            [f"T{slot}", f"L{slot}"], cases
        )
        nxt = _next_state(slot, slots)
        for size in range(1, max_data_bytes + 1):
            data_bits = 8 * size
            read_bits = 8 if size == 2 else data_bits  # the injected bug
            state = builder.state(f"parse_v{slot}_{size}").extract(f"scratch{read_bits}")
            if read_bits == value_bits:
                state.assign(f"v{slot}", f"scratch{read_bits}").goto(nxt)
            else:
                state.assign(
                    f"v{slot}", f"scratch{read_bits} ++ v{slot}[{read_bits}:{value_bits - 1}]"
                ).goto(nxt)
    return builder.build()
