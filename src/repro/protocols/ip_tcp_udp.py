"""Stylised IP + TCP/UDP parsers from Figure 7: the State Rearrangement study.

Compilers for hardware pipelines merge and split parser states to optimise
resource usage.  The *reference* parser reads a 64-bit IP prefix and then
branches to a 32-bit UDP state or a 64-bit TCP state.  The *combined* parser
always reads the IP prefix plus the 32 bits that UDP and TCP share, and only
then decides whether another 32 bits of TCP remain.  Leapfrog proves the two
accept the same packets even though they chunk the input differently.
"""

from __future__ import annotations

from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import P4Automaton

REFERENCE_START = "parse_ip"
COMBINED_START = "parse_combined"


def reference_parser(ip_bits: int = 64, udp_bits: int = 32, tcp_bits: int = 64) -> P4Automaton:
    """The reference parser (left of Figure 7): IP, then UDP or TCP."""
    if tcp_bits <= udp_bits:
        raise ValueError("the stylised TCP header must be longer than the UDP header")
    builder = AutomatonBuilder("ip_tcpudp_reference")
    builder.header("ip", ip_bits).header("udp", udp_bits).header("tcp", tcp_bits)
    proto_lo, proto_hi = _protocol_field(ip_bits)
    builder.state("parse_ip").extract("ip").select(
        f"ip[{proto_lo}:{proto_hi}]",
        [("0001", "parse_udp"), ("0000", "parse_tcp")],
    )
    builder.state("parse_udp").extract("udp").accept()
    builder.state("parse_tcp").extract("tcp").accept()
    return builder.build()


def combined_parser(ip_bits: int = 64, udp_bits: int = 32, tcp_bits: int = 64) -> P4Automaton:
    """The state-rearranged parser (right of Figure 7): IP plus the common
    32-bit prefix in one state, then the TCP suffix if needed."""
    if tcp_bits <= udp_bits:
        raise ValueError("the stylised TCP header must be longer than the UDP header")
    builder = AutomatonBuilder("ip_tcpudp_combined")
    suffix_bits = tcp_bits - udp_bits
    builder.header("ip", ip_bits).header("pref", udp_bits).header("suff", suffix_bits)
    proto_lo, proto_hi = _protocol_field(ip_bits)
    builder.state("parse_combined").extract("ip").extract("pref").select(
        f"ip[{proto_lo}:{proto_hi}]",
        [("0001", "accept"), ("0000", "parse_suff")],
    )
    builder.state("parse_suff").extract("suff").accept()
    return builder.build()


def _protocol_field(ip_bits: int) -> tuple:
    """Bit range of the 4-bit protocol selector inside the stylised IP header.

    Figure 7 uses bits 40..43 of a 64-bit header; scaled variants keep the
    selector in the same relative position.
    """
    lo = (40 * ip_bits) // 64
    return lo, lo + 3


def scaled_reference(scale: int = 8) -> P4Automaton:
    """A narrower reference parser (headers divided by ``64 // scale``)."""
    return reference_parser(ip_bits=scale * 8, udp_bits=scale * 4, tcp_bits=scale * 8)


def scaled_combined(scale: int = 8) -> P4Automaton:
    return combined_parser(ip_bits=scale * 8, udp_bits=scale * 4, tcp_bits=scale * 8)


def broken_combined(ip_bits: int = 64, udp_bits: int = 32, tcp_bits: int = 64) -> P4Automaton:
    """A wrong rearrangement: the UDP branch forgets that the common prefix was
    already consumed and reads it again.  Not equivalent to the reference."""
    builder = AutomatonBuilder("ip_tcpudp_combined_broken")
    suffix_bits = tcp_bits - udp_bits
    builder.header("ip", ip_bits).header("pref", udp_bits).header("suff", suffix_bits)
    proto_lo, proto_hi = _protocol_field(ip_bits)
    builder.state("parse_combined").extract("ip").extract("pref").select(
        f"ip[{proto_lo}:{proto_hi}]",
        [("0001", "parse_again"), ("0000", "parse_suff")],
    )
    builder.state("parse_again").extract("pref").accept()
    builder.state("parse_suff").extract("suff").accept()
    return builder.build()
