"""IPv6 extension-header chain parsers (hop-by-hop / routing / fragment order).

RFC 8200 recommends a fixed extension-header order: Hop-by-Hop Options first
(and only first), then Routing, then Fragment, then the upper-layer header.
The parsers here accept exactly the canonically-ordered chains — every header
optional, each appearing at most once, TCP or UDP as the upper layer:

    ipv6 [hbh] [routing] [fragment] (tcp | udp)

Three parsers over that language:

* :func:`reference_parser` — one state per extension header; the chain order
  is enforced by which next-header codes each state accepts;
* :func:`unrolled_parser` — an equivalent variant that duplicates the Routing
  state per predecessor (straight from the base header vs. after Hop-by-Hop),
  the state-rearrangement shape front-end compilers produce when they inline
  per-path parsing;
* :func:`broken_parser` — a deliberately inequivalent variant that also
  accepts Hop-by-Hop *after* Routing, the exact ordering violation RFC 8200
  forbids.

Next-header codes use the real IANA values (0, 43, 44, 6, 17) at every scale;
the next-header lookup field occupies the trailing bits of each header.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..p4a.bitvec import Bits
from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import P4Automaton, REJECT

START = "ipv6"

NEXT_HBH = 0
NEXT_ROUTING = 43
NEXT_FRAGMENT = 44
NEXT_TCP = 6
NEXT_UDP = 17


@dataclass(frozen=True)
class Widths:
    """Header bit widths for one scale of the parsers (8-bit next-header)."""

    base: int
    hbh: int
    routing: int
    fragment: int
    tcp: int
    udp: int
    next_header: int = 8


FULL = Widths(base=320, hbh=64, routing=64, fragment=64, tcp=160, udp=64)

MINI = Widths(base=16, hbh=8, routing=8, fragment=8, tcp=8, udp=8)


def _next_select(header: str, bits: int, w: Widths, targets):
    """A select on the trailing next-header field: [(code, target), ...]."""
    expr = f"{header}[{bits - w.next_header}:{bits - 1}]"
    cases = [(Bits.from_int(code, w.next_header), target) for code, target in targets]
    cases.append(("_", REJECT))
    return expr, cases


def _upper_states(builder: AutomatonBuilder, w: Widths) -> None:
    builder.state("tcp").extract("tcp_hdr").accept()
    builder.state("udp").extract("udp_hdr").accept()


def _declare_headers(builder: AutomatonBuilder, w: Widths) -> None:
    builder.header("base", w.base).header("hbh_hdr", w.hbh)
    builder.header("frag_hdr", w.fragment)
    builder.header("tcp_hdr", w.tcp).header("udp_hdr", w.udp)


def reference_parser(w: Widths = FULL) -> P4Automaton:
    """One state per extension header, canonical order enforced by selects."""
    builder = AutomatonBuilder(f"ipv6_ext_reference_{w.base}")
    _declare_headers(builder, w)
    builder.header("rt_hdr", w.routing)
    builder.state("ipv6").extract("base").select(*_next_select("base", w.base, w, [
        (NEXT_HBH, "hbh"), (NEXT_ROUTING, "routing"), (NEXT_FRAGMENT, "fragment"),
        (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
    ]))
    builder.state("hbh").extract("hbh_hdr").select(*_next_select("hbh_hdr", w.hbh, w, [
        (NEXT_ROUTING, "routing"), (NEXT_FRAGMENT, "fragment"),
        (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
    ]))
    builder.state("routing").extract("rt_hdr").select(*_next_select("rt_hdr", w.routing, w, [
        (NEXT_FRAGMENT, "fragment"), (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
    ]))
    builder.state("fragment").extract("frag_hdr").select(
        *_next_select("frag_hdr", w.fragment, w, [(NEXT_TCP, "tcp"), (NEXT_UDP, "udp")])
    )
    _upper_states(builder, w)
    return builder.build()


def unrolled_parser(w: Widths = FULL) -> P4Automaton:
    """Equivalent variant with the Routing state duplicated per predecessor.

    ``routing_direct`` is reached straight from the base header and
    ``routing_after_hbh`` after a Hop-by-Hop header; both accept the same
    successors, so the language is unchanged while the automaton shape (and
    the reachable template pairs the checker must relate) differs.
    """
    builder = AutomatonBuilder(f"ipv6_ext_unrolled_{w.base}")
    _declare_headers(builder, w)
    builder.header("rt_direct_hdr", w.routing).header("rt_hbh_hdr", w.routing)
    builder.state("ipv6").extract("base").select(*_next_select("base", w.base, w, [
        (NEXT_HBH, "hbh"), (NEXT_ROUTING, "routing_direct"), (NEXT_FRAGMENT, "fragment"),
        (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
    ]))
    builder.state("hbh").extract("hbh_hdr").select(*_next_select("hbh_hdr", w.hbh, w, [
        (NEXT_ROUTING, "routing_after_hbh"), (NEXT_FRAGMENT, "fragment"),
        (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
    ]))
    for state, hdr in (("routing_direct", "rt_direct_hdr"), ("routing_after_hbh", "rt_hbh_hdr")):
        builder.state(state).extract(hdr).select(*_next_select(hdr, w.routing, w, [
            (NEXT_FRAGMENT, "fragment"), (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
        ]))
    builder.state("fragment").extract("frag_hdr").select(
        *_next_select("frag_hdr", w.fragment, w, [(NEXT_TCP, "tcp"), (NEXT_UDP, "udp")])
    )
    _upper_states(builder, w)
    return builder.build()


def broken_parser(w: Widths = FULL) -> P4Automaton:
    """Inequivalent variant: the "Hop-by-Hop only first" rule is not enforced.

    Both the routing and the fragment states gain a next-header case for
    code 0, so chains like ``ipv6 → routing → hbh → tcp`` and
    ``ipv6 → fragment → hbh → udp`` — which RFC 8200 and the reference
    parser reject — are accepted.
    """
    builder = AutomatonBuilder(f"ipv6_ext_broken_{w.base}")
    _declare_headers(builder, w)
    builder.header("rt_hdr", w.routing).header("hbh_late_hdr", w.hbh)
    builder.state("ipv6").extract("base").select(*_next_select("base", w.base, w, [
        (NEXT_HBH, "hbh"), (NEXT_ROUTING, "routing"), (NEXT_FRAGMENT, "fragment"),
        (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
    ]))
    builder.state("hbh").extract("hbh_hdr").select(*_next_select("hbh_hdr", w.hbh, w, [
        (NEXT_ROUTING, "routing"), (NEXT_FRAGMENT, "fragment"),
        (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
    ]))
    # Bug: code 0 (Hop-by-Hop) is accepted after Routing and after Fragment.
    builder.state("routing").extract("rt_hdr").select(*_next_select("rt_hdr", w.routing, w, [
        (NEXT_HBH, "hbh_late"), (NEXT_FRAGMENT, "fragment"),
        (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
    ]))
    builder.state("hbh_late").extract("hbh_late_hdr").select(
        *_next_select("hbh_late_hdr", w.hbh, w, [
            (NEXT_FRAGMENT, "fragment"), (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
        ])
    )
    builder.state("fragment").extract("frag_hdr").select(
        *_next_select("frag_hdr", w.fragment, w, [
            (NEXT_HBH, "hbh_late"), (NEXT_TCP, "tcp"), (NEXT_UDP, "udp"),
        ])
    )
    _upper_states(builder, w)
    return builder.build()


def mini_reference() -> P4Automaton:
    return reference_parser(MINI)


def mini_unrolled() -> P4Automaton:
    return unrolled_parser(MINI)


def mini_broken() -> P4Automaton:
    return broken_parser(MINI)
