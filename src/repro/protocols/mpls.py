"""MPLS/UDP parsers from Figure 1: the Speculative Extraction case study.

The *reference* parser reads one 32-bit MPLS label at a time, looping until it
sees the bottom-of-stack bit (bit 23), then reads a 64-bit UDP header.  The
*vectorized* parser speculatively reads two labels per iteration; when the
speculation overshoots (the first label was already the bottom of the stack)
it reinterprets the second label as the first half of the UDP header.

Both parsers accept the same packets; Leapfrog proves it.  Scaled variants
with narrower labels are provided so the same structure can be exercised
cheaply in tests and benchmarks.
"""

from __future__ import annotations

from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import P4Automaton

REFERENCE_START = "q1"
VECTORIZED_START = "q3"


def reference_parser(label_bits: int = 32, udp_bits: int = 64, bos_bit: int = 23) -> P4Automaton:
    """The reference MPLS/UDP parser (states q1, q2 of Figure 1)."""
    if not 0 <= bos_bit < label_bits:
        raise ValueError("bottom-of-stack bit must fall inside the label")
    builder = AutomatonBuilder(f"mpls_reference_{label_bits}")
    builder.header("mpls", label_bits).header("udp", udp_bits)
    builder.state("q1").extract("mpls").select(
        f"mpls[{bos_bit}:{bos_bit}]", [("0", "q1"), ("1", "q2")]
    )
    builder.state("q2").extract("udp").accept()
    return builder.build()


def vectorized_parser(label_bits: int = 32, udp_bits: int = 64, bos_bit: int = 23) -> P4Automaton:
    """The vectorized MPLS/UDP parser (states q3, q4, q5 of Figure 1).

    ``udp_bits`` must be twice ``label_bits`` so that the overshot label plus a
    ``label_bits``-wide remainder reassemble into a full UDP header, exactly as
    in the paper's example (32-bit labels, 64-bit UDP).
    """
    if udp_bits != 2 * label_bits:
        raise ValueError("the vectorized parser requires udp_bits == 2 * label_bits")
    if not 0 <= bos_bit < label_bits:
        raise ValueError("bottom-of-stack bit must fall inside the label")
    builder = AutomatonBuilder(f"mpls_vectorized_{label_bits}")
    builder.header("old", label_bits).header("new", label_bits)
    builder.header("tmp", label_bits).header("udp", udp_bits)
    builder.state("q3").extract("old").extract("new").select(
        [f"old[{bos_bit}:{bos_bit}]", f"new[{bos_bit}:{bos_bit}]"],
        [
            (("0", "0"), "q3"),
            (("0", "1"), "q4"),
            (("1", "_"), "q5"),
        ],
    )
    builder.state("q4").extract("udp").accept()
    builder.state("q5").extract("tmp").assign("udp", "new ++ tmp").accept()
    return builder.build()


def scaled_reference(label_bits: int = 4) -> P4Automaton:
    """A structurally identical reference parser with small labels (for tests)."""
    return reference_parser(label_bits=label_bits, udp_bits=2 * label_bits, bos_bit=label_bits - 1)


def scaled_vectorized(label_bits: int = 4) -> P4Automaton:
    """A structurally identical vectorized parser with small labels (for tests)."""
    return vectorized_parser(label_bits=label_bits, udp_bits=2 * label_bits, bos_bit=label_bits - 1)


def broken_vectorized(label_bits: int = 4) -> P4Automaton:
    """A deliberately wrong vectorized parser: the overshoot branch reads a
    single bit instead of the remaining half of the UDP header, so it accepts
    packets that are ``label_bits - 1`` bits too short.  Used by negative
    tests of the checker and the counterexample search."""
    udp_bits = 2 * label_bits
    bos = label_bits - 1
    builder = AutomatonBuilder(f"mpls_vectorized_broken_{label_bits}")
    builder.header("old", label_bits).header("new", label_bits)
    builder.header("udp", udp_bits).header("stub", 1)
    builder.state("q3").extract("old").extract("new").select(
        [f"old[{bos}:{bos}]", f"new[{bos}:{bos}]"],
        [
            (("0", "0"), "q3"),
            (("0", "1"), "q4"),
            (("1", "_"), "q5"),
        ],
    )
    builder.state("q4").extract("udp").accept()
    # Bug: reads one bit instead of the remaining label_bits bits of UDP.
    builder.state("q5").extract("stub").accept()
    return builder.build()
