"""802.1ad QinQ double-tagging parsers (service-provider edge).

A provider-bridge ingress port accepts untagged customer frames, single
C-tagged frames (TPID 0x8100) and properly double-tagged frames, where an
S-tag (TPID 0x88A8) **must** be followed by a C-tag before the IPv4 payload:

    eth [stag ctag | ctag] ipv4

Three parsers over that language:

* :func:`reference_parser` — one state per tag, the S-tag state admitting only
  a C-tag successor as 802.1ad requires;
* :func:`fused_parser` — an equivalent variant that extracts both tags of a
  double-tagged frame as one block and validates the two inner TPIDs with a
  single two-expression select (the single-cycle lookup a wide parser
  pipeline performs);
* :func:`broken_parser` — a deliberately inequivalent variant with the classic
  sloppy-QinQ bug: the S-tag state also admits a bare IPv4 successor, so
  S-tagged frames with no C-tag are wrongly accepted.

The TPID/ethertype lookup field occupies the trailing bits of each header.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..p4a.bitvec import Bits
from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import P4Automaton, REJECT

START = "ethernet"


@dataclass(frozen=True)
class Widths:
    """Header and lookup-field bit widths plus the TPID selector values."""

    eth: int
    tag: int
    ip: int
    tpid: int
    tpid_stag: int
    tpid_ctag: int
    eth_ipv4: int


FULL = Widths(eth=112, tag=32, ip=160, tpid=16,
              tpid_stag=0x88A8, tpid_ctag=0x8100, eth_ipv4=0x0800)

MINI = Widths(eth=8, tag=12, ip=8, tpid=8,
              tpid_stag=0xA8, tpid_ctag=0x81, eth_ipv4=0x08)


def _tpid_slice(header: str, bits: int, w: Widths) -> str:
    return f"{header}[{bits - w.tpid}:{bits - 1}]"


def _pat(value: int, w: Widths) -> Bits:
    return Bits.from_int(value, w.tpid)


def _outer_state(builder: AutomatonBuilder, w: Widths, stag_target: str) -> None:
    builder.header("eth", w.eth).header("ip", w.ip)
    builder.state("ethernet").extract("eth").select(
        _tpid_slice("eth", w.eth, w),
        [
            (_pat(w.tpid_stag, w), stag_target),
            (_pat(w.tpid_ctag, w), "ctag"),
            (_pat(w.eth_ipv4, w), "ipv4"),
            ("_", REJECT),
        ],
    )


def _ctag_and_payload(builder: AutomatonBuilder, w: Widths) -> None:
    builder.header("ctag_hdr", w.tag)
    builder.state("ctag").extract("ctag_hdr").select(
        _tpid_slice("ctag_hdr", w.tag, w),
        [(_pat(w.eth_ipv4, w), "ipv4"), ("_", REJECT)],
    )
    builder.state("ipv4").extract("ip").accept()


def reference_parser(w: Widths = FULL) -> P4Automaton:
    """One state per tag; the S-tag admits only a C-tag successor."""
    builder = AutomatonBuilder(f"qinq_reference_{w.tag}")
    _outer_state(builder, w, "stag")
    builder.header("stag_hdr", w.tag)
    builder.state("stag").extract("stag_hdr").select(
        _tpid_slice("stag_hdr", w.tag, w),
        [(_pat(w.tpid_ctag, w), "ctag"), ("_", REJECT)],
    )
    _ctag_and_payload(builder, w)
    return builder.build()


def fused_parser(w: Widths = FULL) -> P4Automaton:
    """Equivalent variant reading both tags of a double-tagged frame at once.

    Sound because the reference S-tag state rejects everything except a C-tag
    continuation: on every accepted packet the two tags are adjacent, so the
    fused block sees exactly the same bits and the two-expression select
    enforces exactly the same TPID constraints.
    """
    builder = AutomatonBuilder(f"qinq_fused_{w.tag}")
    _outer_state(builder, w, "double_tag")
    builder.header("tags", 2 * w.tag)
    builder.state("double_tag").extract("tags").select(
        [
            f"tags[{w.tag - w.tpid}:{w.tag - 1}]",          # S-tag's inner TPID
            f"tags[{2 * w.tag - w.tpid}:{2 * w.tag - 1}]",  # C-tag's ethertype
        ],
        [
            ((_pat(w.tpid_ctag, w), _pat(w.eth_ipv4, w)), "ipv4"),
            (("_", "_"), REJECT),
        ],
    )
    _ctag_and_payload(builder, w)
    return builder.build()


def broken_parser(w: Widths = FULL) -> P4Automaton:
    """Inequivalent variant: the S-tag state also admits bare IPv4.

    802.1ad requires an S-tag to be followed by a C-tag; this parser lets the
    payload follow the S-tag directly, accepting single-tagged provider frames
    the reference rejects.
    """
    builder = AutomatonBuilder(f"qinq_broken_{w.tag}")
    _outer_state(builder, w, "stag")
    builder.header("stag_hdr", w.tag)
    # Bug: the eth_ipv4 case should not exist.
    builder.state("stag").extract("stag_hdr").select(
        _tpid_slice("stag_hdr", w.tag, w),
        [
            (_pat(w.tpid_ctag, w), "ctag"),
            (_pat(w.eth_ipv4, w), "ipv4"),
            ("_", REJECT),
        ],
    )
    _ctag_and_payload(builder, w)
    return builder.build()


def mini_reference() -> P4Automaton:
    return reference_parser(MINI)


def mini_fused() -> P4Automaton:
    return fused_parser(MINI)


def mini_broken() -> P4Automaton:
    return broken_parser(MINI)
