"""IPv6 Segment Routing (SRv6) parsers (service-provider core).

An SR-capable core router parses Ethernet, IPv6, and — when the IPv6
next-header announces routing extension 43 — a Segment Routing Header
(RFC 8754): an 8-byte base carrying the routing type and the Last Entry
index, followed by the segment list (one 128-bit IPv6 address per entry,
bounded here at two entries):

    eth ipv6 [srh seg{1,2}] upper

Three parsers over that language:

* :func:`reference_parser` — one state per segment-list entry; the SRH
  state admits only routing type 4 (Segment Routing), as RFC 8754
  requires, and routes on Last Entry to the right unroll depth;
* :func:`fused_parser` — an equivalent variant that extracts the whole
  segment list of a packet as one block sized by Last Entry (the one-cycle
  lookup a wide parser pipeline performs for a known-length stack);
* :func:`broken_parser` — a deliberately inequivalent variant that drops
  the routing-type check: any routing extension header with a plausible
  Last Entry is treated as an SRH, so e.g. legacy Type 0 source-routed
  packets are wrongly accepted.

Lookup fields sit at fixed offsets inside their headers (the ethertype and
next-header fields at the trailing bits, the SRH fields at their RFC
offsets scaled down for the mini widths).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..p4a.bitvec import Bits
from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import P4Automaton, REJECT

START = "ethernet"


@dataclass(frozen=True)
class Widths:
    """Header widths, lookup-field positions and selector values."""

    eth: int
    ip: int
    srh: int
    seg: int
    upper: int
    ethertype: int    # width of the trailing ethertype field in ``eth``
    eth_ipv6: int
    nexthdr: int      # width of the trailing next-header field in ``ip``
    nh_srh: int
    rt_lo: int        # routing-type field inside ``srh`` (inclusive slice)
    rt_hi: int
    rt_srv6: int
    le_lo: int        # Last Entry field inside ``srh`` (inclusive slice)
    le_hi: int


FULL = Widths(eth=112, ip=320, srh=64, seg=128, upper=32,
              ethertype=16, eth_ipv6=0x86DD, nexthdr=8, nh_srh=43,
              rt_lo=16, rt_hi=23, rt_srv6=4, le_lo=32, le_hi=39)

MINI = Widths(eth=6, ip=8, srh=8, seg=10, upper=6,
              ethertype=3, eth_ipv6=0b110, nexthdr=3, nh_srh=0b101,
              rt_lo=2, rt_hi=3, rt_srv6=0b10, le_lo=4, le_hi=4)


def _pat(value: int, width: int) -> Bits:
    return Bits.from_int(value, width)


def _outer_states(builder: AutomatonBuilder, w: Widths) -> None:
    """Ethernet and IPv6: shared by all three variants."""
    builder.header("eth", w.eth).header("ip", w.ip).header("upper", w.upper)
    builder.state("ethernet").extract("eth").select(
        f"eth[{w.eth - w.ethertype}:{w.eth - 1}]",
        [(_pat(w.eth_ipv6, w.ethertype), "ipv6"), ("_", REJECT)],
    )
    # A non-routing next header skips the SRH and parses the upper layer.
    builder.state("ipv6").extract("ip").select(
        f"ip[{w.ip - w.nexthdr}:{w.ip - 1}]",
        [(_pat(w.nh_srh, w.nexthdr), "srh"), ("_", "upper")],
    )
    builder.state("upper").extract("upper").accept()


def _srh_slices(w: Widths):
    rt = f"srh[{w.rt_lo}:{w.rt_hi}]"
    le = f"srh[{w.le_lo}:{w.le_hi}]"
    return rt, le, w.rt_hi - w.rt_lo + 1, w.le_hi - w.le_lo + 1


def reference_parser(w: Widths = FULL) -> P4Automaton:
    """One state per segment; only routing type 4 is admitted as an SRH."""
    builder = AutomatonBuilder(f"srv6_reference_{w.seg}")
    _outer_states(builder, w)
    rt, le, rtw, lew = _srh_slices(w)
    builder.header("srh", w.srh).header("seg1", w.seg).header("seg2", w.seg)
    builder.state("srh").extract("srh").select(
        [rt, le],
        [
            ((_pat(w.rt_srv6, rtw), _pat(0, lew)), "seg_last"),
            ((_pat(w.rt_srv6, rtw), _pat(1, lew)), "seg_pair"),
            (("_", "_"), REJECT),
        ],
    )
    builder.state("seg_pair").extract("seg1").goto("seg_last")
    builder.state("seg_last").extract("seg2").goto("upper")
    return builder.build()


def fused_parser(w: Widths = FULL) -> P4Automaton:
    """Equivalent variant reading the whole segment list as one block.

    Sound because the reference consumes exactly ``(Last Entry + 1)``
    segment-sized extractions with no select in between: a single block of
    the same total width sees the same bits and continues to the same
    upper-layer state.
    """
    builder = AutomatonBuilder(f"srv6_fused_{w.seg}")
    _outer_states(builder, w)
    rt, le, rtw, lew = _srh_slices(w)
    builder.header("srh", w.srh)
    builder.header("segs1", w.seg).header("segs2", 2 * w.seg)
    builder.state("srh").extract("srh").select(
        [rt, le],
        [
            ((_pat(w.rt_srv6, rtw), _pat(0, lew)), "seg_block1"),
            ((_pat(w.rt_srv6, rtw), _pat(1, lew)), "seg_block2"),
            (("_", "_"), REJECT),
        ],
    )
    builder.state("seg_block1").extract("segs1").goto("upper")
    builder.state("seg_block2").extract("segs2").goto("upper")
    return builder.build()


def broken_parser(w: Widths = FULL) -> P4Automaton:
    """Inequivalent variant: the routing-type check is gone.

    RFC 8754 reserves routing type 4 for segment routing; this parser
    routes on Last Entry alone, so any routing extension header — e.g. a
    deprecated Type 0 source route — is parsed as if it were an SRH and
    the packet wrongly accepted.
    """
    builder = AutomatonBuilder(f"srv6_broken_{w.seg}")
    _outer_states(builder, w)
    _, le, _, lew = _srh_slices(w)
    builder.header("srh", w.srh).header("seg1", w.seg).header("seg2", w.seg)
    # Bug: the select no longer inspects the routing-type field.
    builder.state("srh").extract("srh").select(
        le,
        [
            (_pat(0, lew), "seg_last"),
            (_pat(1, lew), "seg_pair"),
            ("_", REJECT),
        ],
    )
    builder.state("seg_pair").extract("seg1").goto("seg_last")
    builder.state("seg_last").extract("seg2").goto("upper")
    return builder.build()


def mini_reference() -> P4Automaton:
    return reference_parser(MINI)


def mini_fused() -> P4Automaton:
    return fused_parser(MINI)


def mini_broken() -> P4Automaton:
    return broken_parser(MINI)
