"""Tiny automata used throughout the tests and the paper's Figure 5 example.

``IncrementalBits`` reads a two-bit packet one bit at a time; ``BigBits`` reads
both bits at once.  The two accept the same language, which is the first
equivalence proved in the paper's Coq listing (Figure 5).  Checked variants
additionally require the first bit to be 1, and deliberately *wrong* variants
are provided for negative tests of the checker and the counterexample search.
"""

from __future__ import annotations

from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import ACCEPT, P4Automaton, REJECT

INCREMENTAL_START = "Start"
BIG_START = "Parse"


def incremental_bits() -> P4Automaton:
    """Reads two bits in two states and accepts unconditionally."""
    builder = AutomatonBuilder("IncrementalBits")
    builder.header("bit0", 1).header("bit1", 1)
    builder.state("Start").extract("bit0").goto("Next")
    builder.state("Next").extract("bit1").accept()
    return builder.build()


def big_bits() -> P4Automaton:
    """Reads two bits in a single state and accepts unconditionally."""
    builder = AutomatonBuilder("BigBits")
    builder.header("bits", 2)
    builder.state("Parse").extract("bits").accept()
    return builder.build()


def incremental_bits_checked() -> P4Automaton:
    """Accepts two-bit packets whose first bit is 1, reading bit by bit."""
    builder = AutomatonBuilder("IncrementalBitsChecked")
    builder.header("bit0", 1).header("bit1", 1)
    builder.state("Start").extract("bit0").select("bit0", [("1", "Next"), ("_", REJECT)])
    builder.state("Next").extract("bit1").accept()
    return builder.build()


def big_bits_checked() -> P4Automaton:
    """Accepts two-bit packets whose first bit is 1, reading both bits at once."""
    builder = AutomatonBuilder("BigBitsChecked")
    builder.header("bits", 2)
    builder.state("Parse").extract("bits").select("bits[0:0]", [("1", ACCEPT), ("_", REJECT)])
    return builder.build()


def big_bits_wrong_length() -> P4Automaton:
    """Accepts three-bit packets; *not* equivalent to ``incremental_bits``."""
    builder = AutomatonBuilder("BigBitsWrongLength")
    builder.header("bits", 3)
    builder.state("Parse").extract("bits").accept()
    return builder.build()


def big_bits_wrong_check() -> P4Automaton:
    """Accepts two-bit packets whose first bit is 0; not equivalent to the
    checked variants."""
    builder = AutomatonBuilder("BigBitsWrongCheck")
    builder.header("bits", 2)
    builder.state("Parse").extract("bits").select("bits[0:0]", [("0", ACCEPT), ("_", REJECT)])
    return builder.build()


def store_dependent() -> P4Automaton:
    """A parser whose acceptance depends on an uninitialised header.

    It extracts one bit but branches on a header that is never written, so the
    set of accepted packets depends on the initial store — the bug pattern the
    Header Initialization case study is about.
    """
    builder = AutomatonBuilder("StoreDependent")
    builder.header("data", 1).header("ghost", 1)
    builder.state("Start").extract("data").select("ghost", [("1", ACCEPT), ("_", REJECT)])
    return builder.build()
