"""VXLAN-over-UDP and GRE tunnel encapsulation parsers (datacenter underlay).

A top-of-rack underlay parser sees plain IPv4 traffic, VXLAN-encapsulated
overlay frames (UDP destination port 4789 followed by a VXLAN header and an
inner Ethernet/IPv4 stack) and GRE tunnels (IP protocol 47 followed by a GRE
header whose protocol field announces the inner IPv4 payload).

Three parsers over that language:

* :func:`reference_parser` — one state per header, the natural translation of
  the protocol specifications;
* :func:`fused_parser` — an equivalent *decap-fused* variant: the VXLAN header
  and the inner Ethernet header are extracted as one block (likewise GRE and
  its inner IPv4), the way wide-datapath hardware parsers speculate across
  unconditional header boundaries.  Leapfrog proves the fusion sound;
* :func:`broken_parser` — a deliberately inequivalent variant that skips the
  inner-Ethernet ethertype check after VXLAN decapsulation, accepting overlay
  frames whose inner payload is not IPv4.  Used by negative tests and the
  differential oracle smoke.

Lookup fields occupy the trailing bits of their header (a layout
simplification: field position does not affect acceptance, which is all the
equivalence checker compares).  ``MINI`` widths keep the same structure small
enough for quick symbolic checks; ``FULL`` widths match the real headers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..p4a.bitvec import Bits
from ..p4a.builder import AutomatonBuilder
from ..p4a.syntax import ACCEPT, P4Automaton, REJECT

START = "ethernet"


@dataclass(frozen=True)
class Widths:
    """Header and lookup-field bit widths for one scale of the parsers."""

    eth: int
    eth_type: int
    ip: int
    ip_proto: int
    udp: int
    udp_port: int
    vxlan: int
    gre: int
    gre_proto: int
    #: Selector values, truncated to the matching field width.
    eth_ipv4: int
    proto_udp: int
    proto_gre: int
    vxlan_port: int


FULL = Widths(
    eth=112, eth_type=16, ip=160, ip_proto=8, udp=64, udp_port=16,
    vxlan=64, gre=32, gre_proto=16,
    eth_ipv4=0x0800, proto_udp=17, proto_gre=47, vxlan_port=4789,
)

MINI = Widths(
    eth=8, eth_type=8, ip=12, ip_proto=8, udp=8, udp_port=8,
    vxlan=8, gre=8, gre_proto=8,
    eth_ipv4=0x08, proto_udp=17, proto_gre=47, vxlan_port=0x12,
)


def _trailing(header: str, header_bits: int, field_bits: int) -> str:
    """Slice shorthand for a lookup field in the trailing bits of a header."""
    return f"{header}[{header_bits - field_bits}:{header_bits - 1}]"


def _pat(value: int, width: int) -> Bits:
    return Bits.from_int(value, width)


def _common_prefix(builder: AutomatonBuilder, w: Widths) -> None:
    """States shared by all three variants: ethernet → ipv4 → udp/gre fork."""
    builder.header("eth", w.eth).header("ip", w.ip).header("udp", w.udp)
    builder.state("ethernet").extract("eth").select(
        _trailing("eth", w.eth, w.eth_type),
        [(_pat(w.eth_ipv4, w.eth_type), "ipv4"), ("_", REJECT)],
    )
    builder.state("ipv4").extract("ip").select(
        _trailing("ip", w.ip, w.ip_proto),
        [
            (_pat(w.proto_udp, w.ip_proto), "udp"),
            (_pat(w.proto_gre, w.ip_proto), "gre"),
            ("_", ACCEPT),
        ],
    )
    builder.state("udp").extract("udp").select(
        _trailing("udp", w.udp, w.udp_port),
        [(_pat(w.vxlan_port, w.udp_port), "vxlan"), ("_", ACCEPT)],
    )


def reference_parser(w: Widths = FULL) -> P4Automaton:
    """One state per header: the natural tunnel-decapsulation parser."""
    builder = AutomatonBuilder(f"vxlan_gre_reference_{w.eth}")
    _common_prefix(builder, w)
    builder.header("vxlan", w.vxlan).header("gre", w.gre)
    builder.header("inner_eth", w.eth).header("inner_ip", w.ip)
    builder.state("vxlan").extract("vxlan").goto("inner_ethernet")
    builder.state("inner_ethernet").extract("inner_eth").select(
        _trailing("inner_eth", w.eth, w.eth_type),
        [(_pat(w.eth_ipv4, w.eth_type), "inner_ipv4"), ("_", REJECT)],
    )
    builder.state("gre").extract("gre").select(
        _trailing("gre", w.gre, w.gre_proto),
        [(_pat(w.eth_ipv4, w.gre_proto), "inner_ipv4"), ("_", REJECT)],
    )
    builder.state("inner_ipv4").extract("inner_ip").accept()
    return builder.build()


def fused_parser(w: Widths = FULL) -> P4Automaton:
    """Equivalent decap-fused variant.

    The VXLAN header carries no branching information, so the fused parser
    extracts VXLAN plus the inner Ethernet header as a single block and
    selects on the inner ethertype slice directly; the GRE state likewise
    extracts GRE plus the inner IPv4 header at once and validates the GRE
    protocol field afterwards.  Both fusions preserve the language: every
    non-reject path through the reference states extracts exactly the same
    bits before the next branch.
    """
    builder = AutomatonBuilder(f"vxlan_gre_fused_{w.eth}")
    _common_prefix(builder, w)
    builder.header("vxlan_decap", w.vxlan + w.eth)
    builder.header("gre_decap", w.gre + w.ip)
    builder.header("inner_ip", w.ip)
    # Inner ethertype sits in the trailing bits of the fused block.
    builder.state("vxlan").extract("vxlan_decap").select(
        _trailing("vxlan_decap", w.vxlan + w.eth, w.eth_type),
        [(_pat(w.eth_ipv4, w.eth_type), "inner_ipv4"), ("_", REJECT)],
    )
    # The GRE protocol field sits right before the fused inner IPv4 payload.
    builder.state("gre").extract("gre_decap").select(
        f"gre_decap[{w.gre - w.gre_proto}:{w.gre - 1}]",
        [(_pat(w.eth_ipv4, w.gre_proto), ACCEPT), ("_", REJECT)],
    )
    builder.state("inner_ipv4").extract("inner_ip").accept()
    return builder.build()


def broken_parser(w: Widths = FULL) -> P4Automaton:
    """Inequivalent variant: decapsulation skips payload-type validation.

    Both tunnel paths extract their headers and fall straight through to the
    inner IPv4 state — the VXLAN path never checks the inner Ethernet
    ethertype and the GRE path never checks the GRE protocol field — so
    tunnelled frames carrying a non-IPv4 payload of the right length are
    wrongly accepted.
    """
    builder = AutomatonBuilder(f"vxlan_gre_broken_{w.eth}")
    _common_prefix(builder, w)
    builder.header("vxlan", w.vxlan).header("gre", w.gre)
    builder.header("inner_eth", w.eth).header("inner_ip", w.ip)
    builder.state("vxlan").extract("vxlan").goto("inner_ethernet")
    # Bug: the selects on the inner ethertype and the GRE protocol are gone.
    builder.state("inner_ethernet").extract("inner_eth").goto("inner_ipv4")
    builder.state("gre").extract("gre").goto("inner_ipv4")
    builder.state("inner_ipv4").extract("inner_ip").accept()
    return builder.build()


def mini_reference() -> P4Automaton:
    return reference_parser(MINI)


def mini_fused() -> P4Automaton:
    return fused_parser(MINI)


def mini_broken() -> P4Automaton:
    return broken_parser(MINI)
