"""Benchmark harness support: metrics, table rendering and the case-study runner."""

from .metrics import CaseMetrics, attach_run_statistics, structural_metrics
from .runner import CaseOutcome, CaseStudy, case_studies, full_scale_requested, run_cases
from .table import render_markdown, render_text

__all__ = [
    "CaseMetrics",
    "CaseOutcome",
    "CaseStudy",
    "attach_run_statistics",
    "case_studies",
    "full_scale_requested",
    "render_markdown",
    "render_text",
    "run_cases",
    "structural_metrics",
]
