"""Normalized benchmark history (ROADMAP: the in-repo perf trajectory).

Raw wall-clock timings are not comparable across machines, so every history
entry stores each benchmark's seconds *and* its time normalized against a
calibration microbenchmark measured on the same machine in the same session:
``normalized = seconds / calibration_seconds``.  The calibration workload is
a fixed pure-Python integer loop that never touches the code under test, so
its runtime tracks only interpreter-and-hardware speed — a faster machine
shrinks both numerator and denominator and the ratio survives.

Entries are JSON files under ``benchmarks/history/``, one per recorded PR,
written by ``benchmarks/record_history.py`` and validated by the test suite.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

SCHEMA_VERSION = 1

# Tuned so one calibration run takes tens of milliseconds on current
# hardware: long enough to time stably, short enough to repeat.
_CALIBRATION_ITERATIONS = 200_000


class HistoryError(Exception):
    """A malformed or unreadable history entry."""


def calibration_workload() -> int:
    """The fixed integer workload behind the calibration timing.

    Deterministic, allocation-light, and independent of the repository's own
    modules; the returned checksum guards against the loop being optimised
    away and pins the workload's identity in tests.
    """
    accumulator = 0
    value = 0x9E3779B9
    for index in range(_CALIBRATION_ITERATIONS):
        value = (value * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        accumulator ^= value >> 33
        accumulator = (accumulator + index) & (2**64 - 1)
    return accumulator


# The checksum of calibration_workload(), pinned so a silent change to the
# calibration loop (which would skew every cross-PR comparison) fails a test.
CALIBRATION_CHECKSUM = 31117915001


def calibration_seconds(repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock time of the calibration workload."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        calibration_workload()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class HistoryEntry:
    """One recorded PR's normalized benchmark results."""

    label: str
    date: str
    calibration_seconds: float
    rows: Dict[str, float] = field(default_factory=dict)  # name -> seconds
    notes: str = ""

    def normalized(self, name: str) -> float:
        return self.rows[name] / self.calibration_seconds

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "date": self.date,
            "calibration_seconds": round(self.calibration_seconds, 6),
            "rows": [
                {
                    "benchmark": name,
                    "seconds": round(seconds, 6),
                    "normalized": round(seconds / self.calibration_seconds, 3),
                }
                for name, seconds in sorted(self.rows.items())
            ],
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HistoryEntry":
        if payload.get("schema") != SCHEMA_VERSION:
            raise HistoryError(
                f"unsupported history schema {payload.get('schema')!r}"
            )
        try:
            calibration = float(payload["calibration_seconds"])
            if calibration <= 0:
                raise HistoryError("calibration_seconds must be positive")
            rows = {
                row["benchmark"]: float(row["seconds"]) for row in payload["rows"]
            }
            return cls(
                label=payload["label"],
                date=payload["date"],
                calibration_seconds=calibration,
                rows=rows,
                notes=payload.get("notes", ""),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise HistoryError(f"malformed history entry: {error}") from error


def history_dir(root: Path) -> Path:
    return root / "benchmarks" / "history"


def load_history(directory: Path) -> List[HistoryEntry]:
    """Every entry under ``directory``, sorted by filename (the PR order)."""
    entries = []
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise HistoryError(f"{path.name}: invalid JSON: {error}") from error
        try:
            entries.append(HistoryEntry.from_dict(payload))
        except HistoryError as error:
            raise HistoryError(f"{path.name}: {error}") from error
    return entries


def write_entry(directory: Path, filename: str, entry: HistoryEntry) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / filename
    path.write_text(json.dumps(entry.as_dict(), indent=2) + "\n")
    return path
