"""Structural metrics reported in Table 2.

For every case study the paper reports the number of states across both
automata, the number of bits examined by ``select`` statements ("Branched"),
the total number of store bits ("Total"), the runtime and the peak memory use.
This module computes the structural columns from the automata themselves and
packages a checker run's measurements into one record used by the benchmark
harness and ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional

from ..core.algorithm import CheckerStatistics
from ..p4a.syntax import P4Automaton


@dataclass
class CaseMetrics:
    """One row of the Table 2 reproduction."""

    name: str
    states: int
    branched_bits: int
    total_bits: int
    runtime_seconds: float = 0.0
    peak_memory_mb: float = 0.0
    verdict: Optional[bool] = None
    reachable_pairs: int = 0
    relation_size: int = 0
    solver_queries: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "states": self.states,
            "branched_bits": self.branched_bits,
            "total_bits": self.total_bits,
            "runtime_seconds": round(self.runtime_seconds, 3),
            "peak_memory_mb": round(self.peak_memory_mb, 3),
            "verdict": self.verdict,
            "reachable_pairs": self.reachable_pairs,
            "relation_size": self.relation_size,
            "solver_queries": self.solver_queries,
            **self.extra,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CaseMetrics":
        """Rebuild a row from :meth:`as_dict` output (service transport)."""
        known = {f.name for f in fields(cls)} - {"extra"}
        base = {key: value for key, value in payload.items() if key in known}
        extra = {key: value for key, value in payload.items() if key not in known}
        return cls(**base, extra=extra)


def structural_metrics(name: str, left: P4Automaton, right: P4Automaton) -> CaseMetrics:
    """The structural columns of Table 2 for a pair of automata.

    ``states`` counts the user-defined states of both automata (the paper's
    "total number of states in both parsers"); ``branched_bits`` sums the bits
    examined by selects, and ``total_bits`` sums the header bits of both
    stores.
    """
    return CaseMetrics(
        name=name,
        states=len(left.states) + len(right.states),
        branched_bits=left.branched_bits() + right.branched_bits(),
        total_bits=left.total_header_bits() + right.total_header_bits(),
    )


def attach_run_statistics(metrics: CaseMetrics, statistics: CheckerStatistics,
                          verdict: Optional[bool]) -> CaseMetrics:
    """Fill in the measured columns from a checker run."""
    metrics.runtime_seconds = statistics.runtime_seconds
    metrics.peak_memory_mb = statistics.peak_memory_bytes / (1024 * 1024)
    metrics.verdict = verdict
    metrics.reachable_pairs = statistics.reachable_pairs
    metrics.relation_size = statistics.relation_size
    metrics.solver_queries = int(statistics.solver.get("queries", 0))
    if statistics.cache:
        metrics.extra["cache_hit_percent"] = round(
            100.0 * float(statistics.cache.get("hit_rate", 0.0)), 1
        )
        metrics.extra["cache_hits"] = int(statistics.cache.get("hits", 0))
        metrics.extra["cache_misses"] = int(statistics.cache.get("misses", 0))
    if statistics.entailment:
        # AIG lowering-pipeline effectiveness: "nodes/saved (+N collapsed)".
        # Rendered only when the run reports the counters, so older payloads
        # (and ablation rows from pre-AIG configs) show "-".
        if "aig_nodes" in statistics.entailment:
            metrics.extra["aig_nodes"] = int(statistics.entailment["aig_nodes"])
            metrics.extra["aig_saved"] = int(
                statistics.entailment.get("aig_clauses_saved", 0)
            )
            metrics.extra["aig_shortcuts"] = int(
                statistics.entailment.get("aig_shortcuts", 0)
            )
        # Cross-worker clause sharing: only rendered when traffic happened,
        # so non-sharing runs keep their old column set.
        exported = int(statistics.entailment.get("clauses_exported", 0))
        imported = int(statistics.entailment.get("clauses_imported", 0))
        if exported or imported:
            metrics.extra["clauses_exported"] = exported
            metrics.extra["clauses_imported"] = imported
        # Learned-clause database management: rendered only when the run
        # actually learned clauses, so DPLL/external-solver rows keep "-".
        lbd_clauses = int(statistics.entailment.get("lbd_clauses", 0))
        if lbd_clauses:
            metrics.extra["clauses_deleted"] = int(
                statistics.entailment.get("clauses_deleted", 0)
            )
            metrics.extra["avg_lbd"] = round(
                int(statistics.entailment.get("lbd_sum", 0)) / lbd_clauses, 1
            )
        # Portfolio lane outcomes, summarized as "lane:wins" pairs.
        portfolio = statistics.entailment.get("portfolio")
        if portfolio:
            metrics.extra["portfolio_wins"] = " ".join(
                f"{lane}:{counters.get('wins', 0)}"
                for lane, counters in sorted(portfolio.items())
            )
    oracle_divergences = int(statistics.oracle.get("divergences", 0)) if statistics.oracle else 0
    if statistics.oracle or statistics.replay_divergences:
        # Model-vs-replay mismatches plus concrete oracle disagreements; 0 is
        # the healthy value and is rendered (a "-" means the oracle never ran).
        metrics.extra["divergences"] = oracle_divergences + statistics.replay_divergences
    if statistics.oracle and statistics.oracle.get("packets"):
        metrics.extra["oracle_packets"] = int(statistics.oracle["packets"])
    return metrics
