"""The experiment runner: one entry per Table 2 row.

Every case study of the paper's evaluation is registered here as a
:class:`CaseStudy` with a *scaled* and a *full* configuration.  The scaled
configuration keeps the structure of the study but shrinks the parsers enough
to finish in seconds on a laptop with the pure-Python solver; the full
configuration uses the paper-sized parsers.  Benchmarks and the CLI select
between them via the ``LEAPFROG_FULL`` environment variable or an explicit
argument.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.algorithm import CheckerConfig, PreBisimulationChecker
from ..core.equivalence import (
    check_initial_store_independence,
    check_language_equivalence,
    check_store_relation,
)
from ..core.reachability import ReachabilityAnalysis
from ..core.templates import Template, TemplatePair
from ..parsergen import compile_graph, graph_to_p4a, hardware_to_p4a, scenario
from ..protocols import ethernet_ip, ethernet_vlan, ip_options, ip_tcp_udp, mpls
from .metrics import CaseMetrics, attach_run_statistics, structural_metrics


@dataclass
class CaseOutcome:
    """Result of running one case study."""

    metrics: CaseMetrics
    verdict: Optional[bool]


@dataclass
class CaseStudy:
    """A registered experiment: a name, a category and a run function."""

    name: str
    category: str  # "utility", "applicability", "translation-validation"
    run: Callable[[bool, Optional[CheckerConfig]], CaseOutcome]

    def __call__(self, full: bool = False, config: Optional[CheckerConfig] = None) -> CaseOutcome:
        return self.run(full, config)


def full_scale_requested() -> bool:
    """Whether the environment asks for paper-sized runs (``LEAPFROG_FULL=1``)."""
    return os.environ.get("LEAPFROG_FULL", "0").lower() in ("1", "true", "yes")


def _language_equivalence_case(
    name: str,
    category: str,
    build: Callable[[bool], Sequence],
) -> CaseStudy:
    def run(full: bool, config: Optional[CheckerConfig]) -> CaseOutcome:
        left, left_start, right, right_start = build(full)
        metrics = structural_metrics(name, left, right)
        result = check_language_equivalence(
            left, left_start, right, right_start, config=config, find_counterexamples=False
        )
        attach_run_statistics(metrics, result.statistics, result.verdict)
        return CaseOutcome(metrics, result.verdict)

    return CaseStudy(name, category, run)


# ---------------------------------------------------------------------------
# Utility case studies (Section 7.1)
# ---------------------------------------------------------------------------


def _state_rearrangement(full: bool):
    # Cheap even at paper size, so the scaled variant is never needed here.
    return (
        ip_tcp_udp.reference_parser(),
        ip_tcp_udp.REFERENCE_START,
        ip_tcp_udp.combined_parser(),
        ip_tcp_udp.COMBINED_START,
    )


def _speculative_loop(full: bool):
    # Cheap even at paper size, so the scaled variant is never needed here.
    return (
        mpls.reference_parser(),
        mpls.REFERENCE_START,
        mpls.vectorized_parser(),
        mpls.VECTORIZED_START,
    )


def _variable_length(full: bool):
    if full:
        return (
            ip_options.generic_parser(slots=2, max_data_bytes=6),
            ip_options.START,
            ip_options.timestamp_parser(slots=2, max_data_bytes=6),
            ip_options.START,
        )
    return (
        ip_options.generic_parser(slots=1, max_data_bytes=2),
        ip_options.START,
        ip_options.generic_parser(slots=1, max_data_bytes=2),
        ip_options.START,
    )


def _header_initialization_case() -> CaseStudy:
    def run(full: bool, config: Optional[CheckerConfig]) -> CaseOutcome:
        parser = ethernet_vlan.vlan_parser()  # cheap even at paper size
        metrics = structural_metrics("Header initialization", parser, parser)
        result = check_initial_store_independence(
            parser, ethernet_vlan.START, config=config, find_counterexamples=False
        )
        attach_run_statistics(metrics, result.statistics, result.verdict)
        return CaseOutcome(metrics, result.verdict)

    return CaseStudy("Header initialization", "utility", run)


def _relational_verification_case() -> CaseStudy:
    def run(full: bool, config: Optional[CheckerConfig]) -> CaseOutcome:
        sloppy, strict = ethernet_ip.sloppy_parser(), ethernet_ip.strict_parser()
        type_bits = 16
        metrics = structural_metrics("Relational verification", sloppy, strict)
        relation = ethernet_ip.store_correspondence(sloppy, strict, type_bits)
        result = check_store_relation(
            sloppy,
            ethernet_ip.START,
            strict,
            ethernet_ip.START,
            relation,
            require_equal_acceptance=False,
            config=config,
        )
        attach_run_statistics(metrics, result.statistics, result.verdict)
        return CaseOutcome(metrics, result.verdict)

    return CaseStudy("Relational verification", "utility", run)


def _external_filtering_case() -> CaseStudy:
    def run(full: bool, config: Optional[CheckerConfig]) -> CaseOutcome:
        sloppy, strict = ethernet_ip.sloppy_parser(), ethernet_ip.strict_parser()
        type_bits = 16
        metrics = structural_metrics("External filtering", sloppy, strict)
        start_pair = TemplatePair(
            Template(ethernet_ip.START, 0), Template(ethernet_ip.START, 0)
        )
        reach = ReachabilityAnalysis(sloppy, strict, [start_pair])
        extra = ethernet_ip.external_filter_initial_relation(sloppy, strict, reach, type_bits)
        checker = PreBisimulationChecker(
            sloppy,
            strict,
            ethernet_ip.START,
            ethernet_ip.START,
            config=config,
            require_equal_acceptance=False,
            extra_initial=extra,
        )
        result = checker.run()
        attach_run_statistics(metrics, result.statistics, result.proved)
        return CaseOutcome(metrics, result.proved)

    return CaseStudy("External filtering", "utility", run)


# ---------------------------------------------------------------------------
# Applicability case studies (Section 7.2)
# ---------------------------------------------------------------------------


def _registry_scenario_case(display: str, full_name: str, mini_name: str,
                            category: str = "applicability") -> CaseStudy:
    """A case study backed by the tagged scenario registry.

    Covers both registry kinds: graph scenarios become self-comparisons and
    pair scenarios check their two sides against each other, exactly as
    :meth:`repro.scenarios.Scenario.automata` presents them.
    """
    def build(full: bool):
        from ..scenarios import get

        return get(full_name if full else mini_name).automata()

    return _language_equivalence_case(display, category, build)


def _translation_validation_case() -> CaseStudy:
    def run(full: bool, config: Optional[CheckerConfig]) -> CaseOutcome:
        graph = scenario("edge" if full else "mini_edge")
        original, start = graph_to_p4a(graph)
        hardware = compile_graph(graph)
        translated, translated_start = hardware_to_p4a(hardware)
        metrics = structural_metrics("Translation Validation", original, translated)
        result = check_language_equivalence(
            original, start, translated, translated_start, config=config,
            find_counterexamples=False,
        )
        attach_run_statistics(metrics, result.statistics, result.verdict)
        metrics.extra["hardware_entries"] = len(hardware.entries)
        metrics.extra["hardware_states"] = len(hardware.states())
        return CaseOutcome(metrics, result.verdict)

    return CaseStudy("Translation Validation", "translation-validation", run)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def case_studies() -> Dict[str, CaseStudy]:
    """All Table 2 rows, keyed by display name."""
    studies = [
        _language_equivalence_case("State Rearrangement", "utility", _state_rearrangement),
        _language_equivalence_case("Variable-length parsing", "utility", _variable_length),
        _header_initialization_case(),
        _language_equivalence_case("Speculative loop", "utility", _speculative_loop),
        _relational_verification_case(),
        _external_filtering_case(),
        _registry_scenario_case("Edge", "edge", "mini_edge"),
        _registry_scenario_case("Service Provider", "service_provider",
                                "mini_service_provider"),
        _registry_scenario_case("Datacenter", "datacenter", "mini_datacenter"),
        _registry_scenario_case("Enterprise", "enterprise", "mini_enterprise"),
        _registry_scenario_case("VXLAN/GRE Tunneling", "vxlan_gre", "mini_vxlan_gre"),
        _registry_scenario_case("IPv6 Extension Chain", "ipv6_ext", "mini_ipv6_ext"),
        _registry_scenario_case("QinQ Double Tagging", "qinq", "mini_qinq"),
        _registry_scenario_case("ARP/ICMP Control Plane", "arp_icmp", "mini_arp_icmp"),
        _registry_scenario_case("Synthetic Cascade", "synthetic", "mini_synthetic"),
        _translation_validation_case(),
    ]
    return {study.name: study for study in studies}


def run_cases(
    names: Optional[Sequence[str]] = None,
    full: Optional[bool] = None,
    config: Optional[CheckerConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    use_incremental: Optional[bool] = None,
    oracle_packets: Optional[int] = None,
    oracle_seed: Optional[int] = None,
    server: Optional[str] = None,
    use_aig: Optional[bool] = None,
    solver: Optional[str] = None,
    portfolio: Optional[bool] = None,
    share_clauses: Optional[bool] = None,
    clause_db_max: Optional[int] = None,
) -> List[CaseMetrics]:
    """Run the selected case studies and return their metric rows.

    The run goes through the :class:`~repro.core.engine.EquivalenceEngine`:
    ``jobs`` selects the worker count (1 = in-process, the deterministic
    baseline), ``cache_dir`` shares a persistent solver-query cache between
    workers and across invocations, ``timeout`` bounds each case's wall-clock
    time, ``use_incremental`` (when not ``None``) overrides the incremental
    solver-session toggle of every case's configuration (``use_aig``
    likewise overrides the AIG-simplification toggle), and
    ``oracle_packets``/``oracle_seed`` (when not ``None``) cross-check every
    verdict against that many seeded concrete packets.  Rows come back in
    registry order regardless of which worker finished first.

    ``server`` (an address accepted by the service client) reroutes every
    case to a running ``repro serve`` daemon instead of local workers;
    ``jobs`` then sizes the client fan-out and the other execution knobs
    stay daemon-side.

    ``solver``/``portfolio``/``share_clauses``/``clause_db_max`` select the
    solver backend of every case's checker (see
    :class:`~repro.core.algorithm.CheckerConfig`); ``share_clauses``
    additionally needs ``cache_dir``, where the shared clause channel lives.
    """
    from ..core.engine import CaseJob, EquivalenceEngine

    registry = case_studies()
    if names is None:
        names = list(registry)
    if full is None:
        full = full_scale_requested()
    unknown = [name for name in names if name not in registry]
    if unknown:
        raise KeyError(f"unknown case studies: {', '.join(unknown)}")
    engine = EquivalenceEngine(
        jobs=jobs, cache_dir=cache_dir, timeout=timeout,
        use_incremental=use_incremental,
        oracle_packets=oracle_packets, oracle_seed=oracle_seed,
        server=server, use_aig=use_aig,
        solver=solver, portfolio=portfolio, share_clauses=share_clauses,
        clause_db_max=clause_db_max,
    )
    # --case is repeatable, so the same name may appear twice; suffix repeats
    # to keep engine job labels unique while preserving one row per request.
    seen: Dict[str, int] = {}
    case_jobs = []
    for name in names:
        count = seen.get(name, 0)
        seen[name] = count + 1
        job_id = name if count == 0 else f"{name} ({count + 1})"
        case_jobs.append(CaseJob(case=name, full=full, config=config, job_id=job_id))
    results = engine.run(case_jobs)
    metrics: List[CaseMetrics] = []
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"case study {result.job_id!r} {result.status}: {result.error}"
            )
        metrics.append(result.value.metrics)
    return metrics
