"""Rendering of Table-2-style result tables.

The benchmark harness collects :class:`~repro.reporting.metrics.CaseMetrics`
records and renders them in the same column layout as the paper's Table 2
(name, states, branched bits, total bits, runtime, memory), plus the
reproduction-specific columns (verdict, template pairs, relation size, solver
queries).  Plain-text and Markdown renderers are provided; the Markdown output
is what ``EXPERIMENTS.md`` embeds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .metrics import CaseMetrics

_COLUMNS = (
    ("Name", "name"),
    ("States", "states"),
    ("Branched (bits)", "branched_bits"),
    ("Total (bits)", "total_bits"),
    ("Runtime (s)", "runtime_seconds"),
    ("Memory (MB)", "peak_memory_mb"),
    ("Verdict", "verdict"),
    ("Pairs", "reachable_pairs"),
    ("Relation", "relation_size"),
    ("SMT queries", "solver_queries"),
    ("Cache hit %", "cache_hit_percent"),
    ("AIG saved", "aig_saved"),
    ("Divergences", "divergences"),
)

#: Columns appended only when some row carries the key, so runs without
#: clause sharing or portfolio mode keep the classic Table 2 layout.
_OPTIONAL_COLUMNS = (
    ("Clauses out", "clauses_exported"),
    ("Clauses in", "clauses_imported"),
    ("Deleted", "clauses_deleted"),
    ("Avg LBD", "avg_lbd"),
    ("Portfolio wins", "portfolio_wins"),
)


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "proved" if value else "refuted"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _columns(cases: Sequence[CaseMetrics]):
    records = [case.as_dict() for case in cases]
    columns = list(_COLUMNS)
    columns.extend(
        (label, key)
        for label, key in _OPTIONAL_COLUMNS
        if any(record.get(key) is not None for record in records)
    )
    return columns, records


def _rows(records, columns) -> List[List[str]]:
    return [
        [_format_value(record.get(key)) for _, key in columns]
        for record in records
    ]


def render_fixed_width(headers: Sequence[str], rows: Sequence[Sequence[str]],
                       title: Optional[str] = None) -> str:
    """A fixed-width text table: header line, dashed rule, one line per row.

    The shared renderer behind the Table 2 output, the oracle-suite summary
    and ``scenarios list``.
    """
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_text(cases: Sequence[CaseMetrics], title: Optional[str] = None) -> str:
    """Fixed-width text table (printed by the benchmark harness)."""
    columns, records = _columns(cases)
    headers = [label for label, _ in columns]
    return render_fixed_width(headers, _rows(records, columns), title=title)


def render_markdown(cases: Sequence[CaseMetrics], title: Optional[str] = None) -> str:
    """Markdown table (embedded in EXPERIMENTS.md)."""
    columns, records = _columns(cases)
    headers = [label for label, _ in columns]
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in _rows(records, columns):
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
