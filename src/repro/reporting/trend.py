"""Benchmark-history trend tables and the regression gate.

The committed entries under ``benchmarks/history/`` form the in-repo perf
trajectory (see :mod:`repro.reporting.history`).  This module renders them as
one table per benchmark family — normalized time per entry, oldest to newest
— and implements the CI regression gate: the latest entry must not be more
than ``threshold`` slower than the rolling baseline (the mean of up to
``window`` immediately preceding entries that measured the same benchmark).

Normalized values (seconds divided by the same-machine calibration time) are
what gets compared, so entries recorded on machines of different speeds are
still commensurable; see the history module for why that works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .history import HistoryEntry

#: Fractional slowdown versus the rolling baseline that fails the gate.
DEFAULT_THRESHOLD = 0.15

#: How many immediately preceding entries form the rolling baseline.
DEFAULT_WINDOW = 3


@dataclass
class Regression:
    """One benchmark of the latest entry that breached the gate."""

    benchmark: str
    latest: float           # normalized time of the newest entry
    baseline: float         # rolling-baseline normalized time
    ratio: float            # latest / baseline

    def describe(self) -> str:
        return (
            f"{self.benchmark}: {self.latest:.2f} vs baseline "
            f"{self.baseline:.2f} ({(self.ratio - 1.0) * 100:+.0f}%)"
        )


def _benchmark_names(entries: Sequence[HistoryEntry]) -> List[str]:
    names: Dict[str, None] = {}
    for entry in entries:
        for name in sorted(entry.rows):
            names.setdefault(name)
    return list(names)


def check_regressions(
    entries: Sequence[HistoryEntry],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> List[Regression]:
    """Regressions of the newest entry against its rolling baseline.

    A benchmark participates only when the latest entry measured it *and* at
    least one of the ``window`` preceding entries did too — a brand-new
    benchmark has no baseline and cannot regress, and a retired one no
    longer gates anything.  With fewer than two entries there is nothing to
    compare and the gate passes vacuously.
    """
    if len(entries) < 2:
        return []
    latest = entries[-1]
    previous = entries[:-1][-window:]
    regressions: List[Regression] = []
    for name in sorted(latest.rows):
        history = [entry.normalized(name) for entry in previous if name in entry.rows]
        if not history:
            continue
        baseline = sum(history) / len(history)
        if baseline <= 0:
            continue
        current = latest.normalized(name)
        ratio = current / baseline
        if ratio > 1.0 + threshold:
            regressions.append(Regression(name, current, baseline, ratio))
    return regressions


def render_trend_markdown(entries: Sequence[HistoryEntry]) -> str:
    """The history as one Markdown table: benchmarks × entries (normalized).

    Each cell is the entry's normalized time for that benchmark ("-" when the
    entry did not measure it); columns run oldest to newest, so reading left
    to right follows the PR sequence.
    """
    if not entries:
        return "No benchmark history recorded yet.\n"
    header = "| Benchmark | " + " | ".join(
        f"`{entry.label}`" for entry in entries
    ) + " |"
    divider = "| --- |" + " ---: |" * len(entries)
    lines = [header, divider]
    for name in _benchmark_names(entries):
        cells = [
            f"{entry.normalized(name):.2f}" if name in entry.rows else "-"
            for entry in entries
        ]
        lines.append(f"| `{name}` | " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def render_trend_text(entries: Sequence[HistoryEntry]) -> str:
    """Plain-text rendering of the same benchmarks × entries table."""
    if not entries:
        return "No benchmark history recorded yet."
    names = _benchmark_names(entries)
    name_width = max(len("Benchmark"), *(len(name) for name in names))
    labels = [entry.label for entry in entries]
    widths = [max(len(label), 8) for label in labels]
    header = "Benchmark".ljust(name_width) + "  " + "  ".join(
        label.rjust(width) for label, width in zip(labels, widths)
    )
    lines = [header, "-" * len(header)]
    for name in names:
        cells = [
            (f"{entry.normalized(name):.2f}" if name in entry.rows else "-").rjust(width)
            for entry, width in zip(entries, widths)
        ]
        lines.append(name.ljust(name_width) + "  " + "  ".join(cells))
    return "\n".join(lines)
