"""Tagged scenario registry: the single source of truth for workloads.

``repro.scenarios`` enumerates every benchmark scenario — the parser-gen
deployment graphs and the real-world protocol-family pairs — with tags
(family, size, expected verdict, kind) and builders.  The CLI
(``repro scenarios list/show/run``), the Table 2 runner, the differential
oracle suite, the benchmarks and the generated catalog docs all consume this
registry; see :mod:`repro.scenarios.registry` for the API and
:mod:`repro.scenarios.catalog` for the registered population.
"""

from . import catalog  # noqa: F401  (populates the registry on import)
from .registry import (
    FAMILIES,
    KINDS,
    SIZES,
    VERDICTS,
    Scenario,
    ScenarioLookupError,
    ScenarioRegistrationError,
    filter_scenarios,
    get,
    mini_names,
    names,
    pair,
    register,
    scenarios,
)

__all__ = [
    "FAMILIES",
    "KINDS",
    "SIZES",
    "VERDICTS",
    "Scenario",
    "ScenarioLookupError",
    "ScenarioRegistrationError",
    "filter_scenarios",
    "get",
    "mini_names",
    "names",
    "pair",
    "register",
    "scenarios",
]
