"""The scenario catalog: every registered workload, tagged.

Importing this module populates the registry with

* the eight parser-gen deployment scenarios of Gibb et al. (full and mini),
  checked as self-comparisons and against their compiled hardware tables, and
* six real-world protocol families, each contributing an *equivalent*
  reference/refactoring pair and a deliberately *inequivalent* broken variant
  at both scales:

  - ``vxlan_gre`` — VXLAN-over-UDP and GRE tunnel decapsulation (fused
    block extraction vs. one state per header; the broken variant skips
    payload-type validation after decap);
  - ``ipv6_ext`` — IPv6 extension-header chains (routing states unrolled per
    predecessor; the broken variant drops the RFC 8200 "Hop-by-Hop only
    first" rule);
  - ``qinq`` — 802.1ad QinQ double tagging (both tags fused into one
    extraction; the broken variant admits an S-tag without a C-tag);
  - ``srv6`` — IPv6 segment-routing headers (the segment list extracted
    as one Last-Entry-sized block; the broken variant drops the RFC 8754
    routing-type check);
  - ``geneve`` — Geneve tunnel options (UDP and the Geneve base fused
    into one three-expression lookup; the broken variant consumes a
    two-word option list as one word);
  - ``arp_icmp`` — ARP/ICMP control-plane punting (selector-first split
    extraction; the broken variant loses its opcode and unreachable-stub
    checks).

* the ``synthetic`` family: fixed-seed representatives of the mutation-based
  synthesizer (:mod:`repro.synth`) at both scales — an equivalence-preserving
  rewrite chain of a generated select cascade, and a variant carrying one
  witness-confirmed verdict-breaking mutation.  ``repro synth run`` draws
  unboundedly many more of these; the registered rows pin two seeds so the
  oracle suite, the Table 2 runner and CI cover the synthesizer's output like
  any hand-written scenario.

The generated catalog table in the README and ``repro scenarios list`` are
rendered straight from this registry.
"""

from __future__ import annotations

from ..parsergen import scenarios as parsergen_scenarios
from ..protocols import arp_icmp, geneve, ipv6_ext, qinq, srv6, vxlan_gre
from .registry import pair, register

# ---------------------------------------------------------------------------
# Parser-gen deployment scenarios (graph kind, verified as self-comparisons)
# ---------------------------------------------------------------------------

_GRAPHS = (
    ("edge", "edge", "full", parsergen_scenarios.edge_router,
     "Gateway router: VLANs, a two-deep MPLS stack, GRE tunnelling."),
    ("service_provider", "service-provider", "full", parsergen_scenarios.service_provider,
     "Core router: a four-deep MPLS label stack in front of the IP payload."),
    ("datacenter", "datacenter", "full", parsergen_scenarios.datacenter,
     "Top-of-rack switch: VLAN, IPv4/IPv6, VXLAN tunnelling to an inner stack."),
    ("enterprise", "enterprise", "full", parsergen_scenarios.enterprise,
     "Campus router: Ethernet, up to two VLAN tags, IPv4/IPv6, L4."),
    ("mini_edge", "edge", "mini", parsergen_scenarios.mini_edge,
     "Edge-shaped mini graph: an MPLS-like tag stack in front of IP."),
    ("mini_service_provider", "service-provider", "mini",
     parsergen_scenarios.mini_service_provider,
     "ServiceProvider-shaped mini graph: an MPLS-like stack of depth two."),
    ("mini_datacenter", "datacenter", "mini", parsergen_scenarios.mini_datacenter,
     "Datacenter-shaped mini graph: a VXLAN-like tunnel to an inner stack."),
    ("mini_enterprise", "enterprise", "mini", parsergen_scenarios.mini_enterprise,
     "Enterprise-shaped mini graph: VLAN, IPv4/IPv6, L4."),
)

for _name, _family, _size, _builder, _description in _GRAPHS:
    register(
        name=_name, family=_family, size=_size, verdict="equivalent",
        kind="graph", description=_description,
    )(_builder)


# ---------------------------------------------------------------------------
# Protocol-family pairs (pair kind, expected verdict per variant)
# ---------------------------------------------------------------------------

def _register_family(
    stem: str,
    family: str,
    module,
    full_equivalent,
    full_broken,
    mini_equivalent,
    mini_broken,
    equivalent_description: str,
    broken_description: str,
) -> None:
    """One protocol family: equivalent + broken pairs at both scales."""
    start = module.START
    for scale, equivalent, broken in (
        ("full", full_equivalent, full_broken),
        ("mini", mini_equivalent, mini_broken),
    ):
        prefix = "" if scale == "full" else "mini_"
        register(
            name=f"{prefix}{stem}", family=family, size=scale,
            verdict="equivalent", kind="pair",
            description=equivalent_description,
        )(pair(*equivalent(start)))
        register(
            name=f"{prefix}{stem}_broken", family=family, size=scale,
            verdict="not_equivalent", kind="pair",
            description=broken_description,
        )(pair(*broken(start)))


def _sides(left, right):
    return lambda start: (left, start, right, start)


_register_family(
    "vxlan_gre", "tunnel", vxlan_gre,
    _sides(vxlan_gre.reference_parser, vxlan_gre.fused_parser),
    _sides(vxlan_gre.reference_parser, vxlan_gre.broken_parser),
    _sides(vxlan_gre.mini_reference, vxlan_gre.mini_fused),
    _sides(vxlan_gre.mini_reference, vxlan_gre.mini_broken),
    "VXLAN-over-UDP and GRE decapsulation: per-header reference vs. "
    "decap-fused block extraction.",
    "Tunnel decapsulation that skips inner payload-type validation "
    "(accepts non-IPv4 payloads).",
)

_register_family(
    "ipv6_ext", "edge", ipv6_ext,
    _sides(ipv6_ext.reference_parser, ipv6_ext.unrolled_parser),
    _sides(ipv6_ext.reference_parser, ipv6_ext.broken_parser),
    _sides(ipv6_ext.mini_reference, ipv6_ext.mini_unrolled),
    _sides(ipv6_ext.mini_reference, ipv6_ext.mini_broken),
    "IPv6 extension-header chains (hbh/routing/fragment): shared-state "
    "reference vs. per-predecessor unrolled routing states.",
    "Extension-chain parser that drops the RFC 8200 'Hop-by-Hop only "
    "first' ordering rule.",
)

_register_family(
    "qinq", "service-provider", qinq,
    _sides(qinq.reference_parser, qinq.fused_parser),
    _sides(qinq.reference_parser, qinq.broken_parser),
    _sides(qinq.mini_reference, qinq.mini_fused),
    _sides(qinq.mini_reference, qinq.mini_broken),
    "802.1ad QinQ double tagging: per-tag reference vs. both tags fused "
    "into one extraction.",
    "QinQ parser that admits an S-tag directly followed by IPv4 (no "
    "C-tag required).",
)

_register_family(
    "srv6", "service-provider", srv6,
    _sides(srv6.reference_parser, srv6.fused_parser),
    _sides(srv6.reference_parser, srv6.broken_parser),
    _sides(srv6.mini_reference, srv6.mini_fused),
    _sides(srv6.mini_reference, srv6.mini_broken),
    "SRv6 segment lists (RFC 8754): per-segment reference vs. the whole "
    "list extracted as one Last-Entry-sized block.",
    "Segment-routing parser that drops the routing-type check (any "
    "routing extension header is parsed as an SRH).",
)

_register_family(
    "geneve", "tunnel", geneve,
    _sides(geneve.reference_parser, geneve.fused_parser),
    _sides(geneve.reference_parser, geneve.broken_parser),
    _sides(geneve.mini_reference, geneve.mini_fused),
    _sides(geneve.mini_reference, geneve.mini_broken),
    "Geneve tunnel options (RFC 8926): per-layer reference vs. UDP and "
    "the Geneve base fused into one three-expression lookup.",
    "Geneve decap that miscounts options (a two-word option list is "
    "consumed as one, shifting the inner frame).",
)

_register_family(
    "arp_icmp", "enterprise", arp_icmp,
    _sides(arp_icmp.reference_parser, arp_icmp.split_parser),
    _sides(arp_icmp.reference_parser, arp_icmp.broken_parser),
    _sides(arp_icmp.mini_reference, arp_icmp.mini_split),
    _sides(arp_icmp.mini_reference, arp_icmp.mini_broken),
    "ARP/ICMP control-plane punting: block extraction vs. selector-first "
    "split extraction.",
    "Punt-path parser missing its validity checks (any ARP opcode; "
    "unreachable without the original-datagram stub).",
)


# ---------------------------------------------------------------------------
# Synthetic family (fixed-seed draws from the mutation-based synthesizer)
# ---------------------------------------------------------------------------

#: The seed behind the registered synthetic scenarios (PLDI 2022; the same
#: fixed seed the CI smoke jobs use).  Any fixed value works.
SYNTH_SEED = 20220613


def _synthetic_builder(size: str, verdict: str):
    def build():
        from ..synth import config_for_size, synthesize_pair

        return synthesize_pair(
            SYNTH_SEED, config=config_for_size(size), verdict=verdict
        ).automata()

    return build


for _size, _prefix in (("full", ""), ("mini", "mini_")):
    register(
        name=f"{_prefix}synthetic", family="synthetic", size=_size,
        verdict="equivalent", kind="pair",
        description=f"Seed {SYNTH_SEED}: generated select cascade vs. an "
                    "equivalence-preserving rewrite chain of it.",
    )(_synthetic_builder(_size, "equivalent"))
    register(
        name=f"{_prefix}synthetic_broken", family="synthetic", size=_size,
        verdict="not_equivalent", kind="pair",
        description=f"Seed {SYNTH_SEED}: generated select cascade vs. a "
                    "variant with one witness-confirmed breaking mutation.",
    )(_synthetic_builder(_size, "not_equivalent"))


# ---------------------------------------------------------------------------
# Distilled family (campaign-minimized engine/label disagreements)
# ---------------------------------------------------------------------------

# Each module in the package self-registers on import; see
# repro/scenarios/distilled/__init__.py for the lifecycle.
from . import distilled  # noqa: E402,F401
