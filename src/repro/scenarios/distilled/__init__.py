"""Distilled regression scenarios (campaign-generated).

Every module in this package was serialized by the fuzz-campaign distiller
(:mod:`repro.campaign.distill`) from a minimized engine/label disagreement:
a synthesized pair whose ground-truth verdict some backend stack got wrong
at the time of the catch.  Importing the package imports every module, and
each module self-registers its pair under the ``distilled`` scenario family
— which is how a campaign catch becomes a permanent tier-1 regression test
(the registry suites type-check, oracle-smoke and equivalence-check every
registered scenario).

Lifecycle: ``repro campaign run --distill-dir src/repro/scenarios/distilled``
writes new modules here; commit them with the engine fix.  Files are
deterministic (no timestamps), so re-distilling an already-fixed catch is a
no-op diff.  See ``docs/campaign.md``.
"""

from importlib import import_module as _import_module
from pathlib import Path as _Path


def _load() -> None:
    for path in sorted(_Path(__file__).parent.glob("*.py")):
        if path.stem != "__init__":
            _import_module(f"{__name__}.{path.stem}")


_load()
