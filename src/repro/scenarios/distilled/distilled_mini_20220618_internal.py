"""Distilled regression scenario ``distilled_mini_20220618_internal`` (auto-generated).

Distilled by ``repro campaign run`` from campaign seed 20220613: on
pair seed 20220618 (size mini) the ``internal`` backend stack observed
``equivalent`` where ground truth is ``not_equivalent``.  The transform chain was
delta-debugged from 3 to 1 step(s).

Importing this module re-parses both sides from surface syntax (type-checked
on the way in) and registers the pair under the ``distilled`` family, making
the catch a permanent tier-1 regression test.  Do not edit by hand —
re-distill instead.
"""

from repro.p4a.surface import parse_automaton
from repro.scenarios.registry import register

NAME = 'distilled_mini_20220618_internal'
EXPECTED = 'not_equivalent'

#: Provenance: the originating campaign catch.
CAMPAIGN_SEED = 20220613
PAIR_SEED = 20220618
STACK = 'internal'
OBSERVED = 'equivalent'
#: The reduced replayable transform chain, ``(name, step_seed)`` per step.
CHAIN = (('flip-guard', 381932119),)
#: Minimized store-default witness bitstring (``None`` on equivalent pairs).
WITNESS = '0111101'

LEFT_START = 'q0'
RIGHT_START = 'q0'

LEFT = """\
header h0 : 4;
header h1 : 3;

q0 {
  extract(h0);
  select(h0) {
    (0b1000) => q1
    (0b0111) => q1
    (_) => accept
  }
}

q1 {
  extract(h1);
  select(h1) {
    (0b100) => reject
    (0b101) => accept
  }
}
"""

RIGHT = """\
header h0 : 4;
header h1 : 3;

q0 {
  extract(h0);
  select(h0) {
    (0b1000) => q1
    (0b1111) => q1
    (_) => accept
  }
}

q1 {
  extract(h1);
  select(h1) {
    (0b100) => reject
    (0b101) => accept
  }
}
"""


@register(
    name=NAME,
    family="distilled",
    size='mini',
    verdict=EXPECTED,
    kind="pair",
    description='distilled campaign catch (seed 20220618): internal stack said equivalent, ground truth not_equivalent',
)
def _pair():
    return (
        parse_automaton(LEFT, name=NAME + "_left"), LEFT_START,
        parse_automaton(RIGHT, name=NAME + "_right"), RIGHT_START,
    )
