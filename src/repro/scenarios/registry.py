"""The tagged scenario registry.

A *scenario* is a named, tagged workload for the equivalence pipeline: either
a parser-gen **graph** (checked as a self-comparison and against its compiled
hardware translation) or an explicit **pair** of automata with an expected
verdict (equivalent protocol refactorings, or deliberately inequivalent
variants used to exercise refutation, the counterexample search and the
differential oracle).

Scenarios are registered with :func:`register` — normally applied by
:mod:`repro.scenarios.catalog`, the module that populates the registry at
import time — and carry a fixed tag vocabulary:

* ``family`` — the deployment family (:data:`FAMILIES`);
* ``size`` — ``mini`` (seconds with the pure-Python solver) or ``full``
  (paper-sized headers);
* ``verdict`` — the expected outcome of the equivalence check;
* ``kind`` — ``graph`` (parse-graph scenario) or ``pair`` (automaton pair).

Lookups go through :func:`get`, which names near-misses on a typo;
:func:`filter_scenarios` selects by tag.  The registry is the single source
of truth behind ``repro scenarios``, the Table 2 runner, the differential
oracle suite, the benchmarks and the generated catalog documentation.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..p4a.syntax import P4Automaton

#: Deployment families a scenario may belong to.  ``synthetic`` is the
#: parametric family: its members are drawn from the seeded mutation-based
#: synthesizer (:mod:`repro.synth`) rather than written by hand.
#: ``distilled`` is the regression family: each member is a minimized
#: engine/label disagreement serialized by the fuzz-campaign distiller
#: (:mod:`repro.campaign`) into :mod:`repro.scenarios.distilled`.
FAMILIES = (
    "edge", "datacenter", "enterprise", "service-provider", "tunnel",
    "synthetic", "distilled",
)
#: Scenario scales.
SIZES = ("mini", "full")
#: Expected equivalence-check outcomes.
VERDICTS = ("equivalent", "not_equivalent")
#: Scenario kinds.
KINDS = ("graph", "pair")

#: A pair builder returns ``(left, left_start, right, right_start)``.
PairBuilder = Callable[[], Tuple[P4Automaton, str, P4Automaton, str]]


class ScenarioRegistrationError(ValueError):
    """Raised when a scenario is registered with invalid or duplicate data."""


class ScenarioLookupError(ValueError):
    """Raised on unknown scenario names; the message lists near-misses."""


@dataclass
class Scenario:
    """One registered scenario: tags plus a builder.

    ``builder`` returns a :class:`~repro.parsergen.ir.ParseGraph` for
    ``kind == "graph"`` scenarios and an ``(left, left_start, right,
    right_start)`` tuple for ``kind == "pair"`` scenarios; :meth:`automata`
    presents both uniformly as a pair (a graph becomes its self-comparison).
    """

    name: str
    family: str
    size: str
    verdict: str
    kind: str
    description: str
    builder: Callable[[], object]
    _structure: Optional[Tuple[int, int, int]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def expected_equivalent(self) -> bool:
        return self.verdict == "equivalent"

    def graph(self):
        """The underlying parse graph, or ``None`` for pair scenarios."""
        if self.kind != "graph":
            return None
        return self.builder()

    def automata(self) -> Tuple[P4Automaton, str, P4Automaton, str]:
        """``(left, left_start, right, right_start)`` for any scenario kind."""
        if self.kind == "graph":
            from ..parsergen.to_p4a import graph_to_p4a

            automaton, start = graph_to_p4a(self.builder())
            return automaton, start, automaton, start
        left, left_start, right, right_start = self.builder()
        return left, left_start, right, right_start

    def structure(self) -> Tuple[int, int, int]:
        """``(states, header_bits, branched_bits)`` across both sides.

        Follows the Table 2 convention of counting both automata (a graph
        scenario's self-comparison therefore counts its automaton twice).
        Computed on first use and cached on the scenario.
        """
        if self._structure is None:
            left, _, right, _ = self.automata()
            self._structure = (
                len(left.states) + len(right.states),
                left.total_header_bits() + right.total_header_bits(),
                left.branched_bits() + right.branched_bits(),
            )
        return self._structure


_REGISTRY: Dict[str, Scenario] = {}


def register(
    *,
    family: str,
    size: str,
    verdict: str,
    kind: str = "pair",
    name: Optional[str] = None,
    description: str = "",
):
    """Decorator registering a scenario builder under validated tags.

    Returns the builder unchanged so modules can keep calling it directly.
    ``name`` defaults to the builder's ``__name__``.
    """
    if family not in FAMILIES:
        raise ScenarioRegistrationError(
            f"unknown family {family!r}; known: {FAMILIES}"
        )
    if size not in SIZES:
        raise ScenarioRegistrationError(f"unknown size {size!r}; known: {SIZES}")
    if verdict not in VERDICTS:
        raise ScenarioRegistrationError(
            f"unknown verdict {verdict!r}; known: {VERDICTS}"
        )
    if kind not in KINDS:
        raise ScenarioRegistrationError(f"unknown kind {kind!r}; known: {KINDS}")

    def wrap(builder):
        scenario_name = name if name is not None else builder.__name__
        if not scenario_name:
            raise ScenarioRegistrationError("scenario name must be non-empty")
        if scenario_name in _REGISTRY:
            raise ScenarioRegistrationError(
                f"scenario {scenario_name!r} is already registered"
            )
        if not description:
            raise ScenarioRegistrationError(
                f"scenario {scenario_name!r} needs a description"
            )
        _REGISTRY[scenario_name] = Scenario(
            name=scenario_name,
            family=family,
            size=size,
            verdict=verdict,
            kind=kind,
            description=description,
            builder=builder,
        )
        return builder

    return wrap


def pair(
    left_builder: Callable[[], P4Automaton],
    left_start: str,
    right_builder: Callable[[], P4Automaton],
    right_start: str,
) -> PairBuilder:
    """A pair-scenario builder from two automaton factories."""

    def build() -> Tuple[P4Automaton, str, P4Automaton, str]:
        return left_builder(), left_start, right_builder(), right_start

    return build


def _populated() -> Dict[str, Scenario]:
    # The catalog self-registers on first import; importing it lazily here
    # breaks the cycle catalog → protocols/parsergen → (this module).
    from . import catalog  # noqa: F401

    return _REGISTRY


def get(name: str) -> Scenario:
    """Look up a scenario by name, suggesting near-misses on failure."""
    registry = _populated()
    try:
        return registry[name]
    except KeyError:
        close = difflib.get_close_matches(name, registry, n=3, cutoff=0.6)
        hint = f"; did you mean: {', '.join(close)}?" if close else ""
        raise ScenarioLookupError(
            f"unknown scenario {name!r}{hint} known: {sorted(registry)}"
        ) from None


def names() -> List[str]:
    """All registered scenario names, in registration order."""
    return list(_populated())


def scenarios() -> List[Scenario]:
    """All registered scenarios, in registration order."""
    return list(_populated().values())


def filter_scenarios(
    family: Optional[str] = None,
    size: Optional[str] = None,
    verdict: Optional[str] = None,
    kind: Optional[str] = None,
) -> List[Scenario]:
    """Scenarios matching every given tag (``None`` matches anything)."""
    return [
        scenario
        for scenario in _populated().values()
        if (family is None or scenario.family == family)
        and (size is None or scenario.size == size)
        and (verdict is None or scenario.verdict == verdict)
        and (kind is None or scenario.kind == kind)
    ]


def mini_names() -> List[str]:
    """Names of every ``mini`` scenario (the CI oracle-smoke population)."""
    return [scenario.name for scenario in filter_scenarios(size="mini")]
