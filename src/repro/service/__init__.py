"""Equivalence-as-a-service: a persistent daemon and its client library.

The one-shot CLI pays interpreter cold-start, premise lowering and solver
work on every invocation; this package turns the engine into a long-lived
local service so that repeated work is paid once:

* :mod:`repro.service.fingerprints` — content addressing: an automaton pair
  plus the semantics-relevant checker options hash to a stable store key;
* :mod:`repro.service.store` — the content-addressed verdict store (sqlite
  index + on-disk certificate blobs) mapping store keys to verdict,
  certificate and minimized witness;
* :mod:`repro.service.core` — the transport-independent service core: warm
  worker pool, request deduplication, priority scheduling, backpressure and
  graceful draining;
* :mod:`repro.service.server` — the ``repro serve`` daemon: a unix-socket
  JSON-lines transport (default) and an opt-in local HTTP transport;
* :mod:`repro.service.client` — the typed client, with an in-process
  fallback so library code can program against one interface whether or not
  a daemon is running;
* :mod:`repro.service.protocol` — the wire-protocol schema and the endpoint
  registry that the documentation generator renders into ``docs/service.md``.

A store hit is served by *certificate replay* (:func:`repro.core.certificate.
verify_certificate` for proofs, concrete witness replay for refutations) —
never by a fresh proof search — so a million identical queries cost one
solve.
"""

from .client import (  # noqa: F401
    CheckOutcome,
    InProcessClient,
    ServiceClient,
    ServiceError,
    ServiceOverloadedError,
    parse_server_address,
    resolve_client,
)
from .core import ServiceConfig, ServiceCore  # noqa: F401
from .fingerprints import config_fingerprint, pair_fingerprint, store_key  # noqa: F401
from .store import StoreStatistics, VerdictStore  # noqa: F401
