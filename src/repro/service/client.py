"""Typed client library for the equivalence service.

Two interchangeable clients implement the same surface:

* :class:`ServiceClient` talks to a running daemon — JSON-lines over a unix
  socket, or HTTP when given an ``http://`` address.  ``overloaded``
  rejections are retried automatically using the server's ``retry_after``
  hint (bounded; a saturated server eventually surfaces as
  :class:`ServiceOverloadedError`).
* :class:`InProcessClient` embeds a worker-less :class:`ServiceCore` and
  runs every request inline.  It exists so callers can be written against
  one API and degrade gracefully when no daemon is configured — this is the
  fallback :func:`resolve_client` returns when ``LEAPFROG_SERVER`` is
  unset.

Results come back typed: :class:`CheckOutcome` mirrors
:class:`~repro.core.equivalence.EquivalenceResult` closely enough that CLI
code can print it (``str()`` is the server-rendered display line, byte-equal
to the in-process checker's output) and read ``.verdict`` /
``.statistics`` / ``.counterexample`` without caring where the answer came
from.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.algorithm import CheckerStatistics
from ..core.counterexample import Counterexample
from ..p4a.pretty import pretty
from ..p4a.syntax import P4Automaton
from .core import ServiceConfig, ServiceCore, ServiceRequestError
from .store import decode_counterexample

#: Default bound on automatic retries after ``overloaded`` rejections.
DEFAULT_MAX_RETRIES = 8


class ServiceError(Exception):
    """A request the service answered with an error envelope."""

    def __init__(self, code: str, message: str, status: int = 500,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.code = code
        self.status = status
        self.retry_after = retry_after


class ServiceOverloadedError(ServiceError):
    """Backpressure rejection that survived the client's retry budget."""


def parse_server_address(address: str) -> Tuple[str, str]:
    """``LEAPFROG_SERVER`` / ``--server`` value → ``(transport, location)``.

    ``http://host:port`` selects the HTTP transport; ``unix:/path`` or a
    bare filesystem path selects the unix-socket transport.
    """
    address = address.strip()
    if not address:
        raise ValueError("server address is empty")
    if address.startswith("http://") or address.startswith("https://"):
        return "http", address.rstrip("/")
    if address.startswith("unix:"):
        address = address[len("unix:"):]
        if not address:
            raise ValueError("unix: server address is missing the socket path")
    return "unix", address


def _verdict_from_name(name: str) -> Optional[bool]:
    return {"equivalent": True, "not_equivalent": False, "unknown": None}[name]


def _statistics_from_dict(payload: Dict[str, object]) -> CheckerStatistics:
    known = {f.name for f in dataclasses.fields(CheckerStatistics)}
    return CheckerStatistics(**{k: v for k, v in payload.items() if k in known})


@dataclass
class CheckOutcome:
    """A ``check`` answer, shaped like an ``EquivalenceResult`` for callers.

    ``str(outcome)`` is the display line the in-process checker would have
    printed (rendered server-side from the real result), so CLI output is
    byte-identical whichever path served the request.
    """

    verdict: Optional[bool]
    display: str
    source: str  # "solve" | "store" | "dedupe"
    pair_fingerprint: str
    store_key: str
    statistics: CheckerStatistics
    certificate: Optional[Dict[str, object]] = None
    counterexample_data: Optional[Dict[str, object]] = None
    elapsed_seconds: float = 0.0
    raw: Dict[str, object] = field(default_factory=dict)

    @property
    def proved(self) -> bool:
        return self.verdict is True

    @property
    def refuted(self) -> bool:
        return self.verdict is False

    @property
    def counterexample(self) -> Optional[Counterexample]:
        if self.counterexample_data is None:
            return None
        return decode_counterexample(json.dumps(self.counterexample_data))

    def __str__(self) -> str:
        return self.display

    @classmethod
    def from_result(cls, result: Dict[str, object]) -> "CheckOutcome":
        return cls(
            verdict=_verdict_from_name(result["verdict"]),
            display=result["display"],
            source=result["source"],
            pair_fingerprint=result["pair_fingerprint"],
            store_key=result["store_key"],
            statistics=_statistics_from_dict(result.get("statistics") or {}),
            certificate=result.get("certificate"),
            counterexample_data=result.get("counterexample"),
            elapsed_seconds=float(result.get("elapsed_seconds") or 0.0),
            raw=result,
        )


@dataclass
class CaseResult:
    """A ``case`` answer: the Table 2 metrics row plus the verdict."""

    metrics: Dict[str, object]
    verdict: Optional[bool]
    source: str
    elapsed_seconds: float = 0.0

    @classmethod
    def from_result(cls, result: Dict[str, object]) -> "CaseResult":
        return cls(
            metrics=dict(result.get("metrics") or {}),
            verdict=_verdict_from_name(result["verdict"]),
            source=result["source"],
            elapsed_seconds=float(result.get("elapsed_seconds") or 0.0),
        )


def check_options_from_config(config=None, find_counterexamples: bool = True
                              ) -> Dict[str, object]:
    """A :class:`CheckerConfig`'s semantics-relevant fields as wire options.

    Defaults are omitted so equivalent configurations serialize identically
    (and hit the same verdict-store entry).  Perf-only settings — query
    cache, incremental sessions, jobs — deliberately do not travel: they are
    the daemon's business and excluded from the config fingerprint.
    """
    options: Dict[str, object] = {}
    if config is not None:
        if not config.use_leaps:
            options["use_leaps"] = False
        if not config.use_reachability:
            options["use_reachability"] = False
        if not config.minimize_counterexamples:
            options["minimize_counterexamples"] = False
        if config.oracle_packets:
            options["oracle_packets"] = config.oracle_packets
        if config.oracle_seed is not None:
            options["oracle_seed"] = config.oracle_seed
    if not find_counterexamples:
        options["find_counterexamples"] = False
    return options


def _automaton_payload(automaton: P4Automaton, start: str) -> Dict[str, str]:
    # Canonical surface rendering: differently formatted sources of the same
    # automaton hash to the same pair fingerprint server-side.
    return {"name": automaton.name, "source": pretty(automaton), "start": start}


class _ClientBase:
    """The typed call surface, shared by the remote and in-process clients."""

    def request(self, endpoint: str, params: Optional[Dict[str, object]] = None
                ) -> Dict[str, object]:
        raise NotImplementedError

    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def stats(self) -> Dict[str, object]:
        return self.request("stats")

    def drain(self) -> Dict[str, object]:
        return self.request("drain")

    def shutdown(self, drain: bool = True) -> Dict[str, object]:
        return self.request("shutdown", {"drain": drain})

    def check(
        self,
        left: P4Automaton,
        left_start: str,
        right: P4Automaton,
        right_start: str,
        options: Optional[Dict[str, object]] = None,
    ) -> CheckOutcome:
        params: Dict[str, object] = {
            "left": _automaton_payload(left, left_start),
            "right": _automaton_payload(right, right_start),
        }
        if options:
            params["options"] = dict(options)
        return CheckOutcome.from_result(self.request("check", params))

    def case(
        self,
        name: str,
        full: bool = False,
        options: Optional[Dict[str, object]] = None,
    ) -> CaseResult:
        params: Dict[str, object] = {"name": name, "full": full}
        if options:
            params["options"] = dict(options)
        return CaseResult.from_result(self.request("case", params))

    def close(self) -> None:
        pass

    def __enter__(self) -> "_ClientBase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServiceClient(_ClientBase):
    """Client for a running ``repro serve`` daemon."""

    def __init__(self, address: str, timeout: float = 600.0,
                 max_retries: int = DEFAULT_MAX_RETRIES) -> None:
        self.transport, self.location = parse_server_address(address)
        self.address = address
        self.timeout = timeout
        self.max_retries = max_retries
        self._request_id = 0

    # -- transport ------------------------------------------------------

    def _roundtrip_unix(self, envelope: Dict[str, object]) -> Dict[str, object]:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(self.timeout)
        try:
            try:
                conn.connect(self.location)
            except OSError as exc:
                raise ServiceError(
                    "unreachable",
                    f"cannot reach daemon at {self.location!r}: {exc} "
                    f"(is `leapfrog-repro serve` running?)",
                ) from None
            conn.sendall(json.dumps(envelope).encode() + b"\n")
            with conn.makefile("rb") as reader:
                line = reader.readline()
        finally:
            conn.close()
        if not line:
            raise ServiceError(
                "unreachable", f"daemon at {self.location!r} closed the connection"
            )
        response = json.loads(line.decode())
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", "internal"),
            error.get("message", "unknown server error"),
            status=int(error.get("status", 500)),
            retry_after=error.get("retry_after"),
        )

    def _roundtrip_http(self, endpoint: str,
                        params: Dict[str, object]) -> Dict[str, object]:
        url = f"{self.location}/v1/{endpoint}"
        request = urllib.request.Request(
            url, data=json.dumps(params).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                error = json.loads(exc.read().decode())
            except ValueError:
                error = {}
            raise ServiceError(
                error.get("code", "internal"),
                error.get("message", f"HTTP {exc.code}"),
                status=exc.code,
                retry_after=error.get("retry_after"),
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                "unreachable",
                f"cannot reach daemon at {self.location!r}: {exc.reason} "
                f"(is `leapfrog-repro serve --http` running?)",
            ) from None

    # -- request with overload retry ------------------------------------

    def request(self, endpoint: str, params: Optional[Dict[str, object]] = None
                ) -> Dict[str, object]:
        params = params or {}
        attempts = 0
        while True:
            try:
                if self.transport == "http":
                    return self._roundtrip_http(endpoint, params)
                self._request_id += 1
                return self._roundtrip_unix({
                    "id": self._request_id, "endpoint": endpoint, "params": params,
                })
            except ServiceError as exc:
                if exc.code != "overloaded":
                    raise
                attempts += 1
                if attempts > self.max_retries:
                    raise ServiceOverloadedError(
                        exc.code,
                        f"server still overloaded after {attempts} attempts: {exc}",
                        status=exc.status, retry_after=exc.retry_after,
                    ) from None
                time.sleep(exc.retry_after or 0.1)


class InProcessClient(_ClientBase):
    """The same call surface, served by an embedded worker-less core.

    Used as the fallback when no daemon address is configured: CLI code
    talks to one client type and gets identical results either way.  The
    embedded core can still be given a ``store_dir``, which makes this a
    daemon-less way to build or read a verdict store.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        if config is None:
            config = ServiceConfig(workers=0)
        elif config.workers != 0:
            config = dataclasses.replace(config, workers=0)
        self.core = ServiceCore(config)

    def request(self, endpoint: str, params: Optional[Dict[str, object]] = None
                ) -> Dict[str, object]:
        try:
            return self.core.handle(endpoint, params or {})
        except ServiceRequestError as exc:
            from .protocol import ERROR_STATUS

            raise ServiceError(
                exc.code, str(exc), status=ERROR_STATUS.get(exc.code, 500),
                retry_after=exc.retry_after,
            ) from None

    def close(self) -> None:
        self.core.shutdown()


def resolve_client(
    server: Optional[str],
    config: Optional[ServiceConfig] = None,
) -> _ClientBase:
    """A client for ``server`` when set, the in-process fallback otherwise."""
    if server:
        return ServiceClient(server)
    return InProcessClient(config)
