"""The transport-independent service core.

One :class:`ServiceCore` instance sits behind every transport (unix socket,
HTTP, or the in-process client) and implements the request lifecycle::

    client -> dedupe -> bounded priority queue -> warm worker -> store
                                                      |
                                                      v
                                   store hit: certificate/witness replay
                                   store miss: fresh solve, result stored

* **Dedupe** — concurrent ``check`` requests with the same store key (pair
  fingerprint × config fingerprint) collapse onto one in-flight task; the
  extra requesters attach as waiters and are answered from the single
  result (``source: "dedupe"``).  This is also the batching story: a batch
  of identical queries is exactly one unit of work.
* **Priorities** — tasks carry a numeric priority (lower runs first).  The
  default is derived from the pair's total header bits, so mini-sized
  requests overtake paper-sized ones; requests may override it explicitly.
  Ties run in arrival order.
* **Backpressure** — the queue is bounded (``max_pending``); a submit that
  would exceed the bound is rejected immediately with an ``overloaded``
  error carrying a ``retry_after`` hint (429 over HTTP), instead of letting
  latency grow without bound.
* **Warm workers** — each worker thread owns a persistent
  :class:`~repro.smt.cache.CachingBackend` (in-memory query cache, plus the
  shared persistent sqlite cache when ``cache_dir`` is set) that lives
  across requests, so premise lowering and solver queries stay warm.  The
  in-memory layer is trimmed when it grows past ``memory_cache_cap``.
* **Store** — definitive verdicts land in the content-addressed
  :class:`~repro.service.store.VerdictStore`; a later identical request is
  served by replaying the stored certificate
  (:func:`repro.core.certificate.verify_certificate`) or witness
  (:func:`repro.oracle.minimize.confirm_counterexample`) — never by a
  fresh proof search.  A replay that fails (it never should) evicts the
  entry and falls back to a solve.
* **Draining** — :meth:`drain` stops intake while queued work finishes;
  :meth:`shutdown` optionally cancels the queue and joins the workers.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.algorithm import CheckerConfig, CheckerStatistics
from ..core.certificate import verify_certificate
from ..core.counterexample import Counterexample
from ..core.equivalence import EquivalenceResult, check_language_equivalence
from ..p4a.surface import parse_automaton
from ..p4a.syntax import P4Automaton
from ..smt.cache import make_backend
from .fingerprints import config_fingerprint, pair_fingerprint, store_key
from .protocol import ENDPOINTS, PROTOCOL_VERSION
from .store import VerdictStore, encode_counterexample

#: Default bound on the request queue.
DEFAULT_MAX_PENDING = 64

#: Pairs whose total header bits are at or under this threshold get the
#: high (mini) default priority; everything larger queues behind them.
MINI_BITS_THRESHOLD = 256

#: Default priorities (lower runs first).
PRIORITY_MINI = 10
PRIORITY_FULL = 20

#: Documented meaning of every server-level statistics field rendered into
#: ``docs/service.md`` next to the store counters.
SERVER_STATISTIC_FIELDS: Dict[str, str] = {
    "requests": "requests received, by endpoint name",
    "checks": "check requests admitted (deduped waiters included)",
    "cases": "case requests admitted",
    "solves": "fresh proof searches executed by the workers",
    "dedupe_hits": "check/case requests attached to an identical in-flight task",
    "rejected_overloaded": "requests rejected by backpressure (429)",
    "rejected_draining": "requests rejected or cancelled while draining (503)",
    "task_errors": "tasks that failed with an internal error",
    "queue_high_water": "largest queue depth observed",
    "uptime_seconds": "seconds since the core started (gauge)",
}


class ServiceRequestError(Exception):
    """A request-level failure, mapped onto the wire error envelope."""

    def __init__(self, code: str, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


@dataclass
class ServiceConfig:
    """Tunable behaviour of one :class:`ServiceCore`."""

    workers: int = 1
    store_dir: Optional[str] = None
    max_store_entries: Optional[int] = None
    cache_dir: Optional[str] = None
    max_pending: int = DEFAULT_MAX_PENDING
    memory_cache_cap: int = 50_000
    mini_bits_threshold: int = MINI_BITS_THRESHOLD

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")


@dataclass
class _CheckRequest:
    """A parsed, validated ``check`` request."""

    left: P4Automaton
    left_start: str
    right: P4Automaton
    right_start: str
    config: CheckerConfig
    find_counterexamples: bool
    no_store: bool
    priority: int
    pair_fp: str
    config_fp: str
    key: str


@dataclass
class _Task:
    """One unit of queued work; deduplicated requests share a task."""

    kind: str  # "check" | "case"
    key: str
    priority: int
    seq: int
    check: Optional[_CheckRequest] = None
    case_name: Optional[str] = None
    case_full: bool = False
    case_config: Optional[CheckerConfig] = None
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[Dict[str, object]] = None
    error: Optional[ServiceRequestError] = None
    waiters: int = 1

    def finish(self, result: Optional[Dict[str, object]] = None,
               error: Optional[ServiceRequestError] = None) -> None:
        self.result = result
        self.error = error
        self.done.set()


class _WorkerState:
    """Per-worker warm state: a persistent caching backend plus counters."""

    def __init__(self, worker_id: int, cache_dir: Optional[str],
                 memory_cache_cap: int) -> None:
        self.worker_id = worker_id
        self.backend = make_backend(use_cache=True, cache_dir=cache_dir)
        self.memory_cache_cap = memory_cache_cap
        self.solves = 0
        self.replays = 0
        self.memory_cache_trims = 0

    def trim(self) -> None:
        dropped = self.backend.trim_memory(self.memory_cache_cap)
        if dropped:
            self.memory_cache_trims += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "id": self.worker_id,
            "solves": self.solves,
            "replays": self.replays,
            "memory_cache_entries": self.backend.memory_entries,
            "memory_cache_trims": self.memory_cache_trims,
        }


class ServiceCore:
    """Dedupe + priority queue + warm workers + verdict store (no transport)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.store: Optional[VerdictStore] = (
            VerdictStore(self.config.store_dir,
                         max_entries=self.config.max_store_entries)
            if self.config.store_dir else None
        )
        self._lock = threading.Lock()
        self._queue_cond = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, _Task]] = []
        self._inflight: Dict[str, _Task] = {}
        self._seq = itertools.count()
        self._draining = False
        self._stopped = False
        self._started = time.monotonic()
        self._threads: List[threading.Thread] = []
        self._worker_states: List[_WorkerState] = []
        self._inline_state: Optional[_WorkerState] = None
        # Counters (all guarded by self._lock).
        self.requests: Dict[str, int] = {}
        self.checks = 0
        self.cases = 0
        self.solves = 0
        self.dedupe_hits = 0
        self.rejected_overloaded = 0
        self.rejected_draining = 0
        self.task_errors = 0
        self.queue_high_water = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Spawn the worker pool (no-op when ``workers == 0``)."""
        for worker_id in range(self.config.workers):
            state = _WorkerState(worker_id, self.config.cache_dir,
                                 self.config.memory_cache_cap)
            thread = threading.Thread(
                target=self._worker_loop, args=(state,),
                name=f"leapfrog-worker-{worker_id}", daemon=True,
            )
            self._worker_states.append(state)
            self._threads.append(thread)
            thread.start()

    def drain(self) -> int:
        """Stop intake; return the number of queued tasks still pending."""
        with self._lock:
            self._draining = True
            return len(self._heap)

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> int:
        """Drain (or cancel) outstanding work and join the worker pool.

        Returns the number of tasks that were cancelled.  Safe to call more
        than once.
        """
        cancelled: List[_Task] = []
        with self._queue_cond:
            self._draining = True
            if not drain:
                cancelled = [task for _, _, task in self._heap]
                self._heap.clear()
                for task in cancelled:
                    self._inflight.pop(task.key, None)
            self._stopped = True
            self._queue_cond.notify_all()
        for task in cancelled:
            with self._lock:
                self.rejected_draining += task.waiters
            task.finish(error=ServiceRequestError(
                "draining", "server is shutting down; request cancelled"
            ))
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        if self.store is not None:
            self.store.close()
        return len(cancelled)

    @property
    def draining(self) -> bool:
        return self._draining

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    # ------------------------------------------------------------------
    # Request parsing

    def _count_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    @staticmethod
    def _parse_side(params: Dict[str, object], side: str) -> Tuple[P4Automaton, str]:
        payload = params.get(side)
        if not isinstance(payload, dict):
            raise ServiceRequestError("bad_request", f"missing automaton object {side!r}")
        for fld in ("name", "source", "start"):
            if not isinstance(payload.get(fld), str) or not payload[fld]:
                raise ServiceRequestError(
                    "bad_request", f"{side}.{fld} must be a non-empty string"
                )
        try:
            automaton = parse_automaton(payload["source"], name=payload["name"])
        except Exception as exc:
            raise ServiceRequestError(
                "bad_request", f"{side} automaton does not parse: {exc}"
            ) from None
        start = payload["start"]
        if start not in automaton.states:
            raise ServiceRequestError(
                "bad_request",
                f"{side} start state {start!r} not in "
                f"{sorted(automaton.states)}",
            )
        return automaton, start

    def _parse_check(self, params: Dict[str, object]) -> _CheckRequest:
        left, left_start = self._parse_side(params, "left")
        right, right_start = self._parse_side(params, "right")
        options = params.get("options") or {}
        if not isinstance(options, dict):
            raise ServiceRequestError("bad_request", "options must be an object")
        known = {
            "use_leaps", "use_reachability", "find_counterexamples",
            "minimize_counterexamples", "oracle_packets", "oracle_seed",
            "priority", "no_store",
        }
        unknown = set(options) - known
        if unknown:
            raise ServiceRequestError(
                "bad_request", f"unknown check options: {sorted(unknown)}"
            )
        oracle_seed = options.get("oracle_seed")
        config = CheckerConfig(
            use_leaps=bool(options.get("use_leaps", True)),
            use_reachability=bool(options.get("use_reachability", True)),
            oracle_packets=int(options.get("oracle_packets") or 0),
            oracle_seed=int(oracle_seed) if oracle_seed is not None else None,
            minimize_counterexamples=bool(
                options.get("minimize_counterexamples", True)
            ),
            cache_dir=None,
        )
        find_counterexamples = bool(options.get("find_counterexamples", True))
        pair_fp = pair_fingerprint(left, left_start, right, right_start)
        config_fp = config_fingerprint(config, find_counterexamples)
        priority = options.get("priority")
        if priority is None:
            total_bits = left.total_header_bits() + right.total_header_bits()
            priority = (
                PRIORITY_MINI if total_bits <= self.config.mini_bits_threshold
                else PRIORITY_FULL
            )
        return _CheckRequest(
            left=left, left_start=left_start, right=right, right_start=right_start,
            config=config, find_counterexamples=find_counterexamples,
            no_store=bool(options.get("no_store", False)),
            priority=int(priority),
            pair_fp=pair_fp, config_fp=config_fp,
            key=store_key(pair_fp, config_fp),
        )

    # ------------------------------------------------------------------
    # Submission (dedupe + backpressure)

    def _submit(self, task: _Task) -> Tuple[_Task, bool]:
        """Enqueue ``task`` or attach to an identical in-flight one.

        Returns ``(task, attached)``; raises on backpressure or draining.
        """
        with self._queue_cond:
            if self._draining:
                self.rejected_draining += 1
                raise ServiceRequestError(
                    "draining", "server is draining; not accepting new work"
                )
            existing = self._inflight.get(task.key)
            if existing is not None:
                existing.waiters += 1
                self.dedupe_hits += 1
                return existing, True
            if len(self._heap) >= self.config.max_pending:
                self.rejected_overloaded += 1
                retry_after = round(max(0.1, 0.05 * len(self._heap)), 3)
                raise ServiceRequestError(
                    "overloaded",
                    f"queue is full ({len(self._heap)} pending); retry later",
                    retry_after=retry_after,
                )
            self._inflight[task.key] = task
            heapq.heappush(self._heap, (task.priority, task.seq, task))
            self.queue_high_water = max(self.queue_high_water, len(self._heap))
            self._queue_cond.notify()
            return task, False

    def _next_task(self) -> Optional[_Task]:
        with self._queue_cond:
            while not self._heap and not self._stopped:
                self._queue_cond.wait(timeout=0.5)
            if self._heap:
                _, _, task = heapq.heappop(self._heap)
                return task
            return None

    def _worker_loop(self, state: _WorkerState) -> None:
        while True:
            task = self._next_task()
            if task is None:
                return
            self._run_task(task, state)

    def _run_task(self, task: _Task, state: _WorkerState) -> None:
        try:
            if task.kind == "check":
                result = self._process_check(task.check, state)
            else:
                result = self._process_case(task, state)
        except ServiceRequestError as exc:
            with self._lock:
                self.task_errors += 1
            self._finish(task, error=exc)
        except Exception as exc:  # noqa: BLE001 - report, don't kill the worker
            with self._lock:
                self.task_errors += 1
            self._finish(task, error=ServiceRequestError(
                "internal", f"{type(exc).__name__}: {exc}"
            ))
        else:
            self._finish(task, result=result)

    def _finish(self, task: _Task,
                result: Optional[Dict[str, object]] = None,
                error: Optional[ServiceRequestError] = None) -> None:
        with self._lock:
            self._inflight.pop(task.key, None)
        task.finish(result=result, error=error)

    # ------------------------------------------------------------------
    # Check processing (store replay, then solve)

    def _process_check(self, request: _CheckRequest,
                       state: _WorkerState) -> Dict[str, object]:
        started = time.perf_counter()
        if self.store is not None and not request.no_store:
            replayed = self._replay_from_store(request, state)
            if replayed is not None:
                state.replays += 1
                return self._check_result(
                    replayed, request, "store", time.perf_counter() - started
                )
        result = check_language_equivalence(
            request.left, request.left_start, request.right, request.right_start,
            config=request.config, backend=state.backend,
            find_counterexamples=request.find_counterexamples,
        )
        elapsed = time.perf_counter() - started
        state.solves += 1
        with self._lock:
            self.solves += 1
        state.trim()
        if (
            self.store is not None and not request.no_store
            and result.verdict is not None
        ):
            self.store.put(
                request.key, request.pair_fp, request.config_fp,
                verdict=result.verdict,
                certificate=result.certificate,
                counterexample=result.counterexample,
                oracle=dict(result.statistics.oracle),
                solve_seconds=elapsed,
            )
        return self._check_result(result, request, "solve", elapsed)

    def _replay_from_store(self, request: _CheckRequest,
                           state: _WorkerState) -> Optional[EquivalenceResult]:
        """A stored verdict revalidated by replay, or ``None`` to solve."""
        entry = self.store.get(request.key)
        if entry is None:
            return None
        if entry.verdict:
            ok = (
                entry.certificate is not None
                and verify_certificate(
                    entry.certificate, request.left, request.right,
                    backend=state.backend,
                ).ok
            )
        else:
            from ..oracle.minimize import confirm_counterexample

            ok = (
                entry.counterexample is not None
                and confirm_counterexample(
                    request.left, request.left_start,
                    request.right, request.right_start,
                    entry.counterexample,
                )
            )
        if not ok:
            self.store.count_replay_failure()
            self.store.discard(request.key)
            return None
        self.store.count_replay()
        statistics = CheckerStatistics(oracle=dict(entry.oracle))
        if entry.verdict:
            return EquivalenceResult(True, entry.certificate, None, statistics)
        return EquivalenceResult(False, None, entry.counterexample, statistics)

    @staticmethod
    def _verdict_name(verdict: Optional[bool]) -> str:
        if verdict is None:
            return "unknown"
        return "equivalent" if verdict else "not_equivalent"

    def _check_result(self, result: EquivalenceResult, request: _CheckRequest,
                      source: str, elapsed: float) -> Dict[str, object]:
        certificate = None
        if result.certificate is not None:
            certificate = {
                "summary": result.certificate.summary(),
                "relation_size": len(result.certificate.relation),
                "reachable_pairs": len(result.certificate.reachable_pairs),
            }
        counterexample = None
        if result.counterexample is not None:
            counterexample = json.loads(encode_counterexample(result.counterexample))
        return {
            "verdict": self._verdict_name(result.verdict),
            "display": str(result),
            "source": source,
            "pair_fingerprint": request.pair_fp,
            "store_key": request.key,
            "certificate": certificate,
            "counterexample": counterexample,
            "statistics": result.statistics.as_dict(),
            "elapsed_seconds": round(elapsed, 6),
        }

    # ------------------------------------------------------------------
    # Case processing

    def _parse_case(self, params: Dict[str, object]) -> _Task:
        name = params.get("name")
        if not isinstance(name, str) or not name:
            raise ServiceRequestError("bad_request", "name must be a non-empty string")
        from ..reporting.runner import case_studies

        if name not in case_studies():
            raise ServiceRequestError(
                "bad_request",
                f"unknown case study {name!r}; known: "
                f"{', '.join(sorted(case_studies()))}",
            )
        full = bool(params.get("full", False))
        options = params.get("options") or {}
        if not isinstance(options, dict):
            raise ServiceRequestError("bad_request", "options must be an object")
        oracle_packets = int(options.get("oracle_packets") or 0)
        oracle_seed = options.get("oracle_seed")
        config = CheckerConfig(
            cache_dir=self.config.cache_dir,
            oracle_packets=oracle_packets,
            oracle_seed=oracle_seed,
        )
        priority = options.get("priority")
        if priority is None:
            priority = PRIORITY_FULL if full else PRIORITY_MINI
        key = f"case/{name}/{'full' if full else 'mini'}/{oracle_packets}/{oracle_seed}"
        return _Task(
            kind="case", key=key, priority=int(priority), seq=next(self._seq),
            case_name=name, case_full=full, case_config=config,
        )

    def _process_case(self, task: _Task, state: _WorkerState) -> Dict[str, object]:
        from ..reporting.runner import case_studies

        started = time.perf_counter()
        outcome = case_studies()[task.case_name](full=task.case_full,
                                                 config=task.case_config)
        elapsed = time.perf_counter() - started
        state.solves += 1
        with self._lock:
            self.solves += 1
        return {
            "metrics": outcome.metrics.as_dict(),
            "verdict": self._verdict_name(outcome.verdict),
            "source": "solve",
            "elapsed_seconds": round(elapsed, 6),
        }

    # ------------------------------------------------------------------
    # Endpoint dispatch (shared by every transport)

    def handle(self, endpoint: str, params: Dict[str, object]) -> Dict[str, object]:
        """Dispatch one request; raises :class:`ServiceRequestError` on failure."""
        if endpoint not in ENDPOINTS:
            raise ServiceRequestError(
                "unknown_endpoint",
                f"unknown endpoint {endpoint!r}; known: {sorted(ENDPOINTS)}",
            )
        self._count_request(endpoint)
        if endpoint == "ping":
            from .. import __version__

            return {
                "version": __version__,
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": round(self.uptime_seconds(), 3),
                "draining": self._draining,
            }
        if endpoint == "stats":
            return self.statistics_snapshot()
        if endpoint == "drain":
            pending = self.drain()
            return {"draining": True, "pending": pending}
        if endpoint == "shutdown":
            # The transport layer stops the listener; the core only reports.
            with self._lock:
                pending = len(self._heap)
            return {"stopping": True, "pending": pending,
                    "drain": bool(params.get("drain", True))}
        if endpoint == "check":
            request = self._parse_check(params)
            with self._lock:
                self.checks += 1
            return self._wait_for(self._submit_check(request))
        if endpoint == "case":
            task = self._parse_case(params)
            with self._lock:
                self.cases += 1
            return self._wait_for(self._submit_task(task))
        raise ServiceRequestError("internal", f"unhandled endpoint {endpoint!r}")

    def _submit_check(self, request: _CheckRequest) -> Tuple[_Task, bool]:
        task = _Task(kind="check", key=request.key, priority=request.priority,
                     seq=next(self._seq), check=request)
        return self._submit(task)

    def _submit_task(self, task: _Task) -> Tuple[_Task, bool]:
        return self._submit(task)

    def _wait_for(self, submitted: Tuple[_Task, bool]) -> Dict[str, object]:
        task, attached = submitted
        if not self._threads:
            # No worker pool (in-process mode): run queued work inline.
            self._run_pending_inline()
        task.done.wait()
        if task.error is not None:
            raise task.error
        result = dict(task.result)
        if attached and result.get("source") in ("solve", "store"):
            result["source"] = "dedupe"
        return result

    # ------------------------------------------------------------------
    # In-process (worker-less) execution

    def _inline_worker(self) -> _WorkerState:
        if self._inline_state is None:
            self._inline_state = _WorkerState(
                -1, self.config.cache_dir, self.config.memory_cache_cap
            )
        return self._inline_state

    def _run_pending_inline(self) -> None:
        state = self._inline_worker()
        while True:
            with self._queue_cond:
                if not self._heap:
                    return
                _, _, task = heapq.heappop(self._heap)
            self._run_task(task, state)

    # ------------------------------------------------------------------
    # Statistics

    def statistics_snapshot(self) -> Dict[str, object]:
        with self._lock:
            server = {
                "requests": dict(self.requests),
                "checks": self.checks,
                "cases": self.cases,
                "solves": self.solves,
                "dedupe_hits": self.dedupe_hits,
                "rejected_overloaded": self.rejected_overloaded,
                "rejected_draining": self.rejected_draining,
                "task_errors": self.task_errors,
                "queue_high_water": self.queue_high_water,
                "uptime_seconds": round(self.uptime_seconds(), 3),
            }
            queue = {
                "pending": len(self._heap),
                "max_pending": self.config.max_pending,
                "draining": self._draining,
            }
        workers = [state.snapshot() for state in self._worker_states]
        if self._inline_state is not None:
            workers.append(self._inline_state.snapshot())
        return {
            "server": server,
            "queue": queue,
            "workers": workers,
            # Explicit None check: VerdictStore defines __len__, so an empty
            # store is falsy and a bare truth test would hide its counters.
            "store": (self.store.snapshot_statistics()
                      if self.store is not None else None),
        }
