"""Content addressing for check requests.

A check request is a pure function of (a) the two automata with their start
states and (b) the semantics-relevant checker options, so the pair of those
two digests is a *content address* for its verdict: any two requests with
the same address are guaranteed the same verdict, certificate and witness,
and the second one can be served by replaying the first one's result.

Automata are digested through their canonical surface rendering
(:func:`repro.p4a.pretty.pretty`), which round-trips through the surface
parser (see ``tests/p4a/test_builder_surface.py``) and is deterministic for
a given automaton value.  Automaton *names* are included: they appear in
certificate summaries, and byte-identical output on a store hit requires
the stored certificate to carry the same names as a fresh solve would.

Checker options that only change *how fast* an answer is found (query
cache, incremental session, worker count) are deliberately excluded from
the config digest — the ablation benchmarks assert verdict parity across
them — while options that change *what* is reported (leaps, reachability,
counterexample search and minimization, oracle budget and seed) are
included.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..core.algorithm import CheckerConfig
from ..p4a.pretty import pretty
from ..p4a.syntax import P4Automaton

#: Bumped whenever the serialization of pairs or configs changes, so a
#: persistent verdict store keyed by old digests is never misread.
PAIR_FINGERPRINT_VERSION = "1"


def _digest(kind: str, payload: str) -> str:
    blob = f"{kind}:v{PAIR_FINGERPRINT_VERSION}:{payload}".encode()
    return hashlib.sha256(blob).hexdigest()


def automaton_fingerprint(aut: P4Automaton, start: str) -> str:
    """A stable digest of one automaton plus its start state."""
    return _digest("aut", f"{aut.name}\n{start}\n{pretty(aut)}")


def pair_fingerprint(
    left: P4Automaton, left_start: str, right: P4Automaton, right_start: str
) -> str:
    """A stable digest of an ordered automaton pair (the check's subject)."""
    return _digest(
        "pair",
        automaton_fingerprint(left, left_start)
        + automaton_fingerprint(right, right_start),
    )


def config_fingerprint(
    config: Optional[CheckerConfig] = None,
    find_counterexamples: bool = True,
    counterexample_max_leaps: int = 24,
) -> str:
    """A digest of the checker options that can change the reported result."""
    effective = config if config is not None else CheckerConfig()
    fields = (
        ("use_leaps", effective.use_leaps),
        ("use_reachability", effective.use_reachability),
        ("entailment_mode", effective.entailment_mode),
        ("max_iterations", effective.max_iterations),
        ("frontier_order", effective.frontier_order),
        ("oracle_packets", effective.oracle_packets),
        ("oracle_seed", effective.oracle_seed),
        ("minimize_counterexamples", effective.minimize_counterexamples),
        ("find_counterexamples", find_counterexamples),
        ("counterexample_max_leaps", counterexample_max_leaps),
    )
    payload = ";".join(f"{name}={value!r}" for name, value in fields)
    return _digest("config", payload)


def store_key(pair_fp: str, config_fp: str) -> str:
    """The verdict store's primary key: pair digest × config digest."""
    return _digest("key", f"{pair_fp}/{config_fp}")
