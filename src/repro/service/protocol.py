"""Wire-protocol schema and the endpoint registry.

The daemon speaks **JSON-lines over a unix stream socket** by default: one
request object per line, one response object per line, pipelining allowed.
The same request/response bodies ride over the opt-in local HTTP transport
(``POST /v1/<endpoint>``).  See ``docs/service.md`` for the full schema.

Envelope::

    request:  {"id": <any>, "endpoint": "<name>", "params": {...}}
    response: {"id": <any>, "ok": true,  "result": {...}}
              {"id": <any>, "ok": false, "error": {"code": "...",
                       "status": <int>, "message": "...",
                       "retry_after": <seconds, only for overloaded>}}

``id`` is echoed verbatim so clients can pipeline.  Over HTTP the envelope
is dropped: the body is ``params``, the response body is ``result`` (or the
``error`` object with the matching HTTP status, including ``Retry-After``
on 429).

:data:`ENDPOINTS` is the single source of truth for the endpoint surface:
the server dispatches only names registered here, and the documentation
generator renders the table in ``docs/service.md`` from it, so the docs
cannot drift from the live handler registry (a ``--check`` CI job enforces
this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Protocol version, echoed by ``ping`` and checked by the client.
PROTOCOL_VERSION = "1"

#: Error codes an endpoint may return, mapped to their HTTP-style status.
ERROR_STATUS: Dict[str, int] = {
    "bad_request": 400,
    "unknown_endpoint": 404,
    "overloaded": 429,
    "internal": 500,
    "draining": 503,
}


@dataclass(frozen=True)
class Endpoint:
    """One service endpoint: its request parameters and its result shape."""

    name: str
    summary: str
    params: Tuple[Tuple[str, str], ...]  # (field, description)
    result: str


ENDPOINTS: Dict[str, Endpoint] = {}


def _endpoint(endpoint: Endpoint) -> Endpoint:
    ENDPOINTS[endpoint.name] = endpoint
    return endpoint


PING = _endpoint(Endpoint(
    name="ping",
    summary="Liveness and version probe; also used to detect stale sockets.",
    params=(),
    result="`{version, protocol, uptime_seconds, draining}`",
))

CHECK = _endpoint(Endpoint(
    name="check",
    summary=(
        "Language-equivalence check of an automaton pair; served from the "
        "content-addressed verdict store by certificate/witness replay when "
        "possible, deduplicated against identical in-flight requests "
        "otherwise, solved on a warm worker as a last resort."
    ),
    params=(
        ("left", "`{name, source, start}` — left automaton in surface syntax"),
        ("right", "`{name, source, start}` — right automaton in surface syntax"),
        ("options",
         "optional checker options: `use_leaps`, `use_reachability`, "
         "`find_counterexamples`, `minimize_counterexamples`, "
         "`oracle_packets`, `oracle_seed`, `priority` (lower runs first; "
         "default derived from pair size, mini before full), `no_store` "
         "(bypass the verdict store for this request)"),
    ),
    result=(
        "`{verdict, display, source, pair_fingerprint, store_key, "
        "certificate, counterexample, statistics, elapsed_seconds}` — "
        "`source` is one of `solve`, `store`, `dedupe`"
    ),
))

CASE = _endpoint(Endpoint(
    name="case",
    summary=(
        "Run one registered Table 2 case study by name on a warm worker "
        "(deduplicated, not stored: case results carry run-local timing "
        "metrics that are not a pure function of the request)."
    ),
    params=(
        ("name", "registered case-study name (see `leapfrog-repro list`)"),
        ("full", "optional bool: paper-sized variant (default false)"),
        ("options", "optional: `oracle_packets`, `oracle_seed`, `priority`"),
    ),
    result="`{metrics, verdict, source, elapsed_seconds}`",
))

STATS = _endpoint(Endpoint(
    name="stats",
    summary="Snapshot of server, queue, worker and verdict-store statistics.",
    params=(),
    result=(
        "`{server, queue, workers, store}` — `store` holds the counters "
        "documented in the store-statistics table below"
    ),
))

DRAIN = _endpoint(Endpoint(
    name="drain",
    summary=(
        "Stop accepting new check/case work (503 `draining` from then on) "
        "while queued and in-flight requests finish; idempotent."
    ),
    params=(),
    result="`{draining, pending}`",
))

SHUTDOWN = _endpoint(Endpoint(
    name="shutdown",
    summary=(
        "Drain (optionally) and stop the daemon; the response is sent "
        "before the listener closes."
    ),
    params=(
        ("drain",
         "optional bool (default true): finish queued work first; false "
         "cancels queued requests with a `draining` error"),
    ),
    result="`{stopping, pending}`",
))
