"""The ``repro serve`` daemon: socket transports over a :class:`ServiceCore`.

Two transports are provided, both thin: they parse the envelope, call
:meth:`ServiceCore.handle` and serialize the answer.  All scheduling,
deduplication, store and backpressure logic lives in the core.

* **Unix socket (default)** — JSON-lines over ``SOCK_STREAM``: one request
  per line, one response per line, pipelining allowed.  The socket file is
  created with mode ``0600`` (owner-only), which is the service's entire
  authentication story: anyone who can open the socket can submit work.  A
  stale socket file left by a crashed daemon is detected (connect is
  refused) and replaced; a *live* daemon on the same path is reported as an
  error instead of being hijacked.
* **HTTP (opt-in, ``--http PORT``)** — ``POST /v1/<endpoint>`` with the
  params object as the body; the response body is the result object, and
  errors map to their HTTP status (429 carries ``Retry-After``).  Binds
  ``127.0.0.1`` only: the daemon is a local accelerator, not a network
  service.

Shutdown: the ``shutdown`` endpoint answers first, then the listener stops
accepting, queued work is drained (or cancelled with ``drain: false``) and
the workers are joined.  ``SIGTERM``/``SIGINT`` trigger the same path.  On
exit the final statistics snapshot is written to ``--stats-json`` when
given, so operators keep the counters of a finished run.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from .core import ServiceConfig, ServiceCore, ServiceRequestError
from .protocol import ERROR_STATUS


class ServerStartupError(Exception):
    """Raised when the daemon cannot bind its socket."""


def _error_payload(exc: ServiceRequestError) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "code": exc.code,
        "status": ERROR_STATUS.get(exc.code, 500),
        "message": str(exc),
    }
    if exc.retry_after is not None:
        payload["retry_after"] = exc.retry_after
    return payload


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: newline-delimited JSON requests in, responses out."""

    def handle(self) -> None:
        server: "ServiceServer" = self.server.service_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            response, after = server.dispatch_line(line)
            self.wfile.write(json.dumps(response).encode() + b"\n")
            self.wfile.flush()
            if after is not None:
                after()
                return


class _UnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = False


class _HttpHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "leapfrog-repro"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # the daemon's own logging is the stats endpoint; stay quiet

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        server: "ServiceServer" = self.server.service_server  # type: ignore[attr-defined]
        if not self.path.startswith("/v1/"):
            self._reply(404, {"code": "unknown_endpoint", "status": 404,
                              "message": f"unknown path {self.path!r}; use /v1/<endpoint>"})
            return
        endpoint = self.path[len("/v1/"):]
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b"{}"
        try:
            params = json.loads(body.decode() or "{}")
            if not isinstance(params, dict):
                raise ValueError("body must be a JSON object")
        except ValueError as exc:
            self._reply(400, {"code": "bad_request", "status": 400,
                              "message": f"request body is not valid JSON: {exc}"})
            return
        try:
            result = server.core.handle(endpoint, params)
        except ServiceRequestError as exc:
            payload = _error_payload(exc)
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = str(exc.retry_after)
            self._reply(int(payload["status"]), payload, headers)
            return
        self._reply(200, result)
        if endpoint == "shutdown":
            server.request_shutdown(drain=bool(params.get("drain", True)))

    def _reply(self, status: int, payload: Dict[str, object],
               headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True


def _remove_stale_socket(path: str) -> None:
    """Unlink a dead daemon's socket; refuse to replace a live one."""
    if not os.path.exists(path):
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.5)
    try:
        probe.connect(path)
    except OSError:
        os.unlink(path)  # nobody is listening: stale leftover
    else:
        probe.close()
        raise ServerStartupError(
            f"a daemon is already listening on {path!r}; stop it first or "
            f"choose another --socket path"
        )
    finally:
        probe.close()


class ServiceServer:
    """One running daemon: a core plus exactly one bound transport."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        socket_path: Optional[str] = None,
        http_port: Optional[int] = None,
        stats_json: Optional[str] = None,
    ) -> None:
        if (socket_path is None) == (http_port is None):
            raise ServerStartupError(
                "exactly one of socket_path / http_port must be given"
            )
        self.core = ServiceCore(config)
        self.socket_path = socket_path
        self.http_port = http_port
        self.stats_json = stats_json
        self._shutdown_drain = True
        self._shutdown_started = threading.Event()
        self.finished = threading.Event()
        if socket_path is not None:
            _remove_stale_socket(socket_path)
            try:
                self._server: socketserver.BaseServer = _UnixServer(
                    socket_path, _LineHandler
                )
            except OSError as exc:
                raise ServerStartupError(
                    f"cannot bind unix socket {socket_path!r}: {exc}"
                ) from None
            # Owner-only: possession of socket access is the auth model.
            os.chmod(socket_path, 0o600)
            self.address = f"unix:{socket_path}"
        else:
            try:
                self._server = _HttpServer(("127.0.0.1", http_port), _HttpHandler)
            except OSError as exc:
                raise ServerStartupError(
                    f"cannot bind 127.0.0.1:{http_port}: {exc}"
                ) from None
            self.address = f"http://127.0.0.1:{self._server.server_address[1]}"
        self._server.service_server = self  # type: ignore[attr-defined]

    # ------------------------------------------------------------------

    def dispatch_line(self, line: bytes):
        """Handle one JSON-lines request; returns ``(response, after)``.

        ``after`` is a callable to run once the response has been flushed
        (used by ``shutdown`` so the acknowledgement reaches the client
        before the listener dies), or ``None``.
        """
        request_id = None
        try:
            envelope = json.loads(line.decode())
            if not isinstance(envelope, dict):
                raise ValueError("request must be a JSON object")
            request_id = envelope.get("id")
            endpoint = envelope.get("endpoint")
            if not isinstance(endpoint, str):
                raise ValueError("request is missing the endpoint name")
            params = envelope.get("params") or {}
            if not isinstance(params, dict):
                raise ValueError("params must be a JSON object")
        except ValueError as exc:
            error = ServiceRequestError("bad_request", f"malformed request: {exc}")
            return {"id": request_id, "ok": False, "error": _error_payload(error)}, None
        try:
            result = self.core.handle(endpoint, params)
        except ServiceRequestError as exc:
            return {"id": request_id, "ok": False, "error": _error_payload(exc)}, None
        after = None
        if endpoint == "shutdown":
            drain = bool(params.get("drain", True))
            after = lambda: self.request_shutdown(drain=drain)  # noqa: E731
        return {"id": request_id, "ok": True, "result": result}, after

    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the daemon until a shutdown request (or signal) stops it."""
        self.core.start()
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._teardown()

    def request_shutdown(self, drain: bool = True) -> None:
        """Stop the listener from any thread; idempotent."""
        if self._shutdown_started.is_set():
            return
        self._shutdown_drain = drain
        self._shutdown_started.set()
        # serve_forever() must be stopped from another thread.
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def _teardown(self) -> None:
        self.core.shutdown(drain=self._shutdown_drain)
        self._server.server_close()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self.stats_json:
            snapshot = self.core.statistics_snapshot()
            with open(self.stats_json, "w") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
        self.finished.set()


def serve(
    config: Optional[ServiceConfig] = None,
    socket_path: Optional[str] = None,
    http_port: Optional[int] = None,
    stats_json: Optional[str] = None,
    install_signal_handlers: bool = True,
    announce=print,
) -> ServiceServer:
    """Build a :class:`ServiceServer`, announce it and serve until stopped."""
    import signal

    server = ServiceServer(
        config=config, socket_path=socket_path, http_port=http_port,
        stats_json=stats_json,
    )
    if install_signal_handlers:
        def _stop(signum, frame):  # noqa: ARG001
            server.request_shutdown(drain=True)

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    announce(
        f"leapfrog-repro serve: listening on {server.address} "
        f"({server.core.config.workers} worker(s), store "
        f"{server.core.config.store_dir or 'disabled'})"
    )
    server.serve_forever()
    announce("leapfrog-repro serve: stopped")
    return server
