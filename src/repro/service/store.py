"""The content-addressed verdict store.

Maps a store key (:func:`repro.service.fingerprints.store_key`: automaton
pair digest × checker-option digest) to everything needed to *replay* the
result without a fresh proof search:

* the **verdict** (``equivalent`` / ``not_equivalent``; ``unknown`` results
  are never stored — they are not definitive);
* the **certificate** of a proof, pickled into an on-disk blob addressed by
  the sha256 of its bytes (identical certificates share one blob file);
* the minimized **witness** of a refutation, as JSON (packet, stores,
  acceptance bits, leap widths);
* the **oracle telemetry** recorded when the verdict was first computed, so
  a store hit reproduces the original run's output byte for byte.

Layout on disk, under the store directory::

    verdicts_v<fingerprint-version>.sqlite   -- the index (WAL mode)
    blobs/<sha256>.pkl                       -- pickled certificates

The sqlite index is safe for concurrent use by several daemon workers and
several processes: connections enable WAL journaling and an explicit busy
timeout, every write is one short transaction, and in-process sharing is
serialized by a lock.  Blob files are written atomically (temp file +
rename), so a reader can never observe a half-written certificate.

**Eviction**: when ``max_entries`` is set, inserting beyond the cap evicts
the least-recently-*used* entries (``last_used`` is bumped on every hit)
and deletes their blobs unless another surviving entry still references
them.  Unset (the default) means the store grows without bound.

**Trust model**: certificate blobs are unpickled on load, so the store
directory carries the same trust as the query cache — local, writable only
by the operator.  Do not point the daemon at a store directory written by
an untrusted party.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.certificate import Certificate
from ..core.counterexample import Counterexample
from ..p4a.bitvec import Bits
from .fingerprints import PAIR_FINGERPRINT_VERSION

#: Busy timeout applied to every store connection, in milliseconds.  Keeps a
#: writer under a concurrent worker pool waiting instead of failing with
#: ``database is locked``.
BUSY_TIMEOUT_MS = 30_000

#: Documented meaning of every :class:`StoreStatistics` counter.  The docs
#: generator renders this mapping into ``docs/service.md``; keep entries in
#: sync with the dataclass fields (a drift test enforces it).
STORE_STATISTIC_FIELDS: Dict[str, str] = {
    "hits": "lookups answered from the store (the replayed-verdict count)",
    "misses": "lookups that found no entry and fell through to a fresh solve",
    "stores": "definitive verdicts written (new entries plus overwrites)",
    "replays": "store hits whose certificate or witness replay succeeded",
    "replay_failures": (
        "store hits whose replay failed; the entry is evicted and the "
        "request falls back to a fresh solve (should stay at 0)"
    ),
    "evictions": "entries removed by the LRU cap or after a failed replay",
    "entries": "entries currently in the index (gauge, not a counter)",
    "blob_bytes": "total size of the certificate blobs on disk (gauge)",
}


@dataclass
class StoreStatistics:
    """Hit/replay accounting for one :class:`VerdictStore` handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    replays: int = 0
    replay_failures: int = 0
    evictions: int = 0
    entries: int = 0
    blob_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in STORE_STATISTIC_FIELDS}


def encode_counterexample(cex: Counterexample) -> str:
    """Witness → JSON (bitstrings only, so the payload is transport-safe)."""
    return json.dumps({
        "packet": cex.packet.to_bitstring(),
        "left_store": {name: bits.to_bitstring() for name, bits in cex.left_store.items()},
        "right_store": {name: bits.to_bitstring() for name, bits in cex.right_store.items()},
        "left_accepts": cex.left_accepts,
        "right_accepts": cex.right_accepts,
        "leap_widths": list(cex.leap_widths),
        "minimized_from": cex.minimized_from,
    }, sort_keys=True)


def decode_counterexample(payload: str) -> Counterexample:
    data = json.loads(payload)
    return Counterexample(
        packet=Bits(data["packet"]),
        left_store={name: Bits(bits) for name, bits in data["left_store"].items()},
        right_store={name: Bits(bits) for name, bits in data["right_store"].items()},
        left_accepts=data["left_accepts"],
        right_accepts=data["right_accepts"],
        leap_widths=tuple(data["leap_widths"]),
        minimized_from=data["minimized_from"],
    )


@dataclass
class StoredVerdict:
    """One decoded store entry, ready for replay."""

    key: str
    pair_fingerprint: str
    config_fingerprint: str
    verdict: bool  # True = equivalent, False = not_equivalent
    certificate: Optional[Certificate]
    counterexample: Optional[Counterexample]
    oracle: Dict[str, object] = field(default_factory=dict)
    solve_seconds: float = 0.0
    uses: int = 0


class VerdictStore:
    """The sqlite + blob-directory verdict store (see the module docstring)."""

    def __init__(self, directory: str, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.path = os.path.join(
            directory, f"verdicts_v{PAIR_FINGERPRINT_VERSION}.sqlite"
        )
        self.blob_dir = os.path.join(directory, "blobs")
        os.makedirs(self.blob_dir, exist_ok=True)
        self.max_entries = max_entries
        self.statistics = StoreStatistics()
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        with self._lock:
            self._connection()  # create the schema eagerly; misconfiguration fails fast

    # ------------------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self._conn = sqlite3.connect(
                self.path, timeout=BUSY_TIMEOUT_MS / 1000.0, check_same_thread=False
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            with self._conn:
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS verdicts ("
                    " key TEXT PRIMARY KEY,"
                    " pair_fp TEXT NOT NULL,"
                    " config_fp TEXT NOT NULL,"
                    " verdict TEXT NOT NULL,"
                    " certificate_blob TEXT,"
                    " witness TEXT,"
                    " oracle TEXT,"
                    " solve_seconds REAL NOT NULL DEFAULT 0,"
                    " created REAL NOT NULL,"
                    " last_used REAL NOT NULL,"
                    " uses INTEGER NOT NULL DEFAULT 0)"
                )
        return self._conn

    # ------------------------------------------------------------------
    # Blobs

    def _blob_path(self, digest: str) -> str:
        return os.path.join(self.blob_dir, f"{digest}.pkl")

    def _write_blob(self, payload: bytes) -> str:
        import hashlib

        digest = hashlib.sha256(payload).hexdigest()
        path = self._blob_path(digest)
        if not os.path.exists(path):
            tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)  # atomic: readers never see partial blobs
        return digest

    def _read_blob(self, digest: str) -> Optional[bytes]:
        try:
            with open(self._blob_path(digest), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    # ------------------------------------------------------------------
    # Lookup / insert

    def get(self, key: str) -> Optional[StoredVerdict]:
        """Fetch and decode one entry, bumping its LRU position on a hit."""
        with self._lock:
            conn = self._connection()
            row = conn.execute(
                "SELECT pair_fp, config_fp, verdict, certificate_blob, witness,"
                " oracle, solve_seconds, uses FROM verdicts WHERE key = ?",
                (key,),
            ).fetchone()
            if row is None:
                self.statistics.misses += 1
                return None
            with conn:
                conn.execute(
                    "UPDATE verdicts SET last_used = ?, uses = uses + 1 WHERE key = ?",
                    (time.time(), key),
                )
        pair_fp, config_fp, verdict, blob_digest, witness, oracle, seconds, uses = row
        certificate = None
        if blob_digest is not None:
            payload = self._read_blob(blob_digest)
            if payload is None:
                # The index outlived its blob (e.g. a crash between blob GC
                # and index delete); treat as a miss and drop the orphan row.
                self.discard(key)
                with self._lock:
                    self.statistics.misses += 1
                return None
            certificate = pickle.loads(payload)
        with self._lock:
            self.statistics.hits += 1
        return StoredVerdict(
            key=key,
            pair_fingerprint=pair_fp,
            config_fingerprint=config_fp,
            verdict=(verdict == "equivalent"),
            certificate=certificate,
            counterexample=decode_counterexample(witness) if witness else None,
            oracle=json.loads(oracle) if oracle else {},
            solve_seconds=seconds,
            uses=uses + 1,
        )

    def put(
        self,
        key: str,
        pair_fp: str,
        config_fp: str,
        verdict: bool,
        certificate: Optional[Certificate] = None,
        counterexample: Optional[Counterexample] = None,
        oracle: Optional[Dict[str, object]] = None,
        solve_seconds: float = 0.0,
    ) -> None:
        """Record one definitive verdict (overwrites any entry at ``key``)."""
        blob_digest = None
        if certificate is not None:
            blob_digest = self._write_blob(
                pickle.dumps(certificate, protocol=pickle.HIGHEST_PROTOCOL)
            )
        now = time.time()
        with self._lock:
            conn = self._connection()
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO verdicts"
                    " (key, pair_fp, config_fp, verdict, certificate_blob, witness,"
                    "  oracle, solve_seconds, created, last_used, uses)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
                    (
                        key, pair_fp, config_fp,
                        "equivalent" if verdict else "not_equivalent",
                        blob_digest,
                        encode_counterexample(counterexample)
                        if counterexample is not None else None,
                        json.dumps(oracle, sort_keys=True) if oracle else None,
                        solve_seconds, now, now,
                    ),
                )
            self.statistics.stores += 1
        self._evict_over_cap()

    def discard(self, key: str) -> None:
        """Drop one entry (used after a failed replay); counts as an eviction."""
        with self._lock:
            conn = self._connection()
            row = conn.execute(
                "SELECT certificate_blob FROM verdicts WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return
            with conn:
                conn.execute("DELETE FROM verdicts WHERE key = ?", (key,))
            self.statistics.evictions += 1
            self._collect_blob(conn, row[0])

    def _evict_over_cap(self) -> None:
        if self.max_entries is None:
            return
        with self._lock:
            conn = self._connection()
            count = conn.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]
            excess = count - self.max_entries
            if excess <= 0:
                return
            victims = conn.execute(
                "SELECT key, certificate_blob FROM verdicts"
                " ORDER BY last_used ASC, key ASC LIMIT ?",
                (excess,),
            ).fetchall()
            with conn:
                conn.executemany(
                    "DELETE FROM verdicts WHERE key = ?",
                    [(key,) for key, _ in victims],
                )
            self.statistics.evictions += len(victims)
            for _, blob in victims:
                self._collect_blob(conn, blob)

    def _collect_blob(self, conn: sqlite3.Connection, digest: Optional[str]) -> None:
        """Delete a blob file once no surviving entry references it."""
        if digest is None:
            return
        still_used = conn.execute(
            "SELECT 1 FROM verdicts WHERE certificate_blob = ? LIMIT 1", (digest,)
        ).fetchone()
        if still_used is None:
            try:
                os.unlink(self._blob_path(digest))
            except OSError:
                pass

    def count_replay(self) -> None:
        """Record one successful certificate/witness replay."""
        with self._lock:
            self.statistics.replays += 1

    def count_replay_failure(self) -> None:
        """Record one failed replay (the entry is discarded by the caller)."""
        with self._lock:
            self.statistics.replay_failures += 1

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        with self._lock:
            return self._connection().execute(
                "SELECT COUNT(*) FROM verdicts"
            ).fetchone()[0]

    def keys(self) -> List[str]:
        with self._lock:
            rows = self._connection().execute(
                "SELECT key FROM verdicts ORDER BY created"
            ).fetchall()
        return [key for (key,) in rows]

    def gauges(self) -> Tuple[int, int]:
        """Current ``(entries, blob_bytes)`` for the statistics snapshot."""
        entries = len(self)
        blob_bytes = 0
        try:
            for name in os.listdir(self.blob_dir):
                if name.endswith(".pkl"):
                    blob_bytes += os.path.getsize(os.path.join(self.blob_dir, name))
        except OSError:
            pass
        return entries, blob_bytes

    def snapshot_statistics(self) -> Dict[str, int]:
        """Counters plus refreshed gauges, as one JSON-safe mapping."""
        entries, blob_bytes = self.gauges()
        with self._lock:
            self.statistics.entries = entries
            self.statistics.blob_bytes = blob_bytes
            return self.statistics.as_dict()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
