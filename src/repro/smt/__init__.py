"""SMT substrate: AIG lowering, bit-blasting, SAT solving, CEGIS and backends."""

from .aig import Aig, AigError, AigToCnf, FolbvToAig, aig_to_cnf
from .backend import (
    BackendError,
    BackendMiddleware,
    ExternalBackend,
    InternalBackend,
    PortfolioBackend,
    SolverBackend,
    SolverCapabilities,
    available_external_solvers,
    backend_for_solver,
    default_backend,
)
from .bitblast import Bitblaster, BitblastResult, bitblast
from .bvsolver import InternalBVSolver, SatResult, SatStatus, SolverStatistics
from .cache import CacheStatistics, CachingBackend, PersistentQueryCache, make_backend
from .cegis import ExistsForallResult, solve_exists_forall, substitute
from .clauses import AigFingerprinter, ClauseChannel

__all__ = [
    "Aig",
    "AigError",
    "AigFingerprinter",
    "AigToCnf",
    "FolbvToAig",
    "aig_to_cnf",
    "BackendError",
    "BackendMiddleware",
    "Bitblaster",
    "BitblastResult",
    "CacheStatistics",
    "CachingBackend",
    "ClauseChannel",
    "ExistsForallResult",
    "ExternalBackend",
    "InternalBackend",
    "InternalBVSolver",
    "PersistentQueryCache",
    "PortfolioBackend",
    "SatResult",
    "SatStatus",
    "SolverBackend",
    "SolverCapabilities",
    "SolverStatistics",
    "available_external_solvers",
    "backend_for_solver",
    "bitblast",
    "default_backend",
    "make_backend",
    "solve_exists_forall",
    "substitute",
]
