"""SMT substrate: AIG lowering, bit-blasting, SAT solving, CEGIS and backends."""

from .aig import Aig, AigError, AigToCnf, FolbvToAig, aig_to_cnf
from .backend import (
    ExternalBackend,
    InternalBackend,
    SolverBackend,
    available_external_solvers,
    default_backend,
)
from .bitblast import Bitblaster, BitblastResult, bitblast
from .bvsolver import InternalBVSolver, SatResult, SatStatus, SolverStatistics
from .cache import CacheStatistics, CachingBackend, PersistentQueryCache, make_backend
from .cegis import ExistsForallResult, solve_exists_forall, substitute

__all__ = [
    "Aig",
    "AigError",
    "AigToCnf",
    "FolbvToAig",
    "aig_to_cnf",
    "Bitblaster",
    "BitblastResult",
    "CacheStatistics",
    "CachingBackend",
    "ExistsForallResult",
    "ExternalBackend",
    "InternalBackend",
    "InternalBVSolver",
    "PersistentQueryCache",
    "SatResult",
    "SatStatus",
    "SolverBackend",
    "SolverStatistics",
    "available_external_solvers",
    "bitblast",
    "default_backend",
    "make_backend",
    "solve_exists_forall",
    "substitute",
]
