"""SMT substrate: bit-blasting, SAT solving, CEGIS and solver backends."""

from .backend import (
    ExternalBackend,
    InternalBackend,
    SolverBackend,
    available_external_solvers,
    default_backend,
)
from .bitblast import Bitblaster, BitblastResult, bitblast
from .bvsolver import InternalBVSolver, SatResult, SatStatus, SolverStatistics
from .cegis import ExistsForallResult, solve_exists_forall, substitute

__all__ = [
    "Bitblaster",
    "BitblastResult",
    "ExistsForallResult",
    "ExternalBackend",
    "InternalBackend",
    "InternalBVSolver",
    "SatResult",
    "SatStatus",
    "SolverBackend",
    "SolverStatistics",
    "available_external_solvers",
    "bitblast",
    "default_backend",
    "solve_exists_forall",
    "substitute",
]
