"""A structurally-hashed and-inverter graph between FOL(BV) and CNF.

This module is the single lowering pipeline shared by the one-shot
bit-blaster (:mod:`repro.smt.bitblast`) and the incremental session
(:mod:`repro.smt.incremental`).  FOL(BV) formulas lower to graph nodes in
exactly one place (:class:`FolbvToAig`), simplification runs on the graph
(:class:`Aig`), and a single Tseitin emitter (:class:`AigToCnf`) produces
clauses on demand — so the encoding rules can never drift between the two
solving paths again.

The graph is a classic AIG extended in two pragmatic ways:

* **word-level bit atoms** — terms lower to tuples of references, one per
  bit, so extraction and concatenation are free slicing on the word level
  and never materialize nodes;
* **fused equivalence nodes** — bit equalities are the dominant gate in
  this fragment (equalities over headers and buffers), and a dedicated
  two-input ``iff`` node keeps their CNF at the optimal four clauses
  instead of the nine an AND/NOT expansion would cost.

References are signed integers: node ``n`` is referenced as ``n`` and its
negation as ``-n`` (so double negation is free), with ``+1``/``-1``
reserved for the constants true/false.  Structural hashing interns every
node; with ``simplify`` on, AND construction additionally runs constant
propagation, idempotence/absorption, complement detection, bounded
flattening and operand subsumption, which lets entire queries collapse to
a constant before any CNF exists.  With ``simplify`` off the same code
path performs only the interning the legacy encoders already did, which
is what makes the ``use_aig`` ablation an honest baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..logic import folbv
from ..logic.fingerprint import folbv_fingerprint
from ..logic.folbv import BFormula, Term
from .sat.cnf import CnfBuilder

#: Reference to the constant-true node; ``-TRUE_REF`` is constant false.
TRUE_REF = 1
FALSE_REF = -1

#: AND children with at most this many operands are inlined into the parent
#: during simplification.  Keeping the bound small preserves sharing of wide
#: conjunctions while still exposing premise structure to subsumption.
FLATTEN_LIMIT = 32

#: Subsumption only inspects AND operands up to this size; beyond it the
#: quadratic set probing would dominate construction time.
SUBSUME_LIMIT = 512

_INPUT = "input"
_AND = "and"
_IFF = "iff"


class AigError(Exception):
    """Raised on malformed graph construction."""


class Aig:
    """The structurally-hashed graph of AND/IFF nodes over input bits."""

    def __init__(self, simplify: bool = True) -> None:
        self.simplify = simplify
        # Node storage, indexed by positive node id; ids 0 and 1 are padding
        # and the constant-true node respectively.
        self._kinds: List[str] = ["pad", "const"]
        self._operands: List[Tuple[int, ...]] = [(), ()]
        # Structural-hash tables: operand tuple -> node ref.
        self._and_cache: Dict[Tuple[int, ...], int] = {}
        self._iff_cache: Dict[Tuple[int, int], int] = {}
        # Cached operand frozensets of AND nodes, for subsumption probing.
        self._operand_sets: Dict[int, frozenset] = {}
        # Effectiveness counters (estimates, surfaced through statistics).
        self.num_inputs = 0
        self.num_ands = 0
        self.num_iffs = 0
        self.cache_hits = 0
        self.folds = 0
        self.subsumptions = 0
        self.clauses_saved = 0

    # -- node inspection -------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.num_inputs + self.num_ands + self.num_iffs

    def kind(self, index: int) -> str:
        return self._kinds[index]

    def operands(self, index: int) -> Tuple[int, ...]:
        return self._operands[index]

    def _operand_set(self, index: int) -> frozenset:
        cached = self._operand_sets.get(index)
        if cached is None:
            cached = frozenset(self._operands[index])
            self._operand_sets[index] = cached
        return cached

    # -- construction ----------------------------------------------------------

    def _new_node(self, kind: str, operands: Tuple[int, ...]) -> int:
        self._kinds.append(kind)
        self._operands.append(operands)
        return len(self._kinds) - 1

    def new_input(self) -> int:
        """A fresh input bit (one SAT variable once emitted)."""
        self.num_inputs += 1
        return self._new_node(_INPUT, ())

    def const(self, value: bool) -> int:
        return TRUE_REF if value else FALSE_REF

    def not_(self, ref: int) -> int:
        return -ref

    def and_(self, refs: Iterable[int]) -> int:
        """The conjunction of ``refs``, simplified and structurally hashed."""
        if self.simplify:
            operands = self._simplified_operands(refs)
            if isinstance(operands, int):
                return operands
        else:
            # Interning only — the dedupe/sort/unit collapse the legacy
            # CnfBuilder gates already performed, nothing more.
            operands = tuple(sorted(set(refs)))
        if not operands:
            return TRUE_REF
        if len(operands) == 1:
            return operands[0]
        cached = self._and_cache.get(operands)
        if cached is not None:
            self.cache_hits += 1
            return cached
        node = self._new_node(_AND, operands)
        self.num_ands += 1
        self._and_cache[operands] = node
        return node

    def _simplified_operands(self, refs: Iterable[int]):
        """Rewrite an operand list; returns a tuple, or an int collapse."""
        collected: List[int] = []
        for ref in refs:
            # One-level flattening of small positive AND children; children
            # were themselves flattened at construction, so small conjunction
            # trees end up fully flat.
            if ref > TRUE_REF and self._kinds[ref] == _AND:
                inner = self._operands[ref]
                if len(inner) <= FLATTEN_LIMIT:
                    collected.extend(inner)
                    continue
            collected.append(ref)
        # Clause savings are estimated against the flattened arity, so
        # flattening itself (which widens the operand list) never counts
        # negatively.
        original = len(collected)
        seen = set()
        operands: List[int] = []
        for ref in collected:
            if ref == TRUE_REF or ref in seen:
                continue
            if ref == FALSE_REF or -ref in seen:
                return self._fold_to(FALSE_REF, original)
            seen.add(ref)
            operands.append(ref)
        # Subsumption against the full operand set.  Dropping an operand is
        # sound because its justification is another operand (or, along an
        # acyclic chain, one that itself remains), so the reduced conjunction
        # is equivalent to the original.
        kept: List[int] = []
        for ref in operands:
            index = -ref if ref < 0 else ref
            if index > TRUE_REF and self._kinds[index] == _AND:
                inner = self._operand_set(index)
                if len(inner) <= SUBSUME_LIMIT:
                    if ref < 0:
                        if inner <= seen:
                            # AND(S) forces every conjunct of AND(Y) while
                            # also asserting ¬AND(Y): contradiction.
                            self.subsumptions += 1
                            return self._fold_to(FALSE_REF, original)
                        if any(-y in seen for y in inner):
                            # Some conjunct of AND(Y) is already false, so
                            # ¬AND(Y) holds for free: drop it.
                            self.subsumptions += 1
                            self.clauses_saved += 1
                            continue
                    elif any(-y in seen for y in inner):
                        # A kept (un-flattened) AND child contradicts a
                        # sibling operand.
                        self.subsumptions += 1
                        return self._fold_to(FALSE_REF, original)
            kept.append(ref)
        if len(kept) != original and original >= 2:
            self.folds += 1
            self.clauses_saved += original - len(kept)
        if not kept:
            return ()
        if len(kept) == 1:
            return kept[0]
        return tuple(sorted(kept))

    def _fold_to(self, ref: int, original_arity: int) -> int:
        self.folds += 1
        if original_arity >= 2:
            # A k-ary Tseitin AND gate costs k+1 clauses; collapsing to a
            # constant or literal avoids all of them.
            self.clauses_saved += original_arity + 1
        return ref

    def or_(self, refs: Iterable[int]) -> int:
        return -self.and_([-ref for ref in refs])

    def implies(self, premise: int, conclusion: int) -> int:
        return self.or_([-premise, conclusion])

    def iff(self, a: int, b: int) -> int:
        """Bit equivalence ``a ↔ b`` as a fused two-input node.

        The constant/identity rules below mirror what both legacy encoders
        did in ``_bit_equal``, so they apply in simplify and interning mode
        alike; only structural hashing keeps repeats shared.
        """
        if a == TRUE_REF:
            return b
        if a == FALSE_REF:
            return -b
        if b == TRUE_REF:
            return a
        if b == FALSE_REF:
            return -a
        if a == b:
            return TRUE_REF
        if a == -b:
            return FALSE_REF
        # Canonical form: both operands positive (iff(-a, b) = -iff(a, b),
        # iff(-a, -b) = iff(a, b)), smaller id first.
        sign = 1
        if a < 0:
            a, b = -a, -b
        if b < 0:
            sign, b = -1, -b
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._iff_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return sign * cached
        node = self._new_node(_IFF, key)
        self.num_iffs += 1
        self._iff_cache[key] = node
        return sign * node


class FolbvToAig:
    """Lowers FOL(BV) terms and formulas into one :class:`Aig`.

    Terms lower to tuples of bit references (index 0 = first bit, matching
    :class:`~repro.p4a.bitvec.Bits`), formulas to a single reference.  Both
    are memoized by structural fingerprint (:mod:`repro.logic.fingerprint`),
    so formulas rebuilt by later queries — equal in structure but not
    identity — share their whole lowered cone.  Variables key on
    ``(name, width)``: distinct queries may reuse a canonical name at
    different widths and must never alias.
    """

    def __init__(self, aig: Aig) -> None:
        self.aig = aig
        self._variable_bits: Dict[Tuple[str, int], Tuple[int, ...]] = {}
        self._term_cache: Dict[str, Tuple[int, ...]] = {}
        self._formula_cache: Dict[str, int] = {}

    def variable_bits(self, name: str, width: int) -> Tuple[int, ...]:
        key = (name, width)
        bits = self._variable_bits.get(key)
        if bits is None:
            bits = tuple(self.aig.new_input() for _ in range(width))
            self._variable_bits[key] = bits
        return bits

    def lower_term(self, term: Term) -> Tuple[int, ...]:
        fingerprint = folbv_fingerprint(term)
        cached = self._term_cache.get(fingerprint)
        if cached is not None:
            return cached
        if isinstance(term, folbv.BVVar):
            refs = self.variable_bits(term.name, term.var_width)
        elif isinstance(term, folbv.BVConst):
            refs = tuple(TRUE_REF if bit == 1 else FALSE_REF for bit in term.value)
        elif isinstance(term, folbv.BVExtract):
            refs = self.lower_term(term.term)[term.lo : term.hi + 1]
        elif isinstance(term, folbv.BVConcatT):
            refs = self.lower_term(term.left) + self.lower_term(term.right)
        else:
            raise AigError(f"cannot lower term {term!r}")
        if len(refs) != term.width:
            raise AigError(
                f"term {term} lowered to {len(refs)} bits, expected {term.width}"
            )
        self._term_cache[fingerprint] = refs
        return refs

    def lower_formula(self, formula: BFormula) -> int:
        fingerprint = folbv_fingerprint(formula)
        cached = self._formula_cache.get(fingerprint)
        if cached is not None:
            return cached
        aig = self.aig
        if isinstance(formula, folbv.BTrue):
            ref = TRUE_REF
        elif isinstance(formula, folbv.BFalse):
            ref = FALSE_REF
        elif isinstance(formula, folbv.BEq):
            left = self.lower_term(formula.left)
            right = self.lower_term(formula.right)
            ref = aig.and_([aig.iff(a, b) for a, b in zip(left, right)])
        elif isinstance(formula, folbv.BNot):
            ref = -self.lower_formula(formula.operand)
        elif isinstance(formula, folbv.BAnd):
            ref = aig.and_([self.lower_formula(op) for op in formula.operands])
        elif isinstance(formula, folbv.BOr):
            ref = aig.or_([self.lower_formula(op) for op in formula.operands])
        elif isinstance(formula, folbv.BImplies):
            ref = aig.implies(
                self.lower_formula(formula.premise),
                self.lower_formula(formula.conclusion),
            )
        else:
            raise AigError(f"cannot lower formula {formula!r}")
        self._formula_cache[fingerprint] = ref
        return ref


class AigToCnf:
    """Emits the cone of a reference into a :class:`CnfBuilder` on demand.

    Each node gets one SAT variable the first time something in its cone is
    requested; nodes never referenced by a query cost no clauses at all.
    Emission is iterative (an explicit stack), so deeply nested formulas
    cannot overflow the Python recursion limit.
    """

    def __init__(self, aig: Aig, builder: CnfBuilder) -> None:
        self.aig = aig
        self.builder = builder
        self._vars: Dict[int, int] = {}
        self._nodes: Dict[int, int] = {}

    def var_of(self, index: int) -> Optional[int]:
        """The SAT variable of an emitted node, or ``None``."""
        return self._vars.get(index)

    def node_of(self, var: int) -> Optional[int]:
        """The AIG node behind a SAT variable, or ``None``.

        ``None`` covers variables that do not name graph structure at all —
        activation literals and the constant-true variable are allocated on
        the builder directly.  Clause sharing relies on this to recognise
        (and refuse to export) literals with no structural identity.
        """
        return self._nodes.get(var)

    def emitted_nodes(self) -> Dict[int, int]:
        """A snapshot of node index → SAT variable for every emitted node."""
        return dict(self._vars)

    def literal(self, ref: int) -> int:
        """The SAT literal equivalent to ``ref``, emitting its cone."""
        if ref == TRUE_REF or ref == FALSE_REF:
            return self.builder.constant(ref > 0)
        index = -ref if ref < 0 else ref
        var = self._vars.get(index)
        if var is None:
            self._emit(index)
            var = self._vars[index]
        return -var if ref < 0 else var

    def _emit(self, root: int) -> None:
        aig = self.aig
        builder = self.builder
        stack = [root]
        while stack:
            index = stack[-1]
            if index in self._vars:
                stack.pop()
                continue
            kind = aig.kind(index)
            if kind == _INPUT:
                var = builder.new_var()
                self._vars[index] = var
                self._nodes[var] = index
                stack.pop()
                continue
            operands = aig.operands(index)
            pending = [
                abs(ref)
                for ref in operands
                if abs(ref) != TRUE_REF and abs(ref) not in self._vars
            ]
            if pending:
                stack.extend(pending)
                continue
            literals = [self.literal(ref) for ref in operands]
            output = builder.new_var()
            if kind == _AND:
                builder.emit_and(output, literals)
            elif kind == _IFF:
                builder.emit_iff(output, literals[0], literals[1])
            else:
                raise AigError(f"cannot emit node kind {kind!r}")
            self._vars[index] = output
            self._nodes[output] = index
            stack.pop()

    def cone(self, ref: int) -> frozenset:
        """The SAT variables in the emitted cone of ``ref``.

        Restricted solves decide exactly the union of the active formulas'
        cones, so a query never assigns structure it does not mention.  The
        cone is computed over emitted nodes only (call :meth:`literal`
        first); folded-away structure genuinely has no variables.
        """
        if ref == TRUE_REF or ref == FALSE_REF:
            literal = self.builder.constant(ref > 0)
            return frozenset((abs(literal),))
        cone: set = set()
        seen = set()
        stack = [abs(ref)]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            var = self._vars.get(index)
            if var is None:
                continue
            cone.add(var)
            for operand in self.aig.operands(index):
                inner = -operand if operand < 0 else operand
                if inner == TRUE_REF:
                    cone.add(abs(self.builder.constant(True)))
                else:
                    stack.append(inner)
        return frozenset(cone)


def aig_to_cnf(
    aig: Aig, refs: Sequence[int], builder: Optional[CnfBuilder] = None
) -> Tuple[CnfBuilder, List[int]]:
    """Emit the cones of ``refs`` and return ``(builder, literals)``."""
    builder = builder if builder is not None else CnfBuilder()
    emitter = AigToCnf(aig, builder)
    return builder, [emitter.literal(ref) for ref in refs]
