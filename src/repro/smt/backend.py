"""Pluggable solver backends.

The paper's tool targets several off-the-shelf SMT solvers behind a single
interface (Z3, CVC4, Boolector), selected by a vernacular command.  This
module provides the analogous abstraction:

* :class:`InternalBackend` — the built-in bit-blasting QF_BV procedure, always
  available and used by default.
* :class:`ExternalBackend` — shells out to any SMT-LIB 2 compliant solver
  found on ``PATH`` via the pretty-printer in :mod:`repro.logic.smtlib`.

``default_backend()`` returns the internal backend unless the environment
variable ``LEAPFROG_SOLVER`` requests an external one.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import time
from typing import Dict, List, Sequence

from ..logic import folbv, smtlib
from ..logic.folbv import BFormula
from ..p4a.bitvec import Bits
from .bvsolver import InternalBVSolver, SatResult, SatStatus, SolverStatistics


class BackendError(Exception):
    """Raised when a backend cannot answer a query."""


class SolverBackend:
    """Interface implemented by every solver backend."""

    name = "abstract"

    def check_sat(self, formula: BFormula) -> SatResult:
        raise NotImplementedError

    @property
    def statistics(self) -> SolverStatistics:
        raise NotImplementedError


class InternalBackend(SolverBackend):
    """The built-in bit-blasting decision procedure."""

    name = "internal"

    def __init__(
        self,
        engine: str = "cdcl",
        validate_models: bool = True,
        use_aig: bool = True,
    ) -> None:
        self._solver = InternalBVSolver(
            engine=engine, validate_models=validate_models, use_aig=use_aig
        )

    def check_sat(self, formula: BFormula) -> SatResult:
        return self._solver.check_sat(formula)

    def incremental_session(self):
        """Delegate to :meth:`InternalBVSolver.incremental_session`."""
        return self._solver.incremental_session()

    @property
    def statistics(self) -> SolverStatistics:
        return self._solver.statistics

    @property
    def solver(self) -> InternalBVSolver:
        return self._solver


#: Known external solvers and the command lines that make them read SMT-LIB
#: from a file argument.
EXTERNAL_SOLVER_COMMANDS: Dict[str, Sequence[str]] = {
    "z3": ("z3", "-smt2"),
    "cvc5": ("cvc5", "--lang", "smt2", "--produce-models"),
    "cvc4": ("cvc4", "--lang", "smt2", "--produce-models"),
    "boolector": ("boolector", "--smt2"),
}


def available_external_solvers() -> List[str]:
    """External solvers found on ``PATH``."""
    return [name for name, command in EXTERNAL_SOLVER_COMMANDS.items() if shutil.which(command[0])]


class ExternalBackend(SolverBackend):
    """An SMT-LIB 2 solver invoked as a subprocess."""

    def __init__(self, solver: str, timeout: float = 60.0) -> None:
        if solver not in EXTERNAL_SOLVER_COMMANDS:
            raise BackendError(f"unknown external solver {solver!r}")
        if not shutil.which(EXTERNAL_SOLVER_COMMANDS[solver][0]):
            raise BackendError(f"external solver {solver!r} is not on PATH")
        self.name = solver
        self._command = EXTERNAL_SOLVER_COMMANDS[solver]
        self._timeout = timeout
        self._statistics = SolverStatistics()

    def check_sat(self, formula: BFormula) -> SatResult:
        import tempfile

        script = smtlib.to_smtlib(formula, comments=[f"query issued to {self.name}"])
        start = time.perf_counter()
        with tempfile.NamedTemporaryFile("w", suffix=".smt2", delete=False) as handle:
            handle.write(script)
            path = handle.name
        try:
            completed = subprocess.run(
                list(self._command) + [path],
                capture_output=True,
                text=True,
                timeout=self._timeout,
            )
            output = completed.stdout
        except subprocess.TimeoutExpired:
            output = ""
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass
        elapsed = time.perf_counter() - start
        answer = smtlib.parse_check_sat_result(output)
        if answer is None:
            result = SatResult(SatStatus.UNKNOWN, None, elapsed)
        elif answer:
            variables = folbv.free_variables(formula)
            model = smtlib.parse_model_values(output, variables)
            for name, width in variables.items():
                model.setdefault(name, Bits.zeros(width))
            result = SatResult(SatStatus.SAT, model, elapsed)
        else:
            result = SatResult(SatStatus.UNSAT, None, elapsed)
        self._statistics.record(result)
        return result

    @property
    def statistics(self) -> SolverStatistics:
        return self._statistics


def default_backend() -> SolverBackend:
    """Pick a backend: ``LEAPFROG_SOLVER`` may name an external solver or
    ``internal``/``internal-dpll``; the default is the internal CDCL solver."""
    choice = os.environ.get("LEAPFROG_SOLVER", "internal").lower()
    if choice in ("", "internal", "cdcl"):
        return InternalBackend()
    if choice in ("dpll", "internal-dpll"):
        return InternalBackend(engine="dpll")
    try:
        return ExternalBackend(choice)
    except BackendError:
        return InternalBackend()
