"""The layered solver-backend stack.

The paper's tool targets several off-the-shelf SMT solvers behind a single
interface (Z3, CVC4, Boolector), selected by a vernacular command.  This
module provides the analogous abstraction as an explicitly layered stack:

* :class:`SolverBackend` — the protocol.  Every backend *declares* what it
  supports through :class:`SolverCapabilities` and inherits safe defaults
  for every optional operation (no incremental session, no cache, no
  internal solver handle), so callers dispatch on declared capabilities
  instead of ``getattr``-probing.
* :class:`BackendMiddleware` — the delegating base for composable layers;
  :class:`repro.smt.cache.CachingBackend` is the canonical middleware.
* :class:`InternalBackend` — the built-in bit-blasting QF_BV procedure,
  always available and used by default.
* :class:`ExternalBackend` — shells out to any SMT-LIB 2 compliant solver
  found on ``PATH`` via the pretty-printer in :mod:`repro.logic.smtlib`,
  distinguishing timeouts, cancellations and unparseable output.
* :class:`PortfolioBackend` — races the internal solver (in a worker
  thread) against every external solver, first definitive answer wins and
  the losers are cancelled promptly.

``default_backend()`` returns the internal backend unless the (validated)
environment variable ``LEAPFROG_SOLVER`` requests another one; an unknown
or missing solver is an error, never a silent fallback.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import envconfig
from ..logic import folbv, smtlib
from ..logic.folbv import BFormula
from ..p4a.bitvec import Bits
from .bvsolver import InternalBVSolver, SatResult, SatStatus, SolverStatistics


class BackendError(Exception):
    """Raised when a backend cannot answer a query."""


@dataclass(frozen=True)
class SolverCapabilities:
    """What a backend declares it can do.

    Callers branch on these flags instead of probing for attributes:
    ``incremental`` means :meth:`SolverBackend.incremental_session` returns a
    live session, ``models`` that SAT answers carry assignments,
    ``cancellation`` that ``check_sat(stop=...)`` aborts promptly,
    ``caching`` that ``lookup``/``store``/``cache_statistics`` are backed by
    a real cache, and ``internal_solver`` that
    :attr:`SolverBackend.internal_solver` exposes the in-process
    :class:`InternalBVSolver` (needed by the CEGIS loop).
    """

    incremental: bool = False
    models: bool = False
    cancellation: bool = False
    caching: bool = False
    internal_solver: bool = False


class SolverBackend:
    """Interface implemented by every solver backend.

    Optional operations have conservative default implementations, so a
    caller holding any ``SolverBackend`` may invoke the full protocol; the
    :attr:`capabilities` flags say which calls do real work.
    """

    name = "abstract"

    def check_sat(self, formula: BFormula, stop: Optional[threading.Event] = None) -> SatResult:
        """Decide satisfiability; ``stop`` (when supported) aborts early."""
        raise NotImplementedError

    @property
    def statistics(self) -> SolverStatistics:
        raise NotImplementedError

    @property
    def capabilities(self) -> SolverCapabilities:
        return SolverCapabilities()

    def incremental_session(self):
        """A live incremental session, or ``None`` when unsupported."""
        return None

    def lookup(self, formula: BFormula, fingerprint: Optional[str] = None) -> Optional[SatResult]:
        """A cached result for ``formula``, or ``None`` (default: no cache)."""
        return None

    def store(self, formula: BFormula, result: SatResult, fingerprint: Optional[str] = None) -> None:
        """Record ``result`` for ``formula`` (default: dropped)."""

    @property
    def cache_statistics(self):
        """Cache hit/miss counters, or ``None`` when there is no cache."""
        return None

    @property
    def internal_solver(self) -> Optional[InternalBVSolver]:
        """The in-process solver when one exists (CEGIS needs it)."""
        return None

    def close(self) -> None:
        """Release external resources (default: nothing to release)."""

    def trim_memory(self, max_entries: int) -> int:
        """Drop in-memory cache entries beyond ``max_entries`` (default: none)."""
        return 0

    @property
    def memory_entries(self) -> int:
        """In-memory cache size (default: no cache, zero entries)."""
        return 0


class BackendMiddleware(SolverBackend):
    """A composable layer that wraps another backend.

    Forwards the entire protocol to ``inner``; subclasses override exactly
    the operations they add behaviour to and extend
    :attr:`capabilities` with the flags they introduce.
    """

    def __init__(self, inner: SolverBackend) -> None:
        self.inner = inner
        self.name = inner.name

    def check_sat(self, formula: BFormula, stop: Optional[threading.Event] = None) -> SatResult:
        return self.inner.check_sat(formula, stop=stop)

    @property
    def statistics(self) -> SolverStatistics:
        return self.inner.statistics

    @property
    def capabilities(self) -> SolverCapabilities:
        return self.inner.capabilities

    def incremental_session(self):
        return self.inner.incremental_session()

    def lookup(self, formula: BFormula, fingerprint: Optional[str] = None) -> Optional[SatResult]:
        return self.inner.lookup(formula, fingerprint=fingerprint)

    def store(self, formula: BFormula, result: SatResult, fingerprint: Optional[str] = None) -> None:
        self.inner.store(formula, result, fingerprint=fingerprint)

    @property
    def cache_statistics(self):
        return self.inner.cache_statistics

    @property
    def internal_solver(self) -> Optional[InternalBVSolver]:
        return self.inner.internal_solver

    def close(self) -> None:
        self.inner.close()

    def trim_memory(self, max_entries: int) -> int:
        return self.inner.trim_memory(max_entries)

    @property
    def memory_entries(self) -> int:
        return self.inner.memory_entries


class InternalBackend(SolverBackend):
    """The built-in bit-blasting decision procedure."""

    name = "internal"

    def __init__(
        self,
        engine: str = "cdcl",
        validate_models: bool = True,
        use_aig: bool = True,
        clause_channel=None,
        clause_db_max: Optional[int] = None,
    ) -> None:
        self._engine = engine
        self._solver = InternalBVSolver(
            engine=engine,
            validate_models=validate_models,
            use_aig=use_aig,
            clause_channel=clause_channel,
            clause_db_max=clause_db_max,
        )

    def check_sat(self, formula: BFormula, stop: Optional[threading.Event] = None) -> SatResult:
        return self._solver.check_sat(formula, stop=stop)

    def incremental_session(self):
        """Delegate to :meth:`InternalBVSolver.incremental_session`."""
        return self._solver.incremental_session()

    @property
    def statistics(self) -> SolverStatistics:
        return self._solver.statistics

    @property
    def capabilities(self) -> SolverCapabilities:
        return SolverCapabilities(
            incremental=self._engine == "cdcl",
            models=True,
            cancellation=self._engine == "cdcl",
            internal_solver=True,
        )

    @property
    def internal_solver(self) -> InternalBVSolver:
        return self._solver

    @property
    def solver(self) -> InternalBVSolver:
        return self._solver

    def close(self) -> None:
        channel = self._solver.clause_channel
        if channel is not None:
            channel.close()


#: Known external solvers and the command lines that make them read SMT-LIB
#: from a file argument.  The key set mirrors ``envconfig.EXTERNAL_SOLVERS``
#: (the validated ``LEAPFROG_SOLVER`` vocabulary); a test pins them in sync.
EXTERNAL_SOLVER_COMMANDS: Dict[str, Sequence[str]] = {
    "z3": ("z3", "-smt2"),
    "cvc5": ("cvc5", "--lang", "smt2", "--produce-models"),
    "cvc4": ("cvc4", "--lang", "smt2", "--produce-models"),
    "boolector": ("boolector", "--smt2"),
}


def available_external_solvers() -> List[str]:
    """External solvers found on ``PATH``."""
    return [name for name, command in EXTERNAL_SOLVER_COMMANDS.items() if shutil.which(command[0])]


#: How often a running external solver is polled for completion, a pending
#: stop request, or a blown deadline.
_POLL_INTERVAL = 0.05


class ExternalBackend(SolverBackend):
    """An SMT-LIB 2 solver invoked as a subprocess.

    A query that times out, is cancelled through ``stop``, or produces
    output the SMT-LIB parser cannot understand each yield a distinct
    ``UNKNOWN`` result: ``SatResult.reason`` is ``"timeout"``,
    ``"cancelled"`` or ``"parse-failure"`` respectively, and for parse
    failures ``SatResult.detail`` carries the solver's stderr/stdout so the
    diagnosis is never discarded.
    """

    def __init__(
        self,
        solver: str,
        timeout: float = 60.0,
        command: Optional[Sequence[str]] = None,
    ) -> None:
        if command is None:
            if solver not in EXTERNAL_SOLVER_COMMANDS:
                raise BackendError(f"unknown external solver {solver!r}")
            if not shutil.which(EXTERNAL_SOLVER_COMMANDS[solver][0]):
                raise BackendError(f"external solver {solver!r} is not on PATH")
            command = EXTERNAL_SOLVER_COMMANDS[solver]
        self.name = solver
        self._command = tuple(command)
        self._timeout = timeout
        self._statistics = SolverStatistics()
        #: The most recently spawned solver process; tests assert it is
        #: reaped (``poll() is not None``) after every check_sat return.
        self.last_process: Optional[subprocess.Popen] = None

    def check_sat(self, formula: BFormula, stop: Optional[threading.Event] = None) -> SatResult:
        import tempfile

        script = smtlib.to_smtlib(formula, comments=[f"query issued to {self.name}"])
        start = time.perf_counter()
        with tempfile.NamedTemporaryFile("w", suffix=".smt2", delete=False) as handle:
            handle.write(script)
            path = handle.name
        try:
            result = self._run_solver(formula, path, start, stop)
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._statistics.record(result)
        return result

    def _run_solver(
        self,
        formula: BFormula,
        path: str,
        start: float,
        stop: Optional[threading.Event],
    ) -> SatResult:
        deadline = start + self._timeout
        # The solver gets its own process group (session) so that a kill on
        # cancellation/timeout reaps grandchildren too: a wrapper script's
        # child would otherwise keep the stdout pipe open and block the
        # final ``communicate()`` until it exits on its own.
        process = subprocess.Popen(
            list(self._command) + [path],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            start_new_session=hasattr(os, "killpg"),
        )
        self.last_process = process
        stdout, stderr = "", ""
        reason = None
        while True:
            if stop is not None and stop.is_set():
                reason = "cancelled"
                break
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                reason = "timeout"
                break
            try:
                stdout, stderr = process.communicate(
                    timeout=min(_POLL_INTERVAL, remaining)
                )
                break
            except subprocess.TimeoutExpired:
                continue
        if reason is not None:
            _kill_process_tree(process)
            stdout, stderr = process.communicate()
        elapsed = time.perf_counter() - start
        if reason == "timeout":
            self._statistics.external_timeouts += 1
            return SatResult(SatStatus.UNKNOWN, None, elapsed, reason="timeout")
        if reason == "cancelled":
            return SatResult(SatStatus.UNKNOWN, None, elapsed, reason="cancelled")
        answer = smtlib.parse_check_sat_result(stdout)
        if answer is None:
            self._statistics.parse_failures += 1
            detail = _solver_diagnostics(stdout, stderr, process.returncode)
            warnings.warn(
                f"external solver {self.name!r} produced no sat/unsat answer: {detail}",
                RuntimeWarning,
                stacklevel=2,
            )
            return SatResult(
                SatStatus.UNKNOWN, None, elapsed, reason="parse-failure", detail=detail
            )
        if answer:
            variables = folbv.free_variables(formula)
            model = smtlib.parse_model_values(stdout, variables)
            for name, width in variables.items():
                model.setdefault(name, Bits.zeros(width))
            return SatResult(SatStatus.SAT, model, elapsed)
        return SatResult(SatStatus.UNSAT, None, elapsed)

    @property
    def statistics(self) -> SolverStatistics:
        return self._statistics

    @property
    def capabilities(self) -> SolverCapabilities:
        return SolverCapabilities(models=True, cancellation=True)


def _kill_process_tree(process: subprocess.Popen) -> None:
    """Kill the solver and (where the platform allows) its whole group."""
    if hasattr(os, "killpg"):
        try:
            os.killpg(os.getpgid(process.pid), signal.SIGKILL)
            return
        except (ProcessLookupError, PermissionError, OSError):
            pass  # already gone, or group unavailable: fall through
    process.kill()


def _solver_diagnostics(stdout: str, stderr: str, returncode: Optional[int]) -> str:
    """A compact, non-empty description of what the solver actually said."""
    parts = [f"exit={returncode}"]
    for label, text in (("stderr", stderr), ("stdout", stdout)):
        text = (text or "").strip()
        if text:
            parts.append(f"{label}: {text[:500]}")
    return "; ".join(parts)


class PortfolioBackend(SolverBackend):
    """First-answer-wins race between the internal solver and external lanes.

    Each ``check_sat`` runs every lane in its own thread sharing one stop
    event; the first definitive (SAT/UNSAT) answer wins, the event is set,
    and the remaining lanes cancel promptly — the internal CDCL loop polls
    the event between propagations and external subprocesses are killed.
    Per-lane win/loss/cancel/error counters are kept in
    ``statistics.portfolio_lanes`` and flow into Table 2.

    Lanes that disagree on a definitive answer raise :class:`BackendError`:
    a portfolio must never trade soundness for speed.
    """

    def __init__(
        self,
        use_aig: bool = True,
        validate_models: bool = True,
        solvers: Optional[Sequence[str]] = None,
        external_backends: Optional[Sequence[SolverBackend]] = None,
        timeout: float = 60.0,
        include_internal: bool = True,
        clause_db_max: Optional[int] = None,
    ) -> None:
        self._validate_models = validate_models
        self._internal = (
            InternalBackend(
                validate_models=validate_models,
                use_aig=use_aig,
                clause_db_max=clause_db_max,
            )
            if include_internal
            else None
        )
        if external_backends is not None:
            self._externals = list(external_backends)
        else:
            names = list(solvers) if solvers is not None else available_external_solvers()
            self._externals = [ExternalBackend(name, timeout=timeout) for name in names]
        lanes = ([] if self._internal is None else [("internal", self._internal)])
        lanes += [(backend.name, backend) for backend in self._externals]
        if not lanes:
            raise BackendError("portfolio needs at least one lane")
        self._lanes: List[Tuple[str, SolverBackend]] = lanes
        self.name = "portfolio(" + "+".join(name for name, _ in lanes) + ")"
        self._statistics = SolverStatistics()
        self._statistics.portfolio_lanes = {
            name: {"wins": 0, "losses": 0, "cancelled": 0, "errors": 0}
            for name, _ in lanes
        }

    @property
    def lane_counters(self) -> Dict[str, Dict[str, int]]:
        return self._statistics.portfolio_lanes

    def check_sat(self, formula: BFormula, stop: Optional[threading.Event] = None) -> SatResult:
        start = time.perf_counter()
        if len(self._lanes) == 1:
            # A single lane needs no race (the common no-external-solver
            # case); account for it as an uncontested win.
            name, backend = self._lanes[0]
            result = backend.check_sat(formula, stop=stop)
            outcome = self._finish([(name, result)], start, formula)
            self._statistics.record(outcome)
            self._mirror_internal_counters()
            return outcome

        local_stop = threading.Event()
        lock = threading.Lock()
        arrivals: List[Tuple[str, SatResult]] = []
        answered = threading.Event()

        def run_lane(lane_name: str, backend: SolverBackend) -> None:
            try:
                result = backend.check_sat(formula, stop=local_stop)
            except Exception as error:  # noqa: BLE001 - a lane crash must not sink the race
                with lock:
                    self.lane_counters[lane_name]["errors"] += 1
                    arrivals.append(
                        (lane_name, SatResult(SatStatus.UNKNOWN, None, 0.0,
                                              reason="error", detail=str(error)))
                    )
                return
            with lock:
                arrivals.append((lane_name, result))
                if result.status in (SatStatus.SAT, SatStatus.UNSAT):
                    local_stop.set()
                    answered.set()

        threads = [
            threading.Thread(target=run_lane, args=lane, daemon=True)
            for lane in self._lanes
        ]
        for thread in threads:
            thread.start()
        while not answered.is_set() and any(t.is_alive() for t in threads):
            if stop is not None and stop.is_set():
                break
            answered.wait(_POLL_INTERVAL)
        local_stop.set()
        for thread in threads:
            thread.join()
        with lock:
            collected = list(arrivals)
        outcome = self._finish(collected, start, formula)
        self._statistics.record(outcome)
        self._mirror_internal_counters()
        return outcome

    def _finish(
        self,
        arrivals: Sequence[Tuple[str, SatResult]],
        start: float,
        formula: BFormula,
    ) -> SatResult:
        winner_lane, result = self._combine(arrivals)
        elapsed = time.perf_counter() - start
        if result is None:
            reasons = sorted({r.reason for _, r in arrivals if r.reason})
            return SatResult(
                SatStatus.UNKNOWN, None, elapsed,
                reason=";".join(reasons) or "all-lanes-unknown",
            )
        if result.is_sat and self._validate_models and result.model is not None:
            complete = dict(result.model)
            for name, width in folbv.free_variables(formula).items():
                complete.setdefault(name, Bits.zeros(width))
            if not folbv.eval_formula(formula, complete):
                raise BackendError(
                    f"portfolio lane {winner_lane!r} returned a bogus model"
                )
        return SatResult(
            result.status, result.model, elapsed,
            num_clauses=result.num_clauses, num_variables=result.num_variables,
            reason=result.reason, detail=result.detail,
        )

    def _combine(
        self, arrivals: Sequence[Tuple[str, SatResult]]
    ) -> Tuple[Optional[str], Optional[SatResult]]:
        """Pick the winner from arrival-ordered lane results; count the rest.

        Raises :class:`BackendError` when two lanes give contradictory
        definitive answers (the race must be abandoned, not adjudicated).
        """
        definitive = [
            (lane, result)
            for lane, result in arrivals
            if result.status in (SatStatus.SAT, SatStatus.UNSAT)
        ]
        if {result.status for _, result in definitive} == {SatStatus.SAT, SatStatus.UNSAT}:
            detail = ", ".join(f"{lane}={result.status.value}" for lane, result in definitive)
            raise BackendError(f"portfolio lanes disagree: {detail}")
        answered = {lane for lane, _ in arrivals}
        winner = definitive[0] if definitive else None
        for lane, _ in self._lanes:
            counters = self.lane_counters[lane]
            if winner is not None and lane == winner[0]:
                counters["wins"] += 1
            elif any(lane == name for name, _ in definitive):
                counters["losses"] += 1
            elif lane in answered and any(
                name == lane and result.reason == "error" for name, result in arrivals
            ):
                pass  # already counted as an error when the lane crashed
            else:
                counters["cancelled"] += 1
        if winner is None:
            return None, None
        return winner

    def _mirror_internal_counters(self) -> None:
        # The AIG lowering counters live in the internal lane's ledger;
        # surface them on the portfolio's own statistics so the usual
        # SolverStatistics → EntailmentStatistics flow keeps working.
        if self._internal is None:
            return
        inner = self._internal.statistics
        self._statistics.aig_nodes = inner.aig_nodes
        self._statistics.aig_clauses_saved = inner.aig_clauses_saved
        self._statistics.aig_shortcuts = inner.aig_shortcuts
        self._statistics.db_reductions = inner.db_reductions
        self._statistics.clauses_deleted = inner.clauses_deleted
        self._statistics.minimized_literals = inner.minimized_literals
        self._statistics.lbd_sum = inner.lbd_sum
        self._statistics.lbd_clauses = inner.lbd_clauses

    @property
    def statistics(self) -> SolverStatistics:
        return self._statistics

    @property
    def capabilities(self) -> SolverCapabilities:
        return SolverCapabilities(
            models=True,
            cancellation=True,
            internal_solver=self._internal is not None,
        )

    @property
    def internal_solver(self) -> Optional[InternalBVSolver]:
        return None if self._internal is None else self._internal.internal_solver


def backend_for_solver(
    choice: Optional[str],
    use_aig: bool = True,
    validate_models: bool = True,
    clause_channel=None,
    clause_db_max: Optional[int] = None,
) -> SolverBackend:
    """The backend for a validated ``--solver``/``LEAPFROG_SOLVER`` choice.

    ``None`` (unset) and the internal spellings yield the built-in solver;
    an external name yields an :class:`ExternalBackend` and raises
    :class:`BackendError` when that solver is not installed — selection
    errors must surface, not silently degrade to a different prover.
    """
    if choice in (None, "", "internal", "cdcl"):
        return InternalBackend(
            validate_models=validate_models,
            use_aig=use_aig,
            clause_channel=clause_channel,
            clause_db_max=clause_db_max,
        )
    if choice in ("dpll", "internal-dpll"):
        return InternalBackend(engine="dpll", validate_models=validate_models)
    return ExternalBackend(choice)


def default_backend() -> SolverBackend:
    """Pick a backend from the (validated) ``LEAPFROG_SOLVER`` variable.

    An unknown solver name raises :class:`repro.envconfig.EnvConfigError`
    and a known-but-not-installed solver raises :class:`BackendError`; both
    map to CLI exit code 2.
    """
    clause_db_max = envconfig.clause_db_from_env()
    if envconfig.portfolio_from_env():
        return PortfolioBackend(clause_db_max=clause_db_max)
    return backend_for_solver(
        envconfig.solver_from_env(), clause_db_max=clause_db_max
    )
