"""Bit-blasting FOL(BV) formulas to CNF.

The P4 automaton fragment of the bitvector theory contains no arithmetic —
terms are built from variables, constants, extraction and concatenation only —
so every term denotes a fixed-width vector of *bit atoms*, each of which is
either a boolean constant or a single SAT literal.  Equalities become
conjunctions of bit-level equivalences and the boolean structure is lowered
with Tseitin gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..logic import folbv
from ..logic.folbv import (
    BAnd,
    BEq,
    BFalse,
    BFormula,
    BImplies,
    BNot,
    BOr,
    BTrue,
    BVConcatT,
    BVConst,
    BVExtract,
    BVVar,
    Term,
)
from ..p4a.bitvec import Bits
from .sat.cnf import Cnf, CnfBuilder

# A bit atom is either a concrete boolean or a SAT literal.
BitAtom = Union[bool, int]


class BitblastError(Exception):
    """Raised when a formula cannot be bit-blasted."""


@dataclass
class BitblastResult:
    """The CNF encoding of a FOL(BV) formula.

    ``variable_bits`` maps each FOL(BV) variable to the list of SAT variables
    encoding its bits (index 0 = first bit).  ``root_literal`` is a literal
    asserted to be true iff the formula holds.
    """

    cnf: Cnf
    variable_bits: Dict[str, List[int]]
    root_literal: int

    def decode_model(self, model: Dict[int, bool]) -> Dict[str, Bits]:
        """Translate a SAT model back into bitvector values."""
        values: Dict[str, Bits] = {}
        for name, bit_vars in self.variable_bits.items():
            values[name] = Bits("".join("1" if model.get(var, False) else "0" for var in bit_vars))
        return values


class Bitblaster:
    """Stateful bit-blaster; reusable across several formulas sharing variables.

    NOTE: :class:`repro.smt.incremental._SessionBlaster` mirrors these
    encoding rules case for case (with fingerprint-keyed caches and cone
    tracking); a change to how any term or formula shape is blasted must be
    applied to both.
    """

    def __init__(self) -> None:
        self.builder = CnfBuilder()
        self._variable_bits: Dict[str, List[int]] = {}
        self._term_cache: Dict[Term, Tuple[BitAtom, ...]] = {}
        self._formula_cache: Dict[BFormula, int] = {}

    # -- variables -------------------------------------------------------------

    def variable_bits(self, name: str, width: int) -> List[int]:
        bits = self._variable_bits.get(name)
        if bits is None:
            bits = [self.builder.new_var() for _ in range(width)]
            self._variable_bits[name] = bits
        elif len(bits) != width:
            raise BitblastError(
                f"variable {name!r} used at widths {len(bits)} and {width}"
            )
        return bits

    # -- terms -----------------------------------------------------------------

    def blast_term(self, term: Term) -> Tuple[BitAtom, ...]:
        cached = self._term_cache.get(term)
        if cached is not None:
            return cached
        if isinstance(term, BVVar):
            atoms: Tuple[BitAtom, ...] = tuple(self.variable_bits(term.name, term.var_width))
        elif isinstance(term, BVConst):
            atoms = tuple(bit == 1 for bit in term.value)
        elif isinstance(term, BVExtract):
            inner = self.blast_term(term.term)
            atoms = inner[term.lo : term.hi + 1]
        elif isinstance(term, BVConcatT):
            atoms = self.blast_term(term.left) + self.blast_term(term.right)
        else:
            raise BitblastError(f"cannot bit-blast term {term!r}")
        if len(atoms) != term.width:
            raise BitblastError(
                f"term {term} blasted to {len(atoms)} bits, expected {term.width}"
            )
        self._term_cache[term] = atoms
        return atoms

    # -- formulas ----------------------------------------------------------------

    def _atom_literal(self, atom: BitAtom) -> int:
        if isinstance(atom, bool):
            return self.builder.constant(atom)
        return atom

    def _bit_equal(self, a: BitAtom, b: BitAtom) -> int:
        if isinstance(a, bool) and isinstance(b, bool):
            return self.builder.constant(a == b)
        if isinstance(a, bool):
            return self._atom_literal(b) if a else -self._atom_literal(b)
        if isinstance(b, bool):
            return a if b else -a
        if a == b:
            return self.builder.constant(True)
        if a == -b:
            return self.builder.constant(False)
        return self.builder.gate_iff(a, b)

    def blast_formula(self, formula: BFormula) -> int:
        """Return a literal equivalent to ``formula``."""
        cached = self._formula_cache.get(formula)
        if cached is not None:
            return cached
        if isinstance(formula, BTrue):
            literal = self.builder.constant(True)
        elif isinstance(formula, BFalse):
            literal = self.builder.constant(False)
        elif isinstance(formula, BEq):
            left = self.blast_term(formula.left)
            right = self.blast_term(formula.right)
            literal = self.builder.gate_and(
                [self._bit_equal(a, b) for a, b in zip(left, right)]
            )
        elif isinstance(formula, BNot):
            literal = -self.blast_formula(formula.operand)
        elif isinstance(formula, BAnd):
            literal = self.builder.gate_and([self.blast_formula(op) for op in formula.operands])
        elif isinstance(formula, BOr):
            literal = self.builder.gate_or([self.blast_formula(op) for op in formula.operands])
        elif isinstance(formula, BImplies):
            literal = self.builder.gate_implies(
                self.blast_formula(formula.premise), self.blast_formula(formula.conclusion)
            )
        else:
            raise BitblastError(f"cannot bit-blast formula {formula!r}")
        self._formula_cache[formula] = literal
        return literal

    def assert_formula(self, formula: BFormula) -> int:
        literal = self.blast_formula(formula)
        self.builder.assert_literal(literal)
        return literal

    def result(self, root_literal: int) -> BitblastResult:
        # Also allocate bits for variables that simplification may have removed
        # from the CNF but that the caller expects in the model.
        return BitblastResult(self.builder.cnf, dict(self._variable_bits), root_literal)


def bitblast(formula: BFormula) -> BitblastResult:
    """Bit-blast a single formula into a CNF whose satisfiability matches it."""
    blaster = Bitblaster()
    # Pre-allocate every free variable so models always mention them.
    for name, width in folbv.free_variables(formula).items():
        blaster.variable_bits(name, width)
    root = blaster.assert_formula(formula)
    return blaster.result(root)
