"""Bit-blasting FOL(BV) formulas to CNF (one-shot path).

The P4 automaton fragment of the bitvector theory contains no arithmetic —
terms are built from variables, constants, extraction and concatenation only —
so every term denotes a fixed-width vector of bit atoms.  All lowering happens
in the shared AIG pipeline (:mod:`repro.smt.aig`): formulas lower to graph
nodes, the graph simplifies, and a single Tseitin emitter produces clauses.
This module is the thin one-shot consumer of that pipeline; the incremental
consumer is :class:`repro.smt.incremental.IncrementalSession`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..logic import folbv
from ..logic.folbv import BFormula, Term
from ..p4a.bitvec import Bits
from .aig import Aig, AigError, AigToCnf, FolbvToAig
from .sat.cnf import Cnf, CnfBuilder

# A bit atom is either a concrete boolean or a SAT literal.
BitAtom = Union[bool, int]


class BitblastError(Exception):
    """Raised when a formula cannot be bit-blasted."""


@dataclass
class BitblastResult:
    """The CNF encoding of a FOL(BV) formula.

    ``variable_bits`` maps each FOL(BV) variable to the list of SAT variables
    encoding its bits (index 0 = first bit).  ``root_literal`` is a literal
    asserted to be true iff the formula holds.
    """

    cnf: Cnf
    variable_bits: Dict[str, List[int]]
    root_literal: int

    def decode_model(self, model: Dict[int, bool]) -> Dict[str, Bits]:
        """Translate a SAT model back into bitvector values.

        Every encoded bit must be present in the model; a missing variable
        means the solver was handed a CNF that does not cover the variable's
        cone, which is an encoder bug that silently defaulting to ``0``
        would mask.
        """
        values: Dict[str, Bits] = {}
        for name, bit_vars in self.variable_bits.items():
            bits = []
            for var in bit_vars:
                value = model.get(var)
                if value is None:
                    raise BitblastError(
                        f"SAT model is missing variable {var} "
                        f"(a bit of {name!r}); the encoding cone was not solved"
                    )
                bits.append("1" if value else "0")
            values[name] = Bits("".join(bits))
        return values


class Bitblaster:
    """Stateful one-shot bit-blaster; reusable across formulas sharing variables.

    A thin wrapper over the shared lowering pipeline: an :class:`Aig` (with
    simplification controlled by ``use_aig``), the :class:`FolbvToAig`
    lowerer and the :class:`AigToCnf` emitter, over one :class:`CnfBuilder`.
    """

    def __init__(self, use_aig: bool = True) -> None:
        self.aig = Aig(simplify=use_aig)
        self.builder = CnfBuilder()
        self._lowerer = FolbvToAig(self.aig)
        self._emitter = AigToCnf(self.aig, self.builder)
        self._widths: Dict[str, int] = {}

    # -- variables -------------------------------------------------------------

    def variable_bits(self, name: str, width: int) -> List[int]:
        """The SAT variables of ``name``'s bits (allocated eagerly)."""
        known = self._widths.get(name)
        if known is not None and known != width:
            raise BitblastError(
                f"variable {name!r} used at widths {known} and {width}"
            )
        self._widths[name] = width
        refs = self._lowerer.variable_bits(name, width)
        return [self._emitter.literal(ref) for ref in refs]

    # -- terms and formulas ------------------------------------------------------

    def blast_term(self, term: Term) -> Tuple[int, ...]:
        """Lower a term; returns one AIG reference per bit."""
        try:
            return self._lowerer.lower_term(term)
        except AigError as error:
            raise BitblastError(str(error)) from None

    def blast_formula(self, formula: BFormula) -> int:
        """Return a SAT literal equivalent to ``formula``."""
        try:
            ref = self._lowerer.lower_formula(formula)
        except AigError as error:
            raise BitblastError(str(error)) from None
        return self._emitter.literal(ref)

    def assert_formula(self, formula: BFormula) -> int:
        literal = self.blast_formula(formula)
        self.builder.assert_literal(literal)
        return literal

    def result(self, root_literal: int) -> BitblastResult:
        variable_bits = {
            name: self.variable_bits(name, width)
            for name, width in self._widths.items()
        }
        return BitblastResult(self.builder.cnf, variable_bits, root_literal)


def bitblast(formula: BFormula, use_aig: bool = True) -> BitblastResult:
    """Bit-blast a single formula into a CNF whose satisfiability matches it."""
    blaster = Bitblaster(use_aig=use_aig)
    # Pre-allocate every free variable so models always mention them.
    for name, width in folbv.free_variables(formula).items():
        blaster.variable_bits(name, width)
    root = blaster.assert_formula(formula)
    return blaster.result(root)
