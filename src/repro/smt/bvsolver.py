"""The internal QF_BV decision procedure.

``check_sat`` decides satisfiability of a FOL(BV) formula by bit-blasting it to
CNF (:mod:`repro.smt.bitblast`) and running the CDCL SAT solver.  Models are
decoded back to bitvector values and validated against the original formula,
so a buggy solver or encoder cannot silently return a bogus "sat" answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..logic import folbv
from ..logic.folbv import BFormula
from ..p4a.bitvec import Bits
from .bitblast import Bitblaster
from .sat.dpll import dpll_solve
from .sat.solver import DEFAULT_CLAUSE_DB_MAX, CdclSolver


class SatStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatResult:
    """Outcome of a satisfiability check."""

    status: SatStatus
    model: Optional[Dict[str, Bits]] = None
    elapsed: float = 0.0
    num_clauses: int = 0
    num_variables: int = 0
    #: Why an UNKNOWN is unknown: ``"timeout"``, ``"cancelled"``,
    #: ``"parse-failure"`` or ``"error"`` (``None`` for definitive answers).
    reason: Optional[str] = None
    #: Free-form diagnostics (e.g. an external solver's stderr).
    detail: Optional[str] = None

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SatStatus.UNSAT


@dataclass
class SolverStatistics:
    """Aggregate statistics over all queries issued through one solver object."""

    queries: int = 0
    sat_queries: int = 0
    unsat_queries: int = 0
    unknown_queries: int = 0
    total_time: float = 0.0
    max_time: float = 0.0
    total_clauses: int = 0
    query_times: List[float] = field(default_factory=list)
    #: AIG pipeline effectiveness (cumulative over all queries): graph nodes
    #: built, CNF clauses the graph rewrites avoided (an estimate), and
    #: queries answered by graph-level collapse without any CDCL work.
    aig_nodes: int = 0
    aig_clauses_saved: int = 0
    aig_shortcuts: int = 0
    #: External-lane failure modes (see ``ExternalBackend``): queries killed
    #: at the deadline vs. queries whose output the SMT-LIB parser rejected.
    external_timeouts: int = 0
    parse_failures: int = 0
    #: Cross-worker learned-clause traffic (see ``repro.smt.clauses``).
    clauses_exported: int = 0
    clauses_imported: int = 0
    #: Learned-clause database management (see ``repro.smt.sat.solver``):
    #: reductions run, learned clauses deleted by them, literals removed by
    #: conflict-clause minimization, and the LBD ledger (sum over every
    #: learned clause plus the clause count, so ``avg_lbd`` is their mean).
    db_reductions: int = 0
    clauses_deleted: int = 0
    minimized_literals: int = 0
    lbd_sum: int = 0
    lbd_clauses: int = 0
    #: Per-lane win/loss/cancel/error counters, filled by PortfolioBackend.
    portfolio_lanes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def avg_lbd(self) -> float:
        """Mean LBD (glue) over every learned clause (0.0 before the first)."""
        if not self.lbd_clauses:
            return 0.0
        return self.lbd_sum / self.lbd_clauses

    def record(self, result: SatResult) -> None:
        self.queries += 1
        if result.status is SatStatus.SAT:
            self.sat_queries += 1
        elif result.status is SatStatus.UNSAT:
            self.unsat_queries += 1
        else:
            self.unknown_queries += 1
        self.total_time += result.elapsed
        self.max_time = max(self.max_time, result.elapsed)
        self.total_clauses += result.num_clauses
        self.query_times.append(result.elapsed)

    def percentile_time(self, fraction: float) -> float:
        """Time below which ``fraction`` of the queries completed (e.g. 0.99)."""
        if not self.query_times:
            return 0.0
        ordered = sorted(self.query_times)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


class InternalBVSolver:
    """Bit-blasting QF_BV solver with model validation and statistics."""

    def __init__(
        self,
        engine: str = "cdcl",
        validate_models: bool = True,
        use_aig: bool = True,
        clause_channel=None,
        clause_db_max: Optional[int] = None,
    ) -> None:
        if engine not in ("cdcl", "dpll"):
            raise ValueError(f"unknown SAT engine {engine!r}")
        self._engine = engine
        self._validate_models = validate_models
        self.use_aig = use_aig
        self.clause_channel = clause_channel
        #: Learned-clause cap for the CDCL engine (``None`` = the solver
        #: default, ``0`` = keep every learned clause forever).
        self.clause_db_max = (
            DEFAULT_CLAUSE_DB_MAX if clause_db_max is None else clause_db_max
        )
        self.statistics = SolverStatistics()

    def check_sat(
        self,
        formula: BFormula,
        max_conflicts: Optional[int] = None,
        stop=None,
    ) -> SatResult:
        start = time.perf_counter()
        blaster = Bitblaster(use_aig=self.use_aig)
        for name, width in folbv.free_variables(formula).items():
            blaster.variable_bits(name, width)
        blasted = blaster.result(blaster.assert_formula(formula))
        self.statistics.aig_nodes += blaster.aig.num_nodes
        self.statistics.aig_clauses_saved += blaster.aig.clauses_saved
        if self._engine == "dpll":
            sat, sat_model = dpll_solve(blasted.cnf)
        else:
            sat_solver = CdclSolver(blasted.cnf, clause_db_max=self.clause_db_max)
            sat, sat_model = sat_solver.solve(max_conflicts=max_conflicts, stop=stop)
            sat_stats = sat_solver.stats
            self.statistics.db_reductions += sat_stats.db_reductions
            self.statistics.clauses_deleted += sat_stats.clauses_deleted
            self.statistics.minimized_literals += sat_stats.minimized_literals
            self.statistics.lbd_sum += sat_stats.lbd_sum
            self.statistics.lbd_clauses += sat_stats.learned_clauses
        elapsed = time.perf_counter() - start
        if sat is None:
            reason = "cancelled" if stop is not None and stop.is_set() else None
            result = SatResult(SatStatus.UNKNOWN, None, elapsed, len(blasted.cnf.clauses),
                               blasted.cnf.num_vars, reason=reason)
        elif sat:
            model = blasted.decode_model(sat_model)
            if self._validate_models and not folbv.eval_formula(formula, complete_model(formula, model)):
                raise RuntimeError(
                    "internal solver returned a model that does not satisfy the formula"
                )
            result = SatResult(SatStatus.SAT, model, elapsed, len(blasted.cnf.clauses),
                               blasted.cnf.num_vars)
        else:
            result = SatResult(SatStatus.UNSAT, None, elapsed, len(blasted.cnf.clauses),
                               blasted.cnf.num_vars)
        self.statistics.record(result)
        return result

    def check_valid(self, formula: BFormula) -> SatResult:
        """Validity of ``formula`` = unsatisfiability of its negation.

        The returned status refers to the *negation* query: ``UNSAT`` means the
        formula is valid, and a ``SAT`` model is a counterexample to validity.
        """
        return self.check_sat(folbv.b_not(formula))

    def incremental_session(self):
        """A fresh incremental assumption-based session over this solver.

        Only the CDCL engine supports incremental solving; the DPLL engine
        returns ``None`` and callers fall back to one-shot queries.  The
        session records its query results into this solver's statistics, so
        reporting sees one ledger whichever path answered a query.
        """
        if self._engine != "cdcl":
            return None
        from .incremental import IncrementalSession

        return IncrementalSession(
            validate_models=self._validate_models,
            statistics=self.statistics,
            use_aig=self.use_aig,
            clause_channel=self.clause_channel,
            clause_db_max=self.clause_db_max,
        )


def complete_model(formula: BFormula, model: Dict[str, Bits]) -> Dict[str, Bits]:
    """Fill in zero values for variables the SAT model does not mention."""
    completed = dict(model)
    for name, width in folbv.free_variables(formula).items():
        if name not in completed:
            completed[name] = Bits.zeros(width)
    return completed
