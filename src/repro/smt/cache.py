"""Fingerprint-keyed caching of satisfiability queries.

:class:`CachingBackend` wraps any :class:`~repro.smt.backend.SolverBackend`
and memoizes ``check_sat`` answers by the structural fingerprint of the query
(:mod:`repro.logic.fingerprint`).  Two layers are consulted in order:

1. an **in-memory** dictionary, free to populate and always enabled;
2. an optional **persistent** sqlite store shared across processes and runs,
   enabled by passing a cache directory.  The engine uses it to share solver
   work between parallel workers, and repeated benchmark runs start warm.

Only definitive answers (``sat``/``unsat``) are cached; ``unknown`` results
(e.g. a conflict-limited CDCL call) are always re-queried.  Models are stored
with the answer so a cached ``sat`` still carries its witness.

Caching is sound because the lowering chain is deterministic and fingerprints
are structural: a formula with the same fingerprint is the same formula, so
the solver would return the same status (and, with the deterministic internal
solver, the same model).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..logic.fingerprint import FINGERPRINT_VERSION, folbv_fingerprint
from ..logic.folbv import BFormula
from ..p4a.bitvec import Bits
from .backend import (
    BackendMiddleware,
    InternalBackend,
    PortfolioBackend,
    SolverBackend,
    SolverCapabilities,
    backend_for_solver,
)
from .bvsolver import InternalBVSolver, SatResult, SatStatus


@dataclass
class CacheStatistics:
    """Hit/miss accounting for one :class:`CachingBackend`."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }


def _encode_model(model: Optional[Dict[str, Bits]]) -> Optional[str]:
    if model is None:
        return None
    return json.dumps({name: bits.to_bitstring() for name, bits in model.items()}, sort_keys=True)


def _decode_model(payload: Optional[str]) -> Optional[Dict[str, Bits]]:
    if payload is None:
        return None
    return {name: Bits(bitstring) for name, bitstring in json.loads(payload).items()}


#: Busy timeout applied to every cache connection, in milliseconds.  A
#: writer that hits a locked database waits this long for the lock instead
#: of failing with ``sqlite3.OperationalError: database is locked``, which
#: matters under the service daemon's worker pool where several threads and
#: processes share one cache directory.
BUSY_TIMEOUT_MS = 30_000


class PersistentQueryCache:
    """A sqlite-backed fingerprint → result store, safe for concurrent use.

    Concurrency is handled at two levels: **across connections** (other
    workers, other processes) sqlite serializes writers itself and the
    explicit ``busy_timeout`` makes a contending writer wait for the lock
    rather than error out; **within one handle** a lock serializes use of
    the shared connection, because a single sqlite3 connection object is
    not safe for unsynchronized multi-threaded use even with
    ``check_same_thread=False``.  Every ``put`` is one short transaction.
    The schema is versioned by the fingerprint format so stale entries are
    never misread.
    """

    def __init__(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(
            directory, f"query_cache_v{FINGERPRINT_VERSION}.sqlite"
        )
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        with self._lock:
            self._connection()  # create the schema eagerly so misconfiguration fails fast

    def _connection(self) -> sqlite3.Connection:
        # Reopens transparently after close(), so a cache handle stays usable
        # for a later run while still releasing its file handle in between.
        # Callers must hold self._lock.
        if self._conn is None:
            self._conn = sqlite3.connect(
                self.path, timeout=BUSY_TIMEOUT_MS / 1000.0, check_same_thread=False
            )
            # WAL + NORMAL avoids a journal fsync per stored query, which on
            # fsync-bound filesystems would rival the solver time for the
            # small fast queries the cache exists to absorb.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            # The connect() timeout covers the same ground, but the PRAGMA is
            # explicit, inspectable (PRAGMA busy_timeout) and immune to the
            # float-seconds/milliseconds confusion that silently produced a
            # zero timeout on some sqlite builds.
            self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            with self._conn:
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS results ("
                    " fingerprint TEXT PRIMARY KEY,"
                    " status TEXT NOT NULL,"
                    " model TEXT)"
                )
        return self._conn

    def get(self, fingerprint: str) -> Optional[SatResult]:
        with self._lock:
            row = self._connection().execute(
                "SELECT status, model FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        if row is None:
            return None
        status, model_payload = row
        return SatResult(SatStatus(status), _decode_model(model_payload), 0.0)

    def put(self, fingerprint: str, result: SatResult) -> None:
        with self._lock:
            conn = self._connection()
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO results (fingerprint, status, model) VALUES (?, ?, ?)",
                    (fingerprint, result.status.value, _encode_model(result.model)),
                )

    def busy_timeout_ms(self) -> int:
        """The effective busy timeout of the live connection (for tests)."""
        with self._lock:
            return self._connection().execute("PRAGMA busy_timeout").fetchone()[0]

    def __len__(self) -> int:
        with self._lock:
            return self._connection().execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None


class CachingBackend(BackendMiddleware):
    """Middleware that memoizes ``check_sat`` by query fingerprint.

    The canonical :class:`~repro.smt.backend.BackendMiddleware`: every other
    protocol operation is delegated to the wrapped backend unchanged, and the
    declared capabilities are the inner backend's plus ``caching``.
    """

    def __init__(
        self,
        inner: Optional[SolverBackend] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        super().__init__(inner if inner is not None else InternalBackend())
        self.name = f"cached+{self.inner.name}"
        self._cache_statistics = CacheStatistics()
        self._memory: Dict[str, SatResult] = {}
        self._disk = PersistentQueryCache(cache_dir) if cache_dir else None

    # ------------------------------------------------------------------

    def check_sat(self, formula: BFormula, stop=None) -> SatResult:
        fingerprint = folbv_fingerprint(formula)
        cached = self.lookup(formula, fingerprint=fingerprint)
        if cached is not None:
            return cached
        result = self.inner.check_sat(formula, stop=stop)
        self.store(formula, result, fingerprint=fingerprint)
        return result

    def lookup(
        self, formula: BFormula, fingerprint: Optional[str] = None
    ) -> Optional[SatResult]:
        """Consult both cache layers without ever reaching the solver.

        Used directly by the incremental entailment path (cache first, live
        session only on a miss) and by :meth:`check_sat`.  Hit/miss counters
        are updated either way.
        """
        start = time.perf_counter()
        # One linear serialization walk per query; interning here would cost
        # more than the lookup it guards (per-node canonicalization is
        # quadratic in formula depth).  (A repeated walk on the same object —
        # e.g. lookup then store around a miss — is absorbed by the
        # fingerprint module's identity memo.)
        if fingerprint is None:
            fingerprint = folbv_fingerprint(formula)
        cached = self._memory.get(fingerprint)
        if cached is not None:
            self._cache_statistics.hits += 1
            self._cache_statistics.memory_hits += 1
            return self._replay(cached, start)
        if self._disk is not None:
            cached = self._disk.get(fingerprint)
            if cached is not None:
                self._memory[fingerprint] = cached
                self._cache_statistics.hits += 1
                self._cache_statistics.disk_hits += 1
                return self._replay(cached, start)
        self._cache_statistics.misses += 1
        return None

    def store(
        self, formula: BFormula, result: SatResult, fingerprint: Optional[str] = None
    ) -> None:
        """Record a definitive answer in both cache layers."""
        if result.status is SatStatus.UNKNOWN:
            return
        if fingerprint is None:
            fingerprint = folbv_fingerprint(formula)
        self._memory[fingerprint] = result
        if self._disk is not None:
            self._disk.put(fingerprint, result)
        self._cache_statistics.stores += 1

    @property
    def capabilities(self) -> SolverCapabilities:
        return replace(self.inner.capabilities, caching=True)

    @property
    def cache_statistics(self) -> CacheStatistics:
        return self._cache_statistics

    @property
    def memory_entries(self) -> int:
        """Entries currently held by the in-memory layer."""
        return len(self._memory)

    def trim_memory(self, max_entries: int) -> int:
        """Drop the in-memory layer once it grows past ``max_entries``.

        Long-lived holders (the service daemon's warm workers) call this
        between requests so a backend that lives for days cannot grow its
        memo without bound; the persistent layer, when configured, still
        holds everything that was dropped.  Returns the number of entries
        dropped (0 when under the limit).
        """
        if len(self._memory) <= max_entries:
            return 0
        dropped = len(self._memory)
        self._memory.clear()
        return dropped

    @staticmethod
    def _replay(cached: SatResult, start: float) -> SatResult:
        model = dict(cached.model) if cached.model is not None else None
        return SatResult(cached.status, model, time.perf_counter() - start)

    # ------------------------------------------------------------------

    @property
    def solver(self) -> Optional[InternalBVSolver]:
        """The underlying internal solver, when the wrapped backend has one."""
        return self.inner.internal_solver

    @property
    def persistent_path(self) -> Optional[str]:
        return self._disk.path if self._disk is not None else None

    def close(self) -> None:
        if self._disk is not None:
            self._disk.close()
        self.inner.close()


def make_backend(
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    inner: Optional[SolverBackend] = None,
    use_aig: bool = True,
    solver: Optional[str] = None,
    portfolio: bool = False,
    share_dir: Optional[str] = None,
    clause_db_max: Optional[int] = None,
) -> SolverBackend:
    """Build the standard backend stack, innermost layer first.

    * the base lane comes from ``portfolio`` (a :class:`PortfolioBackend`
      racing the internal solver against every external solver on PATH) or
      ``solver`` (a validated ``--solver``/``LEAPFROG_SOLVER`` choice;
      default the internal solver) — the two are mutually exclusive since a
      portfolio already contains every lane;
    * ``share_dir`` attaches a cross-worker learned-clause channel
      (:mod:`repro.smt.clauses`) to the internal solver's incremental
      sessions;
    * ``use_cache`` wraps the lane in :class:`CachingBackend`.
      ``use_cache=False`` wins: it disables both cache layers even when a
      ``cache_dir`` is supplied, so an explicit opt-out is never overridden.

    ``use_aig`` selects AIG simplification in the internal solver's lowering
    pipeline, and ``clause_db_max`` caps its learned-clause database
    (``None`` = the solver default, ``0`` = keep everything).  All lane
    options are ignored when an explicit ``inner`` backend is supplied.
    """
    if inner is not None:
        backend = inner
    elif portfolio:
        if solver not in (None, "", "internal", "cdcl"):
            from .backend import BackendError

            raise BackendError(
                "--portfolio already races every available solver; "
                f"it cannot be combined with --solver {solver}"
            )
        backend = PortfolioBackend(use_aig=use_aig, clause_db_max=clause_db_max)
    else:
        channel = None
        if share_dir is not None:
            from .clauses import ClauseChannel

            channel = ClauseChannel(share_dir)
        backend = backend_for_solver(
            solver, use_aig=use_aig, clause_channel=channel,
            clause_db_max=clause_db_max,
        )
    if use_cache:
        return CachingBackend(backend, cache_dir=cache_dir)
    return backend
