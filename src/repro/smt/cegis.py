"""CEGIS-style solving of exists-forall bitvector queries.

The entailments produced by the equivalence-checking algorithm have the shape

    ∃ configuration, goal variables . (∀ premise variables . premises) ∧ ¬goal

because the symbolic variables inside stored relation conjuncts are implicitly
universally quantified (Definition 4.3 quantifies ⟦φ⟧L over all valuations).
The paper discharges such queries with an SMT solver's quantifier support;
here they are solved with the classic counterexample-guided instantiation
loop over the internal QF_BV procedure:

1. guess values for the existential block that satisfy the matrix under the
   instantiations collected so far;
2. check whether the universal block really holds for that guess;
3. if not, add the refuting universal assignment as a new instantiation and
   repeat.

Both sub-queries are quantifier free.  The loop terminates because the
variable domains are finite, though a round limit is enforced in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..logic import folbv
from ..logic.folbv import BFormula, BVConst, BVVar, Term
from ..p4a.bitvec import Bits
from .bvsolver import InternalBVSolver, SatStatus


class CegisError(Exception):
    """Raised when the CEGIS loop cannot make progress."""


# ---------------------------------------------------------------------------
# Substitution
# ---------------------------------------------------------------------------


def substitute_term(term: Term, values: Mapping[str, Bits]) -> Term:
    if isinstance(term, BVVar):
        if term.name in values:
            return BVConst(values[term.name])
        return term
    if isinstance(term, folbv.BVExtract):
        return folbv.BVExtract(substitute_term(term.term, values), term.lo, term.hi)
    if isinstance(term, folbv.BVConcatT):
        return folbv.BVConcatT(
            substitute_term(term.left, values), substitute_term(term.right, values)
        )
    return term


def substitute(formula: BFormula, values: Mapping[str, Bits]) -> BFormula:
    """Replace variables by constant bitvectors throughout ``formula``."""
    if isinstance(formula, folbv.BEq):
        return folbv.BEq(
            substitute_term(formula.left, values), substitute_term(formula.right, values)
        )
    if isinstance(formula, folbv.BNot):
        return folbv.b_not(substitute(formula.operand, values))
    if isinstance(formula, folbv.BAnd):
        return folbv.b_and([substitute(op, values) for op in formula.operands])
    if isinstance(formula, folbv.BOr):
        return folbv.b_or([substitute(op, values) for op in formula.operands])
    if isinstance(formula, folbv.BImplies):
        return folbv.b_implies(
            substitute(formula.premise, values), substitute(formula.conclusion, values)
        )
    if isinstance(formula, (folbv.BTrue, folbv.BFalse)):
        return formula
    raise CegisError(f"unknown formula {formula!r}")


def rename_formula_variables(formula: BFormula, mapping: Mapping[str, str]) -> BFormula:
    """Rename variables (keeping widths) according to ``mapping``."""
    def substitute_var_term(term: Term) -> Term:
        if isinstance(term, BVVar) and term.name in mapping:
            return BVVar(mapping[term.name], term.var_width)
        if isinstance(term, folbv.BVExtract):
            return folbv.BVExtract(substitute_var_term(term.term), term.lo, term.hi)
        if isinstance(term, folbv.BVConcatT):
            return folbv.BVConcatT(
                substitute_var_term(term.left), substitute_var_term(term.right)
            )
        return term

    def walk(f: BFormula) -> BFormula:
        if isinstance(f, folbv.BEq):
            return folbv.BEq(substitute_var_term(f.left), substitute_var_term(f.right))
        if isinstance(f, folbv.BNot):
            return folbv.b_not(walk(f.operand))
        if isinstance(f, folbv.BAnd):
            return folbv.b_and([walk(op) for op in f.operands])
        if isinstance(f, folbv.BOr):
            return folbv.b_or([walk(op) for op in f.operands])
        if isinstance(f, folbv.BImplies):
            return folbv.b_implies(walk(f.premise), walk(f.conclusion))
        return f

    return walk(formula)


# ---------------------------------------------------------------------------
# Exists-forall solving
# ---------------------------------------------------------------------------


@dataclass
class ExistsForallResult:
    """Outcome of an ∃∀ query.

    ``holds`` is True when a witness for the existential block exists such that
    the matrix holds for every assignment of the universal block; ``witness``
    then carries the existential values.  ``rounds`` counts CEGIS iterations.
    """

    holds: Optional[bool]
    witness: Optional[Dict[str, Bits]]
    rounds: int


def solve_exists_forall(
    matrix: BFormula,
    universal_vars: Mapping[str, int],
    solver: Optional[InternalBVSolver] = None,
    max_rounds: int = 64,
    session=None,
) -> ExistsForallResult:
    """Decide ``∃ E ∀ U . matrix`` where ``U`` is ``universal_vars``.

    Every free variable of ``matrix`` not listed in ``universal_vars`` belongs
    to the existential block.

    With a ``session`` (an :class:`~repro.smt.incremental.IncrementalSession`)
    the loop solves incrementally: every collected instantiation is pushed
    into the shared CNF once, behind an activation literal, and each candidate
    query merely assumes the activation literals gathered so far — the
    instantiation set only ever grows, exactly the monotone shape the session
    is built for.  The per-round verification query rides along as a one-off
    goal assumption.  Without a session each sub-query is a fresh one-shot
    ``check_sat``.
    """
    if session is None:
        solver = solver or InternalBVSolver()
    all_vars = folbv.free_variables(matrix)
    universal = {name: width for name, width in universal_vars.items() if name in all_vars}
    existential = {name: width for name, width in all_vars.items() if name not in universal}

    if not universal:
        if session is not None:
            result = session.check(
                goal=matrix, variables=existential, validate_formula=matrix
            )
        else:
            result = solver.check_sat(matrix)
        if result.status is SatStatus.UNKNOWN:
            return ExistsForallResult(None, None, 1)
        return ExistsForallResult(result.is_sat, result.model, 1)

    instantiations: List[Dict[str, Bits]] = []
    instances: List[BFormula] = []  # substituted matrices, session mode only
    activations: List[int] = []
    for round_index in range(1, max_rounds + 1):
        if session is not None:
            # Free variables of every instance lie in the existential block
            # (the universal ones were substituted away), so the decoded model
            # covers the validation formula.
            candidate = session.check(
                activations,
                variables=existential,
                validate_formula=folbv.b_and(instances) if instances else None,
            )
        else:
            if instantiations:
                candidate_formula = folbv.b_and(
                    [substitute(matrix, instantiation) for instantiation in instantiations]
                )
            else:
                candidate_formula = folbv.B_TRUE
            candidate = solver.check_sat(candidate_formula)
        if candidate.status is SatStatus.UNKNOWN:
            return ExistsForallResult(None, None, round_index)
        if candidate.is_unsat:
            return ExistsForallResult(False, None, round_index)
        witness = {name: candidate.model.get(name, Bits.zeros(width))
                   for name, width in existential.items()} if candidate.model else {
                       name: Bits.zeros(width) for name, width in existential.items()}
        # Verify the universal block for this witness.
        negated_instance = folbv.b_not(substitute(matrix, witness))
        if session is not None:
            check = session.check(
                goal=negated_instance, variables=universal,
                validate_formula=negated_instance,
            )
        else:
            check = solver.check_sat(negated_instance)
        if check.status is SatStatus.UNKNOWN:
            return ExistsForallResult(None, None, round_index)
        if check.is_unsat:
            return ExistsForallResult(True, witness, round_index)
        refutation = {
            name: check.model.get(name, Bits.zeros(width)) for name, width in universal.items()
        }
        instantiations.append(refutation)
        if session is not None:
            instance = substitute(matrix, refutation)
            instances.append(instance)
            activations.append(session.activation(instance))
    return ExistsForallResult(None, None, max_rounds)
