"""Cross-worker learned-clause sharing keyed by structural AIG fingerprints.

The process-pool engine runs one solver per worker, so until now the only
thing workers shared was final verdicts (through the query cache).  Learned
clauses are the expensive by-product of CDCL search, and the hash-consed AIG
gives every node a *stable cross-process name*: a fingerprint computed from
the node's structure alone (input bit names and the gate tree below it).
Two workers lowering the same sub-formulas build structurally identical
cones, so a clause over fingerprinted nodes learned in one worker can be
translated into another worker's local CNF numbering and added there.

Soundness rests on three facts (see also ``sat/solver.py``'s module
docstring):

* conflict analysis never keeps level-0 literals, and an activation literal
  can only be resolved *into* a clause (activation variables occur in one
  clause, negatively) — so a learned clause containing no activation
  variable is implied by the Tseitin gate clauses alone;
* Tseitin gates are definitional, so a clause implied by one worker's gate
  clauses over a cone is implied by any worker's gate clauses for a
  structurally identical cone;
* the exporter only publishes clauses whose every literal names a
  fingerprintable AIG node, and the importer only accepts clauses whose
  every fingerprint resolves to a locally *emitted* node (gates present).

Two pieces:

* :class:`AigFingerprinter` — node index → fingerprint and back, memoised,
  computed iteratively so deep graphs cannot overflow the recursion limit.
* :class:`ClauseChannel` — a bounded sqlite table of published clauses
  (JSON rows of signed fingerprints plus the clause's LBD) shared by every
  worker pointing at the same directory; the same WAL/busy-timeout recipe
  as the query cache.

Every published clause carries its **LBD** (glue) as measured by the
learning solver, so importers can triage: an imported clause enters the
receiving solver's learned database with that LBD and competes for
retention like any locally learned clause — glue clauses are kept forever,
high-LBD imports are the first to go when the database is reduced.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

from .aig import _INPUT, Aig, FolbvToAig

#: Version tag in the channel filename: bump when the fingerprint scheme or
#: the row format changes, so mixed-version workers never exchange clauses.
#: Version 2: rows carry the clause's LBD next to its literals.
CHANNEL_VERSION = 2

#: How long a writer waits on a locked database before giving up (ms).
BUSY_TIMEOUT_MS = 30_000

#: Only clauses this short are shared: long clauses prune little and cost
#: translation work in every importer.
DEFAULT_MAX_CLAUSE_LEN = 8

#: Bound on the number of clauses the channel retains (oldest evicted).
DEFAULT_CAPACITY = 4096

#: Negated fingerprints carry this prefix in the published clause encoding.
_NEGATION = "!"


def _digest(payload: str) -> str:
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class AigFingerprinter:
    """Stable structural fingerprints for the nodes of one AIG.

    An input bit is named by the variable it belongs to
    (``name``/``width``/bit position, read from the lowerer's variable
    table); a gate is named by its kind and the sorted signed fingerprints
    of its operands.  Nodes whose cone contains an input that no variable
    claims (none exist on the lowering path today, but the translation must
    not guess) fingerprint to ``None`` and are excluded from sharing.
    """

    def __init__(self, aig: Aig, lowerer: FolbvToAig) -> None:
        self._aig = aig
        self._lowerer = lowerer
        self._fps: Dict[int, Optional[str]] = {}
        self._by_fp: Dict[str, int] = {}
        self._input_names: Dict[int, str] = {}
        self._scanned_variables = 0

    def _refresh_input_names(self) -> None:
        table = self._lowerer._variable_bits
        if len(table) == self._scanned_variables:
            return
        for (name, width), refs in table.items():
            for position, ref in enumerate(refs):
                self._input_names.setdefault(abs(ref), f"v:{name}:{width}:{position}")
        self._scanned_variables = len(table)

    def fingerprint(self, index: int) -> Optional[str]:
        """The fingerprint of positive node ``index`` (``None``: unshareable)."""
        known = self._fps.get(index, _MISSING)
        if known is not _MISSING:
            return known
        self._refresh_input_names()
        aig = self._aig
        stack = [index]
        while stack:
            node = stack[-1]
            if self._fps.get(node, _MISSING) is not _MISSING:
                stack.pop()
                continue
            kind = aig.kind(node)
            if kind == _INPUT:
                name = self._input_names.get(node)
                self._record(node, None if name is None else _digest(name))
                stack.pop()
                continue
            operands = aig.operands(node)
            pending = [abs(ref) for ref in operands
                       if self._fps.get(abs(ref), _MISSING) is _MISSING]
            if pending:
                stack.extend(pending)
                continue
            child_fps = []
            failed = False
            for ref in operands:
                child = self._fps[abs(ref)]
                if child is None:
                    failed = True
                    break
                child_fps.append(_NEGATION + child if ref < 0 else child)
            if failed:
                self._record(node, None)
            else:
                # AND and IFF are both commutative and the graph
                # canonicalises operand order, but sorting here makes the
                # fingerprint independent of that canonicalisation too.
                self._record(node, _digest(f"{kind}({','.join(sorted(child_fps))})"))
            stack.pop()
        return self._fps[index]

    def _record(self, index: int, fingerprint: Optional[str]) -> None:
        self._fps[index] = fingerprint
        if fingerprint is not None:
            self._by_fp.setdefault(fingerprint, index)

    def node_for(self, fingerprint: str) -> Optional[int]:
        """The local node index behind ``fingerprint``, or ``None``."""
        return self._by_fp.get(fingerprint)


_MISSING = object()


def encode_literal(fingerprint: str, positive: bool) -> str:
    return fingerprint if positive else _NEGATION + fingerprint


def decode_literal(encoded: str) -> Tuple[str, bool]:
    if encoded.startswith(_NEGATION):
        return encoded[1:], False
    return encoded, True


class ClauseChannel:
    """A bounded, shared store of published learned clauses.

    One sqlite database per directory; every worker process (or session)
    pointing at the same directory exchanges clauses through it.  Rows are
    append-only with monotonically increasing ids, so a reader resumes from
    the last id it saw; a bounded capacity evicts the oldest rows.  The
    connection uses the same WAL + busy-timeout recipe as the persistent
    query cache, and a lock serialises use of the shared connection across
    threads.
    """

    FILENAME = f"shared_clauses_v{CHANNEL_VERSION}.sqlite"

    def __init__(
        self,
        directory: str,
        capacity: int = DEFAULT_CAPACITY,
        max_len: int = DEFAULT_MAX_CLAUSE_LEN,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, self.FILENAME)
        self.capacity = capacity
        self.max_len = max_len
        #: Distinguishes this publisher's rows so it never re-imports them.
        self.worker_id = uuid.uuid4().hex
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = None
        with self._lock:
            self._conn()

    def _conn(self) -> sqlite3.Connection:
        """The live connection, reopening transparently after :meth:`close`.

        Caller holds ``self._lock``.
        """
        if self._connection is None:
            connection = sqlite3.connect(self.path, check_same_thread=False)
            connection.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
            connection.execute("PRAGMA journal_mode = WAL")
            connection.execute("PRAGMA synchronous = NORMAL")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS clauses ("
                " id INTEGER PRIMARY KEY AUTOINCREMENT,"
                " worker TEXT NOT NULL,"
                " clause TEXT NOT NULL)"
            )
            connection.commit()
            self._connection = connection
        return self._connection

    def publish(self, clauses: Sequence[Tuple[Sequence[str], int]]) -> int:
        """Append ``(signed-fingerprint clause, lbd)`` pairs; returns how many stored."""
        rows = [
            (self.worker_id, json.dumps({"lbd": int(lbd), "lits": list(clause)}))
            for clause, lbd in clauses
            if 0 < len(clause) <= self.max_len
        ]
        if not rows:
            return 0
        with self._lock:
            connection = self._conn()
            connection.executemany(
                "INSERT INTO clauses (worker, clause) VALUES (?, ?)", rows
            )
            connection.execute(
                "DELETE FROM clauses WHERE id <= ("
                " SELECT COALESCE(MAX(id), 0) FROM clauses) - ?",
                (self.capacity,),
            )
            connection.commit()
        return len(rows)

    def fetch(self, since: int) -> Tuple[int, List[Tuple[List[str], int]]]:
        """Clauses published by *other* workers after row id ``since``.

        Returns ``(new_since, [(clause, lbd), ...])``; pass ``new_since`` to
        the next call.  Own rows advance the cursor without being returned.
        """
        with self._lock:
            rows = self._conn().execute(
                "SELECT id, worker, clause FROM clauses WHERE id > ? ORDER BY id",
                (since,),
            ).fetchall()
        if not rows:
            return since, []
        clauses = []
        for _, worker, clause in rows:
            if worker == self.worker_id:
                continue
            payload = json.loads(clause)
            clauses.append((payload["lits"], int(payload["lbd"])))
        return rows[-1][0], clauses

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn().execute(
                "SELECT COUNT(*) FROM clauses"
            ).fetchone()
        return count

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
