"""An incremental, assumption-based solving session over the internal stack.

Algorithm 1 asks thousands of entailment queries ``⋀R ⊨ ψ`` against a
relation ``R`` that only ever grows.  A fresh :func:`~repro.smt.bitblast.bitblast`
plus a fresh :class:`~repro.smt.sat.solver.CdclSolver` per query re-encodes
the whole premise conjunction every time; this module keeps **one** live CNF
and **one** CDCL solver per checker run instead, lowered through the shared
AIG pipeline (:mod:`repro.smt.aig`):

* every lowered subterm and subformula is memoized by its structural
  fingerprint (:mod:`repro.logic.fingerprint`), so structure shared between
  ``ψ`` and the growing ``⋀R`` — or between successive queries — becomes one
  graph node and is Tseitin encoded at most once;
* each premise is guarded behind an **activation literal** ``a`` with the
  clause ``¬a ∨ root(premise)``; the monotone relation is pushed into the CNF
  once and every later query merely assumes the activation literals of the
  premises it needs;
* per-query goals (``¬ψ``, CEGIS verification checks, …) are lowered once per
  distinct formula and their root literal passed as a further assumption — the
  Tseitin gates encode full equivalences, so assuming the root literal asserts
  the formula without polluting the clause database;
* with ``use_aig`` on, the conjunction of every query's activated formulas
  (plus its goal) is rebuilt as a graph AND first: when simplification
  collapses it to constant false — e.g. the goal's cone is structurally
  subsumed by the premises — the query is answered **unsat with zero solver
  work**, which is where most of the AIG speedup on Algorithm 1's workload
  comes from;
* the underlying :class:`CdclSolver` keeps its learned clauses, activities and
  saved phases across queries, so conflicts refuted once stay refuted.

Soundness: graph rewrites are equivalence preserving, gate clauses are
definitions (satisfiable under every assignment of the original variables),
activation clauses only constrain when assumed, and an unsat answer under
assumptions therefore implies the conjunction of the activated formulas is
unsatisfiable.  Sat answers are decoded back to bitvector models and — like
the one-shot solver — validated against the original formula when
``validate_models`` is on.

Variables are keyed by ``(name, width)``: distinct queries may reuse a
canonical variable name (``x0``…) at different widths, and each such pairing
gets its own bit block, so cross-query aliasing is impossible.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic import folbv
from ..logic.fingerprint import folbv_fingerprint
from ..logic.folbv import BFormula
from ..p4a.bitvec import Bits
from .aig import FALSE_REF, Aig, AigToCnf, FolbvToAig
from .bvsolver import SatResult, SatStatus, SolverStatistics, complete_model
from .sat.cnf import CnfBuilder
from .sat.solver import DEFAULT_CLAUSE_DB_MAX, CdclSolver


class IncrementalSession:
    """One live CNF + CDCL solver shared by a whole stream of related queries.

    ``activation(formula)`` pushes a formula once (idempotently, keyed by
    fingerprint) and returns the activation literal that turns it on;
    ``check(assumptions, goal=...)`` decides satisfiability of the activated
    conjunction plus an optional per-query goal formula.
    """

    def __init__(
        self,
        validate_models: bool = True,
        statistics: Optional[SolverStatistics] = None,
        use_aig: bool = True,
        clause_channel=None,
        clause_db_max: Optional[int] = None,
    ) -> None:
        self._aig = Aig(simplify=use_aig)
        self._lowerer = FolbvToAig(self._aig)
        self._builder = CnfBuilder()
        if clause_db_max is None:
            clause_db_max = DEFAULT_CLAUSE_DB_MAX
        self._emitter = AigToCnf(self._aig, self._builder)
        self._solver = CdclSolver(clause_db_max=clause_db_max)
        self._use_aig = use_aig
        # Cross-worker learned-clause sharing (repro.smt.clauses): short
        # learned clauses are buffered — with the LBD the learning run
        # measured — as they are learned, translated to structural
        # fingerprints and published after each query; foreign clauses are
        # pulled and translated back before each solve.
        self._channel = clause_channel
        self._fingerprinter = None
        self._export_buffer: List[Tuple[List[int], int]] = []
        self._exported_keys: set = set()
        self._channel_since = 0
        if clause_channel is not None:
            from .clauses import AigFingerprinter

            self._fingerprinter = AigFingerprinter(self._aig, self._lowerer)
            max_len = clause_channel.max_len

            def _collect(learned: List[int], lbd: int) -> None:
                if len(learned) <= max_len and len(self._export_buffer) < 512:
                    self._export_buffer.append((learned, lbd))

            self._solver.on_learn = _collect
        # fingerprint -> (activation literal, graph ref, encoding cone)
        self._activations: Dict[str, Tuple[int, int, frozenset]] = {}
        # activation literal -> (graph ref, cone), for check() assumption lists
        self._activation_info: Dict[int, Tuple[int, frozenset]] = {}
        # fingerprint -> (graph ref, root literal, cone) for per-query goals
        self._goal_cache: Dict[str, Tuple[int, int, frozenset]] = {}
        self._clauses_fed = 0
        self._validate_models = validate_models
        # Assumptions of the last graph-collapsed unsat answer; the CDCL
        # final-conflict set is stale after such a query.
        self._shortcut_assumptions: Optional[List[int]] = None
        # Watermarks for publishing cumulative AIG and solver counters as
        # deltas into the (possibly shared) statistics ledger.
        self._published_nodes = 0
        self._published_saved = 0
        self._published_reductions = 0
        self._published_deleted = 0
        self._published_minimized = 0
        self._published_lbd_sum = 0
        self._published_learned = 0
        #: Statistics sink; pass the owning solver's object to keep one ledger.
        self.statistics = statistics if statistics is not None else SolverStatistics()
        #: Number of queries answered by this session.
        self.queries = 0
        #: Queries answered by graph-level collapse, without touching CDCL.
        self.aig_shortcuts = 0

    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._builder.num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._builder.clauses)

    def _lower(self, formula: BFormula) -> Tuple[int, int, frozenset]:
        """Lower a formula; returns ``(graph ref, root literal, cone)``."""
        ref = self._lowerer.lower_formula(formula)
        literal = self._emitter.literal(ref)
        return ref, literal, self._emitter.cone(ref)

    def activation(self, formula: BFormula) -> int:
        """Encode ``formula`` (once) behind an activation literal and return it."""
        fingerprint = folbv_fingerprint(formula)
        entry = self._activations.get(fingerprint)
        if entry is None:
            ref, root, cone = self._lower(formula)
            literal = self._builder.new_var()
            self._builder.add_clause([-literal, root])
            entry = (literal, ref, cone)
            self._activations[fingerprint] = entry
            self._activation_info[literal] = (ref, cone)
        return entry[0]

    def _sync_solver(self) -> None:
        """Feed clauses produced since the last query into the live solver."""
        builder = self._builder
        self._solver.ensure_num_vars(builder.num_vars)
        clauses = builder.clauses
        for index in range(self._clauses_fed, len(clauses)):
            self._solver.add_clause(clauses[index])
        self._clauses_fed = len(clauses)

    def _publish_aig_statistics(self) -> None:
        """Push cumulative graph and solver counters into the ledger as deltas.

        Several sessions may share one :class:`SolverStatistics` (the
        entailment checker's session and the CEGIS counterexample sessions
        feed the same owning solver), so absolute counters cannot simply be
        overwritten.
        """
        nodes = self._aig.num_nodes
        saved = self._aig.clauses_saved
        self.statistics.aig_nodes += nodes - self._published_nodes
        self.statistics.aig_clauses_saved += saved - self._published_saved
        self._published_nodes = nodes
        self._published_saved = saved
        # Learned-database management counters, same delta discipline.
        solver_stats = self._solver.stats
        self.statistics.db_reductions += (
            solver_stats.db_reductions - self._published_reductions
        )
        self.statistics.clauses_deleted += (
            solver_stats.clauses_deleted - self._published_deleted
        )
        self.statistics.minimized_literals += (
            solver_stats.minimized_literals - self._published_minimized
        )
        self.statistics.lbd_sum += solver_stats.lbd_sum - self._published_lbd_sum
        self.statistics.lbd_clauses += (
            solver_stats.learned_clauses - self._published_learned
        )
        self._published_reductions = solver_stats.db_reductions
        self._published_deleted = solver_stats.clauses_deleted
        self._published_minimized = solver_stats.minimized_literals
        self._published_lbd_sum = solver_stats.lbd_sum
        self._published_learned = solver_stats.learned_clauses

    # ------------------------------------------------------------------
    # Cross-worker clause sharing
    # ------------------------------------------------------------------

    def _import_shared_clauses(self) -> None:
        """Translate foreign clauses into local CNF numbering and add them.

        A clause is accepted only when *every* signed fingerprint resolves
        to a locally known node whose cone has already been emitted — then
        the local gate clauses imply the clause (see ``repro.smt.clauses``)
        and adding it is sound.  Anything else is skipped, not an error:
        other workers legitimately solve formulas this session never saw.
        """
        if self._channel is None:
            return
        from .clauses import decode_literal

        # Make every emitted node resolvable by fingerprint (memoised, so
        # each node is hashed once over the session's lifetime).
        for node in self._emitter._vars:
            self._fingerprinter.fingerprint(node)
        self._channel_since, clauses = self._channel.fetch(self._channel_since)
        for encoded, lbd in clauses:
            literals: List[int] = []
            for signed in encoded:
                fingerprint, positive = decode_literal(signed)
                node = self._fingerprinter.node_for(fingerprint)
                var = None if node is None else self._emitter.var_of(node)
                if var is None:
                    literals = []
                    break
                literals.append(var if positive else -var)
            if literals:
                # Imports join the learned database under the LBD measured by
                # the exporting solver, so the reduction policy triages them
                # instead of keeping foreign clauses forever.
                self._solver.add_learned_clause(literals, lbd)
                self.statistics.clauses_imported += 1

    def _export_shared_clauses(self) -> None:
        """Publish this query's short learned clauses, translated to fingerprints.

        Clauses mentioning a variable with no structural identity (activation
        literals, the constant variable) are dropped: they are only implied
        *together with* session-local clauses, so exporting them would be
        unsound (and meaningless) elsewhere.
        """
        buffered, self._export_buffer = self._export_buffer, []
        if self._channel is None or not buffered:
            return
        from .clauses import encode_literal

        outgoing: List[Tuple[List[str], int]] = []
        for learned, lbd in buffered:
            encoded: List[str] = []
            for literal in learned:
                node = self._emitter.node_of(abs(literal))
                fingerprint = (
                    None if node is None else self._fingerprinter.fingerprint(node)
                )
                if fingerprint is None:
                    encoded = []
                    break
                encoded.append(encode_literal(fingerprint, literal > 0))
            if encoded:
                key = tuple(sorted(encoded))
                if key not in self._exported_keys:
                    self._exported_keys.add(key)
                    outgoing.append((encoded, lbd))
        if outgoing:
            self.statistics.clauses_exported += self._channel.publish(outgoing)

    # ------------------------------------------------------------------

    def check(
        self,
        assumptions: Sequence[int] = (),
        goal: Optional[BFormula] = None,
        variables: Optional[Mapping[str, int]] = None,
        validate_formula: Optional[BFormula] = None,
        max_conflicts: Optional[int] = None,
    ) -> SatResult:
        """Satisfiability of the activated conjunction (plus ``goal``).

        ``assumptions`` are activation literals from :meth:`activation`;
        ``goal`` is an extra formula asserted for this query only.  A sat
        answer decodes a model over ``variables`` (name → width; defaults to
        the free variables of ``goal`` and ``validate_formula``) and, when
        model validation is on, checks it against ``validate_formula``.
        """
        start = time.perf_counter()
        assumed = list(assumptions)
        decision_vars = set()
        refs: List[int] = []
        for literal in assumptions:
            ref, cone = self._activation_info[literal]
            decision_vars |= cone
            refs.append(ref)
        if goal is not None:
            fingerprint = folbv_fingerprint(goal)
            entry = self._goal_cache.get(fingerprint)
            if entry is None:
                entry = self._lower(goal)
                self._goal_cache[fingerprint] = entry
            goal_ref, goal_literal, goal_cone = entry
            assumed.append(goal_literal)
            decision_vars |= goal_cone
            refs.append(goal_ref)
        if self._use_aig and refs:
            # Graph-level short-circuit: rebuild the query conjunction as one
            # AND node; when rewriting collapses it to false the query is
            # unsat with no CDCL work at all.  (A collapse to true still runs
            # the solver, because sat answers need a model.)
            if self._aig.and_(refs) == FALSE_REF:
                self.aig_shortcuts += 1
                self.statistics.aig_shortcuts += 1
                self._shortcut_assumptions = assumed
                elapsed = time.perf_counter() - start
                result = SatResult(
                    SatStatus.UNSAT, None, elapsed, self.num_clauses, self.num_vars
                )
                self.queries += 1
                self.statistics.record(result)
                self._publish_aig_statistics()
                return result
        self._shortcut_assumptions = None
        self._sync_solver()
        self._import_shared_clauses()
        sat, sat_values = self._solver.solve_values(
            max_conflicts=max_conflicts,
            assumptions=assumed,
            decision_vars=decision_vars,
        )
        self._export_shared_clauses()
        elapsed = time.perf_counter() - start
        num_clauses = self.num_clauses
        num_vars = self.num_vars
        if sat is None:
            result = SatResult(SatStatus.UNKNOWN, None, elapsed, num_clauses, num_vars)
        elif sat:
            if variables is None:
                variables = {}
                for formula in (goal, validate_formula):
                    if formula is not None:
                        variables.update(folbv.free_variables(formula))
            model = self._decode_model(sat_values, variables)
            if self._validate_models and validate_formula is not None:
                if not folbv.eval_formula(
                    validate_formula, complete_model(validate_formula, model)
                ):
                    raise RuntimeError(
                        "incremental session returned a model that does not "
                        "satisfy the formula"
                    )
            result = SatResult(SatStatus.SAT, model, elapsed, num_clauses, num_vars)
        else:
            result = SatResult(SatStatus.UNSAT, None, elapsed, num_clauses, num_vars)
        self.queries += 1
        self.statistics.record(result)
        self._publish_aig_statistics()
        return result

    def _decode_model(
        self, sat_values: Sequence[int], variables: Mapping[str, int]
    ) -> Dict[str, Bits]:
        values: Dict[str, Bits] = {}
        for name, width in variables.items():
            refs = self._lowerer._variable_bits.get((name, width))
            if refs is None:
                values[name] = Bits.zeros(width)
            else:
                bits = []
                for ref in refs:
                    # Bits whose whole cone folded away were never emitted;
                    # they are unconstrained, so zero is a valid choice (the
                    # validation formula re-check backstops this).
                    var = self._emitter.var_of(ref)
                    bits.append("1" if var is not None and sat_values[var] == 1 else "0")
                values[name] = Bits("".join(bits))
        return values

    # ------------------------------------------------------------------

    def failed_assumptions(self) -> List[int]:
        """After an unsat :meth:`check`: the responsible assumption subset.

        For a graph-collapsed answer there is no CDCL final conflict; the
        full assumption list of that query is returned instead.
        """
        if self._shortcut_assumptions is not None:
            return list(self._shortcut_assumptions)
        return list(self._solver.last_conflict)
