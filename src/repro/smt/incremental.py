"""An incremental, assumption-based solving session over the internal stack.

Algorithm 1 asks thousands of entailment queries ``⋀R ⊨ ψ`` against a
relation ``R`` that only ever grows.  A fresh :func:`~repro.smt.bitblast.bitblast`
plus a fresh :class:`~repro.smt.sat.solver.CdclSolver` per query re-encodes
the whole premise conjunction every time; this module keeps **one** live CNF
and **one** CDCL solver per checker run instead:

* every bit-blasted subterm and subformula is memoized by its structural
  fingerprint (:mod:`repro.logic.fingerprint`), so structure shared between
  ``ψ`` and the growing ``⋀R`` — or between successive queries — is Tseitin
  encoded exactly once;
* each premise is guarded behind an **activation literal** ``a`` with the
  clause ``¬a ∨ root(premise)``; the monotone relation is pushed into the CNF
  once and every later query merely assumes the activation literals of the
  premises it needs;
* per-query goals (``¬ψ``, CEGIS verification checks, …) are blasted once per
  distinct formula and their root literal passed as a further assumption — the
  Tseitin gates encode full equivalences, so assuming the root literal asserts
  the formula without polluting the clause database;
* the underlying :class:`CdclSolver` keeps its learned clauses, activities and
  saved phases across queries, so conflicts refuted once stay refuted.

Soundness: gate clauses are definitions (satisfiable under every assignment of
the original variables), activation clauses only constrain when assumed, and
an unsat answer under assumptions therefore implies the conjunction of the
activated formulas is unsatisfiable.  Sat answers are decoded back to
bitvector models and — like the one-shot solver — validated against the
original formula when ``validate_models`` is on.

Variables are keyed by ``(name, width)``: distinct queries may reuse a
canonical variable name (``x0``…) at different widths, and each such pairing
gets its own bit block, so cross-query aliasing is impossible.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic import folbv
from ..logic.fingerprint import folbv_fingerprint
from ..logic.folbv import BFormula, Term
from ..p4a.bitvec import Bits
from .bitblast import BitAtom, BitblastError
from .bvsolver import SatResult, SatStatus, SolverStatistics, complete_model
from .sat.cnf import CnfBuilder
from .sat.solver import CdclSolver


class _SessionBlaster:
    """A bit-blaster over a shared :class:`CnfBuilder`, memoized by fingerprint.

    Unlike :class:`~repro.smt.bitblast.Bitblaster` (whose caches key on the
    recursively-hashed formula objects of a single query), this blaster keys
    every term tuple and formula literal on the structural fingerprint, so
    formulas rebuilt by later queries — equal in structure but not identity —
    reuse the existing encoding.  Variables key on ``(name, width)``.

    NOTE: the per-node encoding rules here mirror ``bitblast.Bitblaster``
    case for case (only cache keys, variable keys and cone tracking differ);
    a change to how any term or formula shape is blasted must be applied to
    both, or the one-shot and incremental paths drift apart — the ablation
    parity benchmark exists to catch exactly that.
    """

    def __init__(self) -> None:
        self.builder = CnfBuilder()
        self._variable_bits: Dict[Tuple[str, int], List[int]] = {}
        self._term_cache: Dict[str, Tuple[BitAtom, ...]] = {}
        # fingerprint -> (root literal, cone): the cone is the set of SAT
        # variables occurring in the formula's encoding (bit variables plus
        # every Tseitin gate output).  Restricted solves decide exactly the
        # union of the active formulas' cones, so a query never has to assign
        # the structure of formulas it does not mention.
        self._formula_cache: Dict[str, Tuple[int, frozenset]] = {}

    # -- variables -------------------------------------------------------------

    def variable_bits(self, name: str, width: int) -> List[int]:
        key = (name, width)
        bits = self._variable_bits.get(key)
        if bits is None:
            bits = [self.builder.new_var() for _ in range(width)]
            self._variable_bits[key] = bits
        return bits

    # -- terms -----------------------------------------------------------------

    def blast_term(self, term: Term) -> Tuple[BitAtom, ...]:
        fingerprint = folbv_fingerprint(term)
        cached = self._term_cache.get(fingerprint)
        if cached is not None:
            return cached
        if isinstance(term, folbv.BVVar):
            atoms: Tuple[BitAtom, ...] = tuple(
                self.variable_bits(term.name, term.var_width)
            )
        elif isinstance(term, folbv.BVConst):
            atoms = tuple(bit == 1 for bit in term.value)
        elif isinstance(term, folbv.BVExtract):
            inner = self.blast_term(term.term)
            atoms = inner[term.lo : term.hi + 1]
        elif isinstance(term, folbv.BVConcatT):
            atoms = self.blast_term(term.left) + self.blast_term(term.right)
        else:
            raise BitblastError(f"cannot bit-blast term {term!r}")
        if len(atoms) != term.width:
            raise BitblastError(
                f"term {term} blasted to {len(atoms)} bits, expected {term.width}"
            )
        self._term_cache[fingerprint] = atoms
        return atoms

    # -- formulas ----------------------------------------------------------------

    def _atom_literal(self, atom: BitAtom) -> int:
        if isinstance(atom, bool):
            return self.builder.constant(atom)
        return atom

    def _bit_equal(self, a: BitAtom, b: BitAtom) -> int:
        if isinstance(a, bool) and isinstance(b, bool):
            return self.builder.constant(a == b)
        if isinstance(a, bool):
            return self._atom_literal(b) if a else -self._atom_literal(b)
        if isinstance(b, bool):
            return a if b else -a
        if a == b:
            return self.builder.constant(True)
        if a == -b:
            return self.builder.constant(False)
        return self.builder.gate_iff(a, b)

    def blast_formula(self, formula: BFormula) -> Tuple[int, frozenset]:
        """Return ``(literal, cone)`` for ``formula`` (gates shared by fingerprint)."""
        fingerprint = folbv_fingerprint(formula)
        cached = self._formula_cache.get(fingerprint)
        if cached is not None:
            return cached
        if isinstance(formula, folbv.BTrue):
            literal = self.builder.constant(True)
            cone = frozenset((abs(literal),))
        elif isinstance(formula, folbv.BFalse):
            literal = self.builder.constant(False)
            cone = frozenset((abs(literal),))
        elif isinstance(formula, folbv.BEq):
            left = self.blast_term(formula.left)
            right = self.blast_term(formula.right)
            bit_literals = [self._bit_equal(a, b) for a, b in zip(left, right)]
            literal = self.builder.gate_and(bit_literals)
            cone = frozenset(
                abs(atom)
                for atoms in (left, right)
                for atom in atoms
                if not isinstance(atom, bool)
            )
            cone |= frozenset(abs(b) for b in bit_literals)
            cone |= frozenset((abs(literal),))
        elif isinstance(formula, folbv.BNot):
            inner, cone = self.blast_formula(formula.operand)
            literal = -inner
        elif isinstance(formula, (folbv.BAnd, folbv.BOr)):
            literals: List[int] = []
            cone = frozenset()
            for operand in formula.operands:
                operand_literal, operand_cone = self.blast_formula(operand)
                literals.append(operand_literal)
                cone |= operand_cone
            if isinstance(formula, folbv.BAnd):
                literal = self.builder.gate_and(literals)
            else:
                literal = self.builder.gate_or(literals)
            cone |= frozenset((abs(literal),))
        elif isinstance(formula, folbv.BImplies):
            premise_literal, premise_cone = self.blast_formula(formula.premise)
            conclusion_literal, conclusion_cone = self.blast_formula(formula.conclusion)
            literal = self.builder.gate_implies(premise_literal, conclusion_literal)
            cone = premise_cone | conclusion_cone | frozenset((abs(literal),))
        else:
            raise BitblastError(f"cannot bit-blast formula {formula!r}")
        result = (literal, cone)
        self._formula_cache[fingerprint] = result
        return result


class IncrementalSession:
    """One live CNF + CDCL solver shared by a whole stream of related queries.

    ``activation(formula)`` pushes a formula once (idempotently, keyed by
    fingerprint) and returns the activation literal that turns it on;
    ``check(assumptions, goal=...)`` decides satisfiability of the activated
    conjunction plus an optional per-query goal formula.
    """

    def __init__(
        self,
        validate_models: bool = True,
        statistics: Optional[SolverStatistics] = None,
    ) -> None:
        self._blaster = _SessionBlaster()
        self._solver = CdclSolver()
        # fingerprint -> (activation literal, encoding cone of the formula)
        self._activations: Dict[str, Tuple[int, frozenset]] = {}
        # activation literal -> cone, for assumption lists handed back to check()
        self._activation_cones: Dict[int, frozenset] = {}
        self._clauses_fed = 0
        self._validate_models = validate_models
        #: Statistics sink; pass the owning solver's object to keep one ledger.
        self.statistics = statistics if statistics is not None else SolverStatistics()
        #: Number of queries answered by this session.
        self.queries = 0

    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._blaster.builder.num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._blaster.builder.clauses)

    def activation(self, formula: BFormula) -> int:
        """Encode ``formula`` (once) behind an activation literal and return it."""
        fingerprint = folbv_fingerprint(formula)
        entry = self._activations.get(fingerprint)
        if entry is None:
            root, cone = self._blaster.blast_formula(formula)
            literal = self._blaster.builder.new_var()
            self._blaster.builder.add_clause([-literal, root])
            entry = (literal, cone)
            self._activations[fingerprint] = entry
            self._activation_cones[literal] = cone
        return entry[0]

    def _sync_solver(self) -> None:
        """Feed clauses produced since the last query into the live solver."""
        builder = self._blaster.builder
        self._solver.ensure_num_vars(builder.num_vars)
        clauses = builder.clauses
        for index in range(self._clauses_fed, len(clauses)):
            self._solver.add_clause(clauses[index])
        self._clauses_fed = len(clauses)

    # ------------------------------------------------------------------

    def check(
        self,
        assumptions: Sequence[int] = (),
        goal: Optional[BFormula] = None,
        variables: Optional[Mapping[str, int]] = None,
        validate_formula: Optional[BFormula] = None,
        max_conflicts: Optional[int] = None,
    ) -> SatResult:
        """Satisfiability of the activated conjunction (plus ``goal``).

        ``assumptions`` are activation literals from :meth:`activation`;
        ``goal`` is an extra formula asserted for this query only.  A sat
        answer decodes a model over ``variables`` (name → width; defaults to
        the free variables of ``goal`` and ``validate_formula``) and, when
        model validation is on, checks it against ``validate_formula``.
        """
        start = time.perf_counter()
        assumed = list(assumptions)
        decision_vars = set()
        for literal in assumptions:
            decision_vars |= self._activation_cones[literal]
        if goal is not None:
            goal_literal, goal_cone = self._blaster.blast_formula(goal)
            assumed.append(goal_literal)
            decision_vars |= goal_cone
        self._sync_solver()
        sat, sat_values = self._solver.solve_values(
            max_conflicts=max_conflicts,
            assumptions=assumed,
            decision_vars=decision_vars,
        )
        elapsed = time.perf_counter() - start
        num_clauses = self.num_clauses
        num_vars = self.num_vars
        if sat is None:
            result = SatResult(SatStatus.UNKNOWN, None, elapsed, num_clauses, num_vars)
        elif sat:
            if variables is None:
                variables = {}
                for formula in (goal, validate_formula):
                    if formula is not None:
                        variables.update(folbv.free_variables(formula))
            model = self._decode_model(sat_values, variables)
            if self._validate_models and validate_formula is not None:
                if not folbv.eval_formula(
                    validate_formula, complete_model(validate_formula, model)
                ):
                    raise RuntimeError(
                        "incremental session returned a model that does not "
                        "satisfy the formula"
                    )
            result = SatResult(SatStatus.SAT, model, elapsed, num_clauses, num_vars)
        else:
            result = SatResult(SatStatus.UNSAT, None, elapsed, num_clauses, num_vars)
        self.queries += 1
        self.statistics.record(result)
        return result

    def _decode_model(
        self, sat_values: Sequence[int], variables: Mapping[str, int]
    ) -> Dict[str, Bits]:
        values: Dict[str, Bits] = {}
        for name, width in variables.items():
            bits = self._blaster._variable_bits.get((name, width))
            if bits is None:
                values[name] = Bits.zeros(width)
            else:
                values[name] = Bits(
                    "".join("1" if sat_values[var] == 1 else "0" for var in bits)
                )
        return values

    # ------------------------------------------------------------------

    def failed_assumptions(self) -> List[int]:
        """After an unsat :meth:`check`: the responsible assumption subset."""
        return list(self._solver.last_conflict)
