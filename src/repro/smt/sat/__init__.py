"""SAT solving: CNF representation, CDCL, DPLL and brute-force reference."""

from .brute import brute_force_solve, check_model
from .cnf import Cnf, CnfBuilder
from .dpll import dpll_solve
from .solver import DEFAULT_CLAUSE_DB_MAX, CdclSolver, SolverStats, cdcl_solve

__all__ = [
    "CdclSolver",
    "Cnf",
    "CnfBuilder",
    "DEFAULT_CLAUSE_DB_MAX",
    "SolverStats",
    "brute_force_solve",
    "cdcl_solve",
    "check_model",
    "dpll_solve",
]
