"""Brute-force SAT solving by exhaustive enumeration.

Usable only for very small formulas (≈20 variables); serves as the ground
truth in property-based tests of the DPLL and CDCL solvers.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional, Sequence, Tuple

from .cnf import Cnf


def brute_force_solve(cnf: Cnf, limit: int = 22) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Return ``(satisfiable, model)`` by enumerating every assignment."""
    if cnf.num_vars > limit:
        raise ValueError(f"brute force limited to {limit} variables, got {cnf.num_vars}")
    variables = list(range(1, cnf.num_vars + 1))
    for values in product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(_clause_satisfied(clause, assignment) for clause in cnf.clauses):
            return True, assignment
    return False, None


def _clause_satisfied(clause: Sequence[int], assignment: Dict[int, bool]) -> bool:
    return any(
        assignment[abs(literal)] == (literal > 0) for literal in clause
    ) if clause else False


def check_model(cnf: Cnf, model: Dict[int, bool]) -> bool:
    """Whether ``model`` satisfies every clause of ``cnf``."""
    return all(_clause_satisfied(clause, model) for clause in cnf.clauses)
