"""CNF representation and Tseitin gate encoding.

Literals are non-zero integers in the DIMACS convention: variable ``v`` is the
positive literal ``v`` and its negation is ``-v``.  The :class:`CnfBuilder`
allocates variables, collects clauses and offers Tseitin-style gate encoders
(and/or/not/xor/iff/implies) that return a literal equivalent to the gate's
output, which is how the bit-blaster lowers boolean structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class Cnf:
    """A CNF formula: a number of variables and a list of clauses."""

    num_vars: int = 0
    clauses: List[Tuple[int, ...]] = field(default_factory=list)

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        for literal in clause:
            if literal == 0 or abs(literal) > self.num_vars:
                raise ValueError(f"invalid literal {literal} (num_vars={self.num_vars})")
        self.clauses.append(clause)

    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"


class CnfBuilder:
    """Incrementally builds a CNF, with Tseitin encodings for common gates."""

    def __init__(self) -> None:
        self.cnf = Cnf()
        self._true_literal: Optional[int] = None
        # Cache gate outputs so repeated subterms share encodings.
        self._and_cache: Dict[Tuple[int, ...], int] = {}
        self._or_cache: Dict[Tuple[int, ...], int] = {}
        self._iff_cache: Dict[Tuple[int, int], int] = {}

    # -- variables and clauses ------------------------------------------------

    def new_var(self) -> int:
        self.cnf.num_vars += 1
        return self.cnf.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        self.cnf.add_clause(literals)

    @property
    def num_vars(self) -> int:
        return self.cnf.num_vars

    @property
    def clauses(self) -> List[Tuple[int, ...]]:
        return self.cnf.clauses

    # -- constants -------------------------------------------------------------

    def true_literal(self) -> int:
        """A literal constrained to be true (allocated lazily)."""
        if self._true_literal is None:
            self._true_literal = self.new_var()
            self.add_clause([self._true_literal])
        return self._true_literal

    def false_literal(self) -> int:
        return -self.true_literal()

    def constant(self, value: bool) -> int:
        return self.true_literal() if value else self.false_literal()

    # -- primitive gate emitters ------------------------------------------------
    #
    # These write the Tseitin clauses for a gate whose output variable the
    # caller has already allocated; no caching, no simplification.  They are
    # the single source of gate clause shapes, shared by the cached ``gate_*``
    # encoders below and by the AIG emitter (:mod:`repro.smt.aig`).

    def emit_and(self, output: int, literals: Sequence[int]) -> None:
        """Clauses for ``output ↔ ⋀ literals``."""
        for literal in literals:
            self.add_clause([-output, literal])
        self.add_clause([output] + [-l for l in literals])

    def emit_or(self, output: int, literals: Sequence[int]) -> None:
        """Clauses for ``output ↔ ⋁ literals``."""
        for literal in literals:
            self.add_clause([output, -literal])
        self.add_clause([-output] + list(literals))

    def emit_iff(self, output: int, a: int, b: int) -> None:
        """Clauses for ``output ↔ (a ↔ b)``."""
        self.add_clause([-output, -a, b])
        self.add_clause([-output, a, -b])
        self.add_clause([output, a, b])
        self.add_clause([output, -a, -b])

    # -- gates -----------------------------------------------------------------

    def gate_not(self, literal: int) -> int:
        return -literal

    def gate_and(self, literals: Sequence[int]) -> int:
        literals = tuple(sorted(set(literals)))
        if not literals:
            return self.true_literal()
        if len(literals) == 1:
            return literals[0]
        cached = self._and_cache.get(literals)
        if cached is not None:
            return cached
        output = self.new_var()
        self.emit_and(output, literals)
        self._and_cache[literals] = output
        return output

    def gate_or(self, literals: Sequence[int]) -> int:
        literals = tuple(sorted(set(literals)))
        if not literals:
            return self.false_literal()
        if len(literals) == 1:
            return literals[0]
        cached = self._or_cache.get(literals)
        if cached is not None:
            return cached
        output = self.new_var()
        self.emit_or(output, literals)
        self._or_cache[literals] = output
        return output

    def gate_implies(self, premise: int, conclusion: int) -> int:
        return self.gate_or([-premise, conclusion])

    def gate_iff(self, a: int, b: int) -> int:
        key = (a, b) if a <= b else (b, a)
        cached = self._iff_cache.get(key)
        if cached is not None:
            return cached
        output = self.new_var()
        self.emit_iff(output, a, b)
        self._iff_cache[key] = output
        return output

    def gate_xor(self, a: int, b: int) -> int:
        return self.gate_not(self.gate_iff(a, b))

    def assert_literal(self, literal: int) -> None:
        self.add_clause([literal])
