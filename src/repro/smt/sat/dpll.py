"""A plain DPLL SAT solver.

Recursive Davis–Putnam–Logemann–Loveland with unit propagation and pure
literal elimination.  It is not meant to be fast: it acts as an independent
reference implementation against which the CDCL solver is differentially
tested, and as a fallback for tiny queries.
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, List, Optional, Tuple

from .cnf import Cnf


def dpll_solve(cnf: Cnf) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Return ``(satisfiable, model)``.  The model assigns every variable."""
    clauses = [frozenset(clause) for clause in cnf.clauses]
    assignment: Dict[int, bool] = {}
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10 * cnf.num_vars + 1000))
    try:
        result = _dpll(clauses, assignment)
    finally:
        sys.setrecursionlimit(old_limit)
    if result is None:
        return False, None
    for variable in range(1, cnf.num_vars + 1):
        result.setdefault(variable, False)
    return True, result


def _simplify(clauses: List[FrozenSet[int]], literal: int) -> Optional[List[FrozenSet[int]]]:
    """Assign ``literal`` true: drop satisfied clauses, shrink the others."""
    simplified: List[FrozenSet[int]] = []
    for clause in clauses:
        if literal in clause:
            continue
        if -literal in clause:
            reduced = clause - {-literal}
            if not reduced:
                return None
            simplified.append(reduced)
        else:
            simplified.append(clause)
    return simplified


def _dpll(
    clauses: List[FrozenSet[int]], assignment: Dict[int, bool]
) -> Optional[Dict[int, bool]]:
    # Unit propagation.
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            if len(clause) == 1:
                literal = next(iter(clause))
                assignment[abs(literal)] = literal > 0
                clauses = _simplify(clauses, literal)
                if clauses is None:
                    return None
                changed = True
                break
    if not clauses:
        return dict(assignment)
    # Pure literal elimination.
    literals = {literal for clause in clauses for literal in clause}
    pure = [literal for literal in literals if -literal not in literals]
    if pure:
        for literal in pure:
            assignment[abs(literal)] = literal > 0
            clauses = _simplify(clauses, literal)
            if clauses is None:
                return None
        return _dpll(clauses, assignment)
    # Branch on the first literal of the first clause.
    literal = next(iter(clauses[0]))
    for choice in (literal, -literal):
        branch_clauses = _simplify(clauses, choice)
        if branch_clauses is None:
            continue
        branch_assignment = dict(assignment)
        branch_assignment[abs(choice)] = choice > 0
        result = _dpll(branch_clauses, branch_assignment)
        if result is not None:
            return result
    return None
