"""A CDCL (conflict-driven clause learning) SAT solver.

This is the workhorse behind the internal bitvector decision procedure.  The
implementation follows the standard MiniSat-style architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-like variable activities with exponential decay,
* Luby-sequence restarts,
* phase saving.

The solver works on the :class:`~repro.smt.sat.cnf.Cnf` representation
produced by the bit-blaster.  It favours clarity over raw speed, but is fast
enough to discharge the verification conditions arising from the case studies
in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cnf import Cnf

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


@dataclass
class SolverStats:
    """Counters reported by :meth:`CdclSolver.solve`."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    max_decision_level: int = 0


class CdclSolver:
    """A CDCL solver over a fixed CNF instance."""

    def __init__(self, cnf: Cnf) -> None:
        self._num_vars = cnf.num_vars
        self._clauses: List[List[int]] = []
        # values[v] ∈ {_TRUE, _FALSE, _UNASSIGNED}, indexed by variable.
        self._values = [_UNASSIGNED] * (self._num_vars + 1)
        self._levels = [0] * (self._num_vars + 1)
        self._reasons: List[Optional[int]] = [None] * (self._num_vars + 1)
        self._activity = [0.0] * (self._num_vars + 1)
        self._phase = [False] * (self._num_vars + 1)
        self._trail: List[int] = []
        self._trail_limits: List[int] = []
        self._watches: Dict[int, List[int]] = {}
        self._activity_increment = 1.0
        self._activity_decay = 0.95
        self.stats = SolverStats()
        self._ok = True
        for clause in cnf.clauses:
            self._add_clause(list(clause), learned=False)

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------

    def _add_clause(self, literals: List[int], learned: bool) -> Optional[int]:
        if not self._ok:
            return None
        if not learned:
            # Remove duplicates; drop tautologies.
            unique = []
            seen = set()
            for literal in literals:
                if -literal in seen:
                    return None
                if literal not in seen:
                    seen.add(literal)
                    unique.append(literal)
            literals = unique
        if not literals:
            self._ok = False
            return None
        if len(literals) == 1:
            if not self._enqueue(literals[0], None):
                self._ok = False
            return None
        index = len(self._clauses)
        self._clauses.append(literals)
        self._watch(literals[0], index)
        self._watch(literals[1], index)
        if learned:
            self.stats.learned_clauses += 1
        return index

    def _watch(self, literal: int, clause_index: int) -> None:
        self._watches.setdefault(-literal, []).append(clause_index)

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def _value(self, literal: int) -> int:
        value = self._values[abs(literal)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        current = self._value(literal)
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        variable = abs(literal)
        self._values[variable] = _TRUE if literal > 0 else _FALSE
        self._levels[variable] = self._decision_level()
        self._reasons[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Exhaustive unit propagation; returns a conflicting clause index or None."""
        queue_position = getattr(self, "_queue_position", 0)
        while queue_position < len(self._trail):
            literal = self._trail[queue_position]
            queue_position += 1
            self.stats.propagations += 1
            watch_list = self._watches.get(literal, [])
            new_watch_list = []
            i = 0
            while i < len(watch_list):
                clause_index = watch_list[i]
                i += 1
                clause = self._clauses[clause_index]
                # Ensure the falsified literal is at position 1.
                if clause[0] == -literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == _TRUE:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                found = False
                for position in range(2, len(clause)):
                    if self._value(clause[position]) != _FALSE:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watch(clause[1], clause_index)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(clause_index)
                if self._value(first) == _FALSE:
                    new_watch_list.extend(watch_list[i:])
                    self._watches[literal] = new_watch_list
                    self._queue_position = len(self._trail)
                    return clause_index
                self._enqueue(first, clause_index)
            self._watches[literal] = new_watch_list
        self._queue_position = queue_position
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._activity_increment *= 1e-100

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay

    def _analyze(self, conflict_index: int) -> Tuple[List[int], int]:
        """First-UIP analysis.  Returns the learned clause and backjump level."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = 0
        clause = self._clauses[conflict_index]
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for clause_literal in clause:
                if literal != 0 and clause_literal == literal:
                    continue
                variable = abs(clause_literal)
                if seen[variable] or self._levels[variable] == 0:
                    continue
                seen[variable] = True
                self._bump(variable)
                if self._levels[variable] == current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal on the trail to resolve on.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            resolve_literal = self._trail[trail_index]
            variable = abs(resolve_literal)
            seen[variable] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                learned[0] = -resolve_literal
                break
            reason = self._reasons[variable]
            clause = self._clauses[reason]
            literal = resolve_literal

        if len(learned) == 1:
            return learned, 0
        backjump = max(self._levels[abs(l)] for l in learned[1:])
        return learned, backjump

    def _backjump(self, level: int) -> None:
        while self._decision_level() > level:
            limit = self._trail_limits.pop()
            while len(self._trail) > limit:
                literal = self._trail.pop()
                variable = abs(literal)
                self._values[variable] = _UNASSIGNED
                self._reasons[variable] = None
        self._queue_position = min(getattr(self, "_queue_position", 0), len(self._trail))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        best_variable = None
        best_activity = -1.0
        for variable in range(1, self._num_vars + 1):
            if self._values[variable] == _UNASSIGNED and self._activity[variable] > best_activity:
                best_activity = self._activity[variable]
                best_variable = variable
        if best_variable is None:
            return None
        return best_variable if self._phase[best_variable] else -best_variable

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1 1 2 1 1 2 4 ... (``index`` starts at 1)."""
        if index < 1:
            index = 1
        while True:
            # Smallest k with index <= 2^k - 1.
            k = 1
            while (1 << k) - 1 < index:
                k += 1
            if index == (1 << k) - 1:
                return 1 << (k - 1)
            index -= (1 << (k - 1)) - 1

    def solve(self, max_conflicts: Optional[int] = None) -> Tuple[Optional[bool], Optional[Dict[int, bool]]]:
        """Solve the instance.

        Returns ``(True, model)``, ``(False, None)`` or ``(None, None)`` when
        ``max_conflicts`` is exhausted.
        """
        if not self._ok:
            return False, None
        self._queue_position = 0
        conflict = self._propagate()
        if conflict is not None:
            return False, None
        restart_count = 1
        restart_limit = 32 * self._luby(restart_count)
        conflicts_since_restart = 0
        total_conflicts = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    return False, None
                learned, backjump_level = self._analyze(conflict)
                self._backjump(backjump_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return False, None
                else:
                    index = self._add_clause(learned, learned=True)
                    if index is not None:
                        self._enqueue(learned[0], index)
                self._decay_activities()
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    return None, None
                if conflicts_since_restart >= restart_limit:
                    restart_count += 1
                    self.stats.restarts += 1
                    restart_limit = 32 * self._luby(restart_count)
                    conflicts_since_restart = 0
                    self._backjump(0)
                continue
            decision = self._decide()
            if decision is None:
                model = {
                    variable: self._values[variable] == _TRUE
                    for variable in range(1, self._num_vars + 1)
                }
                return True, model
            self.stats.decisions += 1
            self._trail_limits.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._decision_level()
            )
            self._enqueue(decision, None)


def cdcl_solve(cnf: Cnf, max_conflicts: Optional[int] = None) -> Tuple[Optional[bool], Optional[Dict[int, bool]]]:
    """Convenience wrapper: build a solver and run it."""
    return CdclSolver(cnf).solve(max_conflicts=max_conflicts)
