"""An incremental CDCL (conflict-driven clause learning) SAT solver.

This is the workhorse behind the internal bitvector decision procedure.  The
implementation follows the standard MiniSat-style architecture:

* two-watched-literal unit propagation, with a dedicated fast path for
  binary clauses (the other literal is implied immediately, no watch walk),
* first-UIP conflict analysis with clause learning, conflict-clause
  minimization (self-subsumption against reason clauses, the MiniSat
  ``ccmin`` step) and non-chronological backjumping,
* VSIDS-like variable activities with exponential decay (heap-ordered),
* Luby-sequence restarts,
* phase saving,
* **learned-clause database management** in the Glucose tradition: every
  learned clause carries its LBD ("glue": the number of distinct decision
  levels among its literals, Audemard & Simon), and when the live learned
  set outgrows a geometrically growing budget the worst half — highest LBD
  first, least active as the tie-break — is deleted.  Binary clauses, glue
  clauses (LBD ≤ 2) and clauses currently locked as the reason of an
  assigned variable are never deleted, so reductions are sound at any point
  of the search and across incremental :meth:`CdclSolver.solve` calls,
* **incremental solving under assumptions**: clauses can be added between
  :meth:`CdclSolver.solve` calls, and each call may pass a list of assumption
  literals that are seeded as the first decisions.  Learned clauses, variable
  activities and saved phases are all retained across calls, so a sequence of
  related queries shares its search effort.  When a solve under assumptions
  returns unsat, :attr:`CdclSolver.last_conflict` holds a subset of the
  assumptions that is already sufficient for the conflict (the MiniSat
  "final conflict" analysis).

Clauses live in an **arena** of stable ids (:attr:`CdclSolver._arena`):
watch lists and variable reasons store arena ids, deletion tombstones a slot
without disturbing any other id, and the occasional compaction that squeezes
the tombstones out rebuilds every id-bearing structure (watches, reasons) in
one pass.  Deleting a *learned* clause is always sound — learned clauses are
implied by the problem clauses, so dropping one can only make the solver
rediscover it.

Learned clauses are sound across calls because conflict analysis only resolves
over clauses in the database — an assumption enters a learned clause only as a
regular decision literal, so the learned clause is implied by the problem
clauses alone and remains valid for every later assumption set.

The solver works on the :class:`~repro.smt.sat.cnf.Cnf` representation
produced by the bit-blaster.  It favours clarity over raw speed, but is fast
enough to discharge the verification conditions arising from the case studies
in this repository.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cnf import Cnf

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

#: Default cap on the live learned-clause set (see ``clause_db_max``); 0
#: disables reduction entirely and keeps every learned clause forever.
DEFAULT_CLAUSE_DB_MAX = 4000

#: Learned clauses with an LBD at or below this are "glue" and never deleted.
GLUE_LBD = 2

#: The reduction budget starts at this fraction of ``clause_db_max`` ...
_BUDGET_START_DIVISOR = 4
#: ... and grows by this factor after every reduction, up to the cap.
_BUDGET_GROWTH = 1.5


@dataclass
class SolverStats:
    """Counters reported by :meth:`CdclSolver.solve` (cumulative across calls).

    ``propagations`` counts **implications enqueued** — assignments forced by
    a clause during unit propagation — not trail positions scanned (earlier
    versions conflated the two).  ``minimized_literals`` counts literals
    removed from learned clauses by conflict-clause minimization;
    ``db_reductions``/``clauses_deleted`` account for learned-database
    reductions, and ``lbd_sum`` accumulates the LBD of every learned clause
    (so :attr:`avg_lbd` is the running mean glue).
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    solve_calls: int = 0
    db_reductions: int = 0
    clauses_deleted: int = 0
    minimized_literals: int = 0
    lbd_sum: int = 0

    @property
    def avg_lbd(self) -> float:
        """Mean LBD over every clause learned so far (0.0 before the first)."""
        if not self.learned_clauses:
            return 0.0
        return self.lbd_sum / self.learned_clauses


class _Clause:
    """One arena entry: literals plus the learned-clause metadata."""

    __slots__ = ("literals", "learned", "lbd", "activity")

    def __init__(self, literals: List[int], learned: bool = False, lbd: int = 0) -> None:
        self.literals = literals
        self.learned = learned
        self.lbd = lbd
        self.activity = 0.0


class CdclSolver:
    """A CDCL solver over a growable CNF instance.

    ``CdclSolver(cnf)`` loads an initial instance; ``CdclSolver()`` starts
    empty.  :meth:`add_clause` appends problem clauses at any point between
    solve calls, and :meth:`ensure_num_vars` grows the variable range (both
    are implicit for clauses mentioning new variables).

    ``clause_db_max`` caps the live learned-clause set: once more than a
    geometrically growing budget (starting at a quarter of the cap) of
    non-binary learned clauses is live, a reduction deletes the highest-LBD,
    least-active half of the deletable ones.  ``0`` disables reduction and
    keeps every learned clause, the pre-database behaviour.
    """

    def __init__(
        self,
        cnf: Optional[Cnf] = None,
        clause_db_max: int = DEFAULT_CLAUSE_DB_MAX,
    ) -> None:
        if clause_db_max < 0:
            raise ValueError(f"clause_db_max must be >= 0, got {clause_db_max}")
        self._num_vars = 0
        #: Stable-id clause arena; a deleted clause leaves a ``None`` slot so
        #: no other id moves.  Compaction (see :meth:`_compact_arena`) renames
        #: the survivors and rebuilds watches and reasons to match.
        self._arena: List[Optional[_Clause]] = []
        # values[v] ∈ {_TRUE, _FALSE, _UNASSIGNED}, indexed by variable.
        self._values: List[int] = [_UNASSIGNED]
        self._levels: List[int] = [0]
        self._reasons: List[Optional[int]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_limits: List[int] = []
        # Watches for clauses of three or more literals: falsified watched
        # literal -> arena ids.  Binary clauses use the dedicated map below:
        # falsified literal -> (implied literal, arena id) pairs.
        self._watches: Dict[int, List[int]] = {}
        self._bin_watches: Dict[int, List[Tuple[int, int]]] = {}
        self._order_heap: List[Tuple[float, int]] = []
        self._activity_increment = 1.0
        self._activity_decay = 0.95
        self._clause_activity_increment = 1.0
        self._clause_activity_decay = 0.999
        self._queue_position = 0
        # (decision-var set, local activity heap) during a restricted solve.
        self._restricted: Optional[Tuple[set, List[Tuple[float, int]]]] = None
        self.clause_db_max = clause_db_max
        self._learned_live = 0  # live learned clauses of length >= 3
        self._deleted_slots = 0
        self._learned_budget = (
            max(256, clause_db_max // _BUDGET_START_DIVISOR) if clause_db_max else 0
        )
        self.stats = SolverStats()
        self._ok = True
        #: Optional callback invoked as ``on_learn(literals, lbd)`` with a
        #: copy of every learned clause (including unit clauses, LBD 1) the
        #: moment it is learned.  The incremental session uses it to export
        #: short clauses — LBD attached so importers can triage — to other
        #: workers.
        self.on_learn = None
        #: After an unsat :meth:`solve` under assumptions: a subset of the
        #: assumption literals whose conjunction is already contradictory.
        #: Empty when the clause database is unsat regardless of assumptions.
        self.last_conflict: List[int] = []
        if cnf is not None:
            self.ensure_num_vars(cnf.num_vars)
            for clause in cnf.clauses:
                self.add_clause(clause)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def ensure_num_vars(self, num_vars: int) -> None:
        """Grow the variable range to at least ``num_vars``."""
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._values.append(_UNASSIGNED)
            self._levels.append(0)
            self._reasons.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            heapq.heappush(self._order_heap, (0.0, self._num_vars))

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------

    @property
    def learned_live(self) -> int:
        """Live learned clauses of length ≥ 3 (the reduction's working set)."""
        return self._learned_live

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a problem clause; callable between :meth:`solve` calls.

        The solver first retracts to decision level 0, so root-level facts are
        the only assignments in force; the clause is then simplified against
        them (satisfied clauses dropped, permanently false literals removed).
        """
        if not self._ok:
            return
        self._backjump(0)
        unique: List[int] = []
        seen = set()
        for literal in literals:
            if -literal in seen:
                return  # tautology
            if literal in seen:
                continue
            seen.add(literal)
            self.ensure_num_vars(abs(literal))
            value = self._value(literal)
            if value == _TRUE:
                return  # satisfied by a root-level fact, forever
            if value == _FALSE:
                continue  # permanently false literal
            unique.append(literal)
        if not unique:
            self._ok = False
            return
        if len(unique) == 1:
            if not self._enqueue(unique[0], None):
                self._ok = False
            return
        self._store_clause(_Clause(unique))

    def add_learned_clause(self, literals: Iterable[int], lbd: int) -> None:
        """Add an *implied* clause to the learned database (e.g. an import).

        Same root-level simplification as :meth:`add_clause`, but the clause
        is stored as learned with the supplied LBD, so it competes for
        retention like a locally learned clause: glue imports are kept, junk
        imports are the first out at the next reduction.  Callers must only
        pass clauses implied by the problem clauses (the clause channel's
        translation guarantees this), or deleting them would be unsound to
        begin with.
        """
        if not self._ok:
            return
        self._backjump(0)
        unique: List[int] = []
        seen = set()
        for literal in literals:
            if -literal in seen:
                return  # tautology
            if literal in seen:
                continue
            seen.add(literal)
            self.ensure_num_vars(abs(literal))
            value = self._value(literal)
            if value == _TRUE:
                return
            if value == _FALSE:
                continue
            unique.append(literal)
        if not unique:
            self._ok = False
            return
        if len(unique) == 1:
            if not self._enqueue(unique[0], None):
                self._ok = False
            return
        self._store_clause(_Clause(unique, learned=True, lbd=max(1, lbd)))

    def _store_clause(self, clause: _Clause) -> int:
        """Place a clause in the arena and register its watches."""
        index = len(self._arena)
        self._arena.append(clause)
        literals = clause.literals
        if len(literals) == 2:
            self._bin_watches.setdefault(-literals[0], []).append((literals[1], index))
            self._bin_watches.setdefault(-literals[1], []).append((literals[0], index))
        else:
            self._watch(literals[0], index)
            self._watch(literals[1], index)
            if clause.learned:
                self._learned_live += 1
        return index

    def _add_learned(self, literals: List[int], lbd: int) -> int:
        if len(literals) < 2:
            raise ValueError("learned clauses with < 2 literals are enqueued directly")
        # Watch invariant for an asserting clause learned at a backjump:
        # position 0 is the asserting literal and position 1 must be a
        # falsified literal of the *highest* remaining decision level —
        # watching an arbitrary literal instead breaks the "a watch only
        # falsifies when the clause is visited" invariant after backjumping
        # and silently misses unit implications.
        best = 1
        for position in range(2, len(literals)):
            if self._levels[abs(literals[position])] > self._levels[abs(literals[best])]:
                best = position
        if best != 1:
            literals[1], literals[best] = literals[best], literals[1]
        index = self._store_clause(_Clause(literals, learned=True, lbd=lbd))
        self.stats.learned_clauses += 1
        self.stats.lbd_sum += lbd
        return index

    def _watch(self, literal: int, clause_index: int) -> None:
        self._watches.setdefault(-literal, []).append(clause_index)

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learned:
            return  # only learned activities drive reduction (and rescale)
        clause.activity += self._clause_activity_increment
        if clause.activity > 1e20:
            for entry in self._arena:
                if entry is not None and entry.learned:
                    entry.activity *= 1e-20
            self._clause_activity_increment *= 1e-20

    def _locked_clauses(self) -> set:
        """Arena ids currently serving as the reason of an assigned variable."""
        locked = set()
        for literal in self._trail:
            reason = self._reasons[abs(literal)]
            if reason is not None:
                locked.add(reason)
        return locked

    def reduce_db(self) -> int:
        """Delete the worst half of the deletable learned clauses.

        Deletable = learned, length ≥ 3, LBD above :data:`GLUE_LBD`, and not
        locked as the reason of a currently assigned variable.  The worst
        half is highest LBD first, least recently active as the tie-break.
        Safe to call at any decision level: deletion of an implied clause is
        always sound, and locked clauses (the only ones the trail points at)
        are kept.  Returns the number of clauses deleted.
        """
        locked = self._locked_clauses()
        candidates = [
            (clause.lbd, clause.activity, index)
            for index, clause in enumerate(self._arena)
            if clause is not None
            and clause.learned
            and len(clause.literals) > 2
            and clause.lbd > GLUE_LBD
            and index not in locked
        ]
        if not candidates:
            return 0
        # Highest LBD first; among equals the least active goes first.
        candidates.sort(key=lambda entry: (-entry[0], entry[1]))
        doomed = candidates[: (len(candidates) + 1) // 2]
        for _, _, index in doomed:
            self._arena[index] = None
            self._deleted_slots += 1
            self._learned_live -= 1
        self.stats.db_reductions += 1
        self.stats.clauses_deleted += len(doomed)
        self._rebuild_watches()
        if self._deleted_slots * 2 > len(self._arena) > 1024:
            self._compact_arena()
        return len(doomed)

    def _rebuild_watches(self) -> None:
        """Recompute the non-binary watch lists from the live arena.

        Positions 0 and 1 of every live clause are its watched literals (the
        propagation loop maintains that as it swaps), so one pass over the
        arena reproduces the watch state exactly, minus the deleted ids.
        Binary watches never contain deleted clauses and are left alone.
        """
        watches: Dict[int, List[int]] = {}
        for index, clause in enumerate(self._arena):
            if clause is None or len(clause.literals) == 2:
                continue
            literals = clause.literals
            watches.setdefault(-literals[0], []).append(index)
            watches.setdefault(-literals[1], []).append(index)
        self._watches = watches

    def _compact_arena(self) -> None:
        """Squeeze tombstoned slots out of the arena, renaming survivors.

        Every id-bearing structure — the two watch maps and the per-variable
        reasons — is rebuilt against the new ids, so clauses referenced by
        ``_reasons`` and the watch lists survive compaction with their
        identity intact.
        """
        remap: Dict[int, int] = {}
        arena: List[Optional[_Clause]] = []
        for index, clause in enumerate(self._arena):
            if clause is None:
                continue
            remap[index] = len(arena)
            arena.append(clause)
        self._arena = arena
        self._deleted_slots = 0
        self._reasons = [
            None if reason is None else remap[reason] for reason in self._reasons
        ]
        self._rebuild_watches()
        self._bin_watches = {
            literal: [(other, remap[index]) for other, index in entries]
            for literal, entries in self._bin_watches.items()
        }

    def _maybe_reduce_db(self) -> None:
        if self.clause_db_max and self._learned_live > self._learned_budget:
            self.reduce_db()
            self._learned_budget = min(
                self.clause_db_max, int(self._learned_budget * _BUDGET_GROWTH)
            )

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def _value(self, literal: int) -> int:
        value = self._values[abs(literal)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        current = self._value(literal)
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        variable = abs(literal)
        self._values[variable] = _TRUE if literal > 0 else _FALSE
        self._levels[variable] = self._decision_level()
        self._reasons[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)
        if reason is not None:
            # An implication actually enqueued — the propagation count the
            # reports care about (not trail positions scanned).
            self.stats.propagations += 1
        return True

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Exhaustive unit propagation; returns a conflicting arena id or None."""
        queue_position = self._queue_position
        arena = self._arena
        while queue_position < len(self._trail):
            literal = self._trail[queue_position]
            queue_position += 1
            # Binary fast path: the other literal is implied outright, no
            # watch relocation to attempt and no clause walk.
            binaries = self._bin_watches.get(literal)
            if binaries:
                for other, clause_index in binaries:
                    value = self._value(other)
                    if value == _FALSE:
                        self._queue_position = len(self._trail)
                        return clause_index
                    if value == _UNASSIGNED:
                        self._enqueue(other, clause_index)
            watch_list = self._watches.get(literal, [])
            new_watch_list = []
            i = 0
            while i < len(watch_list):
                clause_index = watch_list[i]
                i += 1
                entry = arena[clause_index]
                if entry is None:
                    continue  # deleted since this watch was recorded
                clause = entry.literals
                # Ensure the falsified literal is at position 1.
                if clause[0] == -literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == _TRUE:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                found = False
                for position in range(2, len(clause)):
                    if self._value(clause[position]) != _FALSE:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watch(clause[1], clause_index)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(clause_index)
                if self._value(first) == _FALSE:
                    new_watch_list.extend(watch_list[i:])
                    self._watches[literal] = new_watch_list
                    self._queue_position = len(self._trail)
                    return clause_index
                self._enqueue(first, clause_index)
            self._watches[literal] = new_watch_list
        self._queue_position = queue_position
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._activity_increment *= 1e-100
            # The heaps still hold pre-rescale priorities, which would
            # dominate every post-rescale push and corrupt the decision
            # order; rebuild them against the rescaled activities.
            self._rebuild_heaps()
        heapq.heappush(self._order_heap, (-self._activity[variable], variable))
        if self._restricted is not None and variable in self._restricted[0]:
            heapq.heappush(self._restricted[1], (-self._activity[variable], variable))

    def _rebuild_heaps(self) -> None:
        """Rebuild the order heap (and any restricted heap) from scratch.

        Every unassigned variable gets exactly one fresh entry, preserving
        the lazy-heap invariant that an unassigned variable is always
        reachable by popping.
        """
        self._order_heap = [
            (-self._activity[variable], variable)
            for variable in range(1, self._num_vars + 1)
            if self._values[variable] == _UNASSIGNED
        ]
        heapq.heapify(self._order_heap)
        if self._restricted is not None:
            decision_set = self._restricted[0]
            local_heap = [
                (-self._activity[variable], variable)
                for variable in decision_set
                if variable <= self._num_vars
                and self._values[variable] == _UNASSIGNED
            ]
            heapq.heapify(local_heap)
            self._restricted = (decision_set, local_heap)

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay
        self._clause_activity_increment /= self._clause_activity_decay

    def _analyze(self, conflict_index: int) -> Tuple[List[int], int, int]:
        """First-UIP analysis with clause minimization.

        Returns ``(learned clause, backjump level, LBD)``.  The learned
        clause is minimized by self-subsumption against reason clauses (the
        MiniSat ``ccmin`` step): a literal whose negation is implied by other
        clause literals through the implication graph is redundant and
        dropped, shrinking what is stored, propagated and exported.
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = 0
        entry = self._arena[conflict_index]
        self._bump_clause(entry)
        clause = entry.literals
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for clause_literal in clause:
                if literal != 0 and clause_literal == literal:
                    continue
                variable = abs(clause_literal)
                if seen[variable] or self._levels[variable] == 0:
                    continue
                seen[variable] = True
                self._bump(variable)
                if self._levels[variable] == current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal on the trail to resolve on.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            resolve_literal = self._trail[trail_index]
            variable = abs(resolve_literal)
            seen[variable] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                learned[0] = -resolve_literal
                break
            reason = self._reasons[variable]
            entry = self._arena[reason]
            self._bump_clause(entry)
            clause = entry.literals
            literal = resolve_literal

        learned = self._minimize(learned, seen)
        lbd = len({self._levels[abs(l)] for l in learned})
        if len(learned) == 1:
            return learned, 0, lbd
        backjump = max(self._levels[abs(l)] for l in learned[1:])
        return learned, backjump, lbd

    def _minimize(self, learned: List[int], seen: List[bool]) -> List[int]:
        """Drop reason-implied literals from a freshly learned clause.

        ``seen`` marks exactly the variables of ``learned[1:]`` (the analysis
        loop leaves it in that state).  A literal is redundant when its
        negation is implied by the *other* clause literals: every path of its
        reason graph terminates in level-0 facts or in variables already in
        the clause.  The check is the standard abstract-level-pruned DFS.
        """
        if len(learned) <= 2:
            return learned
        abstract_levels = 0
        for clause_literal in learned[1:]:
            abstract_levels |= 1 << (self._levels[abs(clause_literal)] & 31)
        kept = [learned[0]]
        for clause_literal in learned[1:]:
            if self._reasons[abs(clause_literal)] is None or not self._redundant(
                clause_literal, abstract_levels, seen
            ):
                kept.append(clause_literal)
        self.stats.minimized_literals += len(learned) - len(kept)
        return kept

    def _redundant(self, literal: int, abstract_levels: int, seen: List[bool]) -> bool:
        """Is ``literal`` implied by the rest of the clause via reasons?"""
        stack = [literal]
        marked: List[int] = []
        while stack:
            top = stack.pop()
            reason = self._reasons[abs(top)]
            clause = self._arena[reason].literals
            for clause_literal in clause:
                variable = abs(clause_literal)
                if variable == abs(top) or seen[variable] or self._levels[variable] == 0:
                    continue
                if (
                    self._reasons[variable] is not None
                    and (1 << (self._levels[variable] & 31)) & abstract_levels
                ):
                    seen[variable] = True
                    marked.append(variable)
                    stack.append(clause_literal)
                else:
                    # A decision, or a level outside the clause: not
                    # redundant.  Undo the marks of this failed probe only —
                    # the clause's own marks must survive for later probes.
                    for undo in marked:
                        seen[undo] = False
                    return False
        return True

    def _analyze_final(self, literal: int) -> List[int]:
        """``literal`` is an assumption found false: which assumptions caused it?

        Walks the implication graph from ``¬literal`` back to the decisions of
        the current (assumption-only) prefix.  Returns a subset of the
        assumption literals, including ``literal`` itself, whose conjunction
        is already contradictory with the clause database.
        """
        failed = [literal]
        if self._decision_level() == 0:
            return failed
        seen = [False] * (self._num_vars + 1)
        seen[abs(literal)] = True
        for index in range(len(self._trail) - 1, self._trail_limits[0] - 1, -1):
            trail_literal = self._trail[index]
            variable = abs(trail_literal)
            if not seen[variable]:
                continue
            reason = self._reasons[variable]
            if reason is None:
                # A decision inside the assumption prefix is an assumption.
                failed.append(trail_literal)
            else:
                for clause_literal in self._arena[reason].literals:
                    other = abs(clause_literal)
                    if other != variable and self._levels[other] > 0:
                        seen[other] = True
            seen[variable] = False
        return failed

    def _backjump(self, level: int) -> None:
        restricted = self._restricted
        while self._decision_level() > level:
            limit = self._trail_limits.pop()
            while len(self._trail) > limit:
                literal = self._trail.pop()
                variable = abs(literal)
                self._values[variable] = _UNASSIGNED
                self._reasons[variable] = None
                heapq.heappush(
                    self._order_heap, (-self._activity[variable], variable)
                )
                if restricted is not None and variable in restricted[0]:
                    heapq.heappush(
                        restricted[1], (-self._activity[variable], variable)
                    )
        self._queue_position = min(self._queue_position, len(self._trail))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        # Lazy activity-ordered heap: entries may carry stale priorities (the
        # heap is not rebuilt on decay/bump), but every unassigned variable
        # always has at least one entry — pushed on creation, on unassignment
        # and on every bump — so popping until an unassigned variable appears
        # is a sound approximation of exact VSIDS order.  A restricted solve
        # draws from its own heap over the decision-variable subset instead.
        if self._restricted is not None:
            local = self._restricted[1]
            while local:
                _, variable = heapq.heappop(local)
                if self._values[variable] == _UNASSIGNED:
                    return variable if self._phase[variable] else -variable
            return None
        while self._order_heap:
            _, variable = heapq.heappop(self._order_heap)
            if self._values[variable] == _UNASSIGNED:
                return variable if self._phase[variable] else -variable
        return None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1 1 2 1 1 2 4 ... (``index`` starts at 1)."""
        if index < 1:
            index = 1
        while True:
            # Smallest k with index <= 2^k - 1.
            k = 1
            while (1 << k) - 1 < index:
                k += 1
            if index == (1 << k) - 1:
                return 1 << (k - 1)
            index -= (1 << (k - 1)) - 1

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        assumptions: Optional[Sequence[int]] = None,
        stop=None,
    ) -> Tuple[Optional[bool], Optional[Dict[int, bool]]]:
        """Solve the current instance, optionally under ``assumptions``.

        Returns ``(True, model)``, ``(False, None)`` or ``(None, None)`` when
        ``max_conflicts`` is exhausted or ``stop`` (a ``threading.Event``) is
        set by another thread.  Assumption literals are decided (in order)
        before any free decision; on an unsat answer, :attr:`last_conflict`
        names the responsible assumption subset.  The solver object stays
        usable afterwards: more clauses may be added and further solve calls
        reuse everything learned so far.
        """
        sat, values = self.solve_values(
            max_conflicts=max_conflicts, assumptions=assumptions, stop=stop
        )
        if not sat:
            return sat, None
        model = {
            variable: values[variable] == _TRUE
            for variable in range(1, self._num_vars + 1)
        }
        return True, model

    def solve_values(
        self,
        max_conflicts: Optional[int] = None,
        assumptions: Optional[Sequence[int]] = None,
        decision_vars: Optional[Iterable[int]] = None,
        stop=None,
    ) -> Tuple[Optional[bool], Optional[List[int]]]:
        """Like :meth:`solve`, but a sat answer returns the raw value array.

        ``values[v]`` is ``1`` (true) or ``-1`` (false) for variable ``v``
        (``0`` for variables left unassigned by a restricted solve; index 0
        unused).  Incremental callers with thousands of session variables
        decode only the bits they care about, so they skip the full
        model-dictionary construction of :meth:`solve`.

        ``decision_vars`` restricts free decisions to the given variables.
        This is only sound when every clause involving an excluded variable is
        *definitional* (Tseitin gates, guard clauses): then a propagation
        fixpoint with every decision variable assigned always extends to a
        total model — gate outputs are functions of their inputs and unused
        guards are satisfiable by deactivation — so "sat" answers remain
        genuine while the search never wanders into foreign subformulas.  The
        incremental session is exactly that shape; general callers must leave
        it ``None``.
        """
        assumptions = list(assumptions) if assumptions else []
        self.last_conflict = []
        self.stats.solve_calls += 1
        if not self._ok:
            return False, None
        for literal in assumptions:
            if literal == 0:
                raise ValueError("0 is not a valid assumption literal")
            self.ensure_num_vars(abs(literal))
        self._backjump(0)
        if decision_vars is not None:
            decision_set = set(decision_vars)
            local_heap = [
                (-self._activity[variable], variable)
                for variable in decision_set
                if variable <= self._num_vars
                and self._values[variable] == _UNASSIGNED
            ]
            heapq.heapify(local_heap)
            self._restricted = (decision_set, local_heap)
        try:
            return self._search(max_conflicts, assumptions, stop)
        finally:
            self._restricted = None

    def _search(
        self, max_conflicts: Optional[int], assumptions: List[int], stop=None
    ) -> Tuple[Optional[bool], Optional[List[int]]]:
        conflict = self._propagate()
        if conflict is not None:
            # A root-level conflict dooms every later call too.
            self._ok = False
            return False, None
        restart_count = 1
        restart_limit = 32 * self._luby(restart_count)
        conflicts_since_restart = 0
        total_conflicts = 0

        while True:
            if stop is not None and stop.is_set():
                # Cooperative cancellation (portfolio mode): abandon the
                # search between propagations, keeping the solver reusable.
                self._backjump(0)
                return None, None
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return False, None
                learned, backjump_level, lbd = self._analyze(conflict)
                self._backjump(backjump_level)
                if self.on_learn is not None:
                    # Hand out a copy: watched-literal bookkeeping reorders
                    # the stored clause in place as the search continues.
                    self.on_learn(list(learned), lbd)
                if len(learned) == 1:
                    self.stats.learned_clauses += 1
                    self.stats.lbd_sum += lbd
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return False, None
                else:
                    index = self._add_learned(learned, lbd)
                    self._enqueue(learned[0], index)
                self._decay_activities()
                self._maybe_reduce_db()
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    self._backjump(0)
                    return None, None
                if conflicts_since_restart >= restart_limit:
                    restart_count += 1
                    self.stats.restarts += 1
                    restart_limit = 32 * self._luby(restart_count)
                    conflicts_since_restart = 0
                    self._backjump(0)
                continue
            decision: Optional[int] = None
            while self._decision_level() < len(assumptions):
                assumption = assumptions[self._decision_level()]
                value = self._value(assumption)
                if value == _TRUE:
                    # Already implied: open a vacuous level to keep the
                    # level ↔ assumption-index correspondence.
                    self._trail_limits.append(len(self._trail))
                    continue
                if value == _FALSE:
                    self.last_conflict = self._analyze_final(assumption)
                    self._backjump(0)
                    return False, None
                decision = assumption
                break
            if decision is None:
                decision = self._decide()
                if decision is None:
                    values = list(self._values)
                    self._backjump(0)
                    return True, values
            self.stats.decisions += 1
            self._trail_limits.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._decision_level()
            )
            self._enqueue(decision, None)


def cdcl_solve(
    cnf: Cnf,
    max_conflicts: Optional[int] = None,
    assumptions: Optional[Sequence[int]] = None,
    stop=None,
    clause_db_max: int = DEFAULT_CLAUSE_DB_MAX,
) -> Tuple[Optional[bool], Optional[Dict[int, bool]]]:
    """Convenience wrapper: build a solver and run it once."""
    return CdclSolver(cnf, clause_db_max=clause_db_max).solve(
        max_conflicts=max_conflicts, assumptions=assumptions, stop=stop
    )
