"""Mutation-based scenario synthesis.

The subsystem turns a seed into an unbounded supply of equivalence-checking
workloads with known ground truth:

* :mod:`repro.synth.generator` draws random well-typed select-cascade
  automata (seeded, width-bounded, validated through ⊢A);
* :mod:`repro.synth.transforms` rewrites them — equivalence-preserving
  rewrites for ``equivalent`` pairs, verdict-breaking mutations (confirmed
  by a concrete witness packet) for ``not_equivalent`` pairs;
* :mod:`repro.synth.pairs` packages one seed into one self-labeling
  :class:`SynthesizedPair`;
* :mod:`repro.synth.strategies` exposes the generator to Hypothesis
  (imported lazily — everything else works without Hypothesis installed).

Consumers: the ``synthetic`` family of the scenario registry, the
``repro synth`` CLI subcommand, the certificate-replay and property test
suites, and ``benchmarks/bench_synth_churn.py``.
"""

from .generator import (
    CAMPAIGN_FULL_CONFIG,
    CAMPAIGN_MINI_CONFIG,
    FULL_CONFIG,
    MINI_CONFIG,
    GeneratorConfig,
    SynthesisError,
    generate_automaton,
)
from .pairs import (
    EQUIVALENT,
    NOT_EQUIVALENT,
    SynthesizedPair,
    campaign_config_for_size,
    config_for_size,
    synthesize_batch,
    synthesize_pair,
)
from .transforms import (
    BREAKING_MUTATIONS,
    EQUIVALENCE_TRANSFORMS,
    TransformStep,
    apply_breaking_mutation,
    apply_equivalence_chain,
    find_witness,
    path_packets,
    replay_chain,
)

__all__ = [
    "BREAKING_MUTATIONS",
    "CAMPAIGN_FULL_CONFIG",
    "CAMPAIGN_MINI_CONFIG",
    "EQUIVALENCE_TRANSFORMS",
    "EQUIVALENT",
    "FULL_CONFIG",
    "GeneratorConfig",
    "MINI_CONFIG",
    "NOT_EQUIVALENT",
    "SynthesisError",
    "SynthesizedPair",
    "TransformStep",
    "apply_breaking_mutation",
    "apply_equivalence_chain",
    "campaign_config_for_size",
    "config_for_size",
    "find_witness",
    "generate_automaton",
    "path_packets",
    "replay_chain",
    "synthesize_batch",
    "synthesize_pair",
]
