"""Seeded generation of random well-typed P4 automata.

The generator draws *select cascades*: acyclic automata whose states appear
in a fixed topological order, each extracting one or two freshly declared
headers and then either jumping unconditionally or branching on the value of
the **last header extracted in that state**.  The shape is deliberately
restricted — it is the shape of every real parser in the scenario catalog —
and it buys three invariants the rest of :mod:`repro.synth` leans on:

* **well-typedness by construction** (and double-checked through
  :func:`repro.p4a.typing.check_automaton` before anything is returned);
* **store independence**: every header examined by a ``select`` is extracted
  in the same state, so acceptance depends only on the packet.  A concrete
  witness found under all-zero initial stores therefore refutes language
  equivalence outright;
* **direct packet control**: the bits feeding every branch are a known slice
  of the bits consumed by that state, which lets
  :func:`repro.synth.transforms.path_packets` enumerate one packet per
  control path without a solver.

Every draw is driven by a caller-supplied :class:`random.Random`, so a seed
fully determines the automaton; :class:`GeneratorConfig` bounds the number of
states, the per-header widths and the total extracted bits.

The campaign configurations (:data:`CAMPAIGN_MINI_CONFIG`,
:data:`CAMPAIGN_FULL_CONFIG`) stretch the envelope past pure acyclic
cascades: bounded self-loops (terminating by packet exhaustion, since every
pass extracts at least one bit), slice-lookahead guards, and store-carried
guards that branch on a header extracted in an earlier state.  Store guards
draw only from headers **definitely assigned on every path** into the
branching state (tracked by a forward dataflow over the in-construction
graph, whose state-to-state edges all point forward): a guard on a
maybe-uninitialized header would make acceptance depend on the initial
store, which the concrete semantics zero-fills but the symbolic checker
rightly treats as unconstrained — the label and the verdict would diverge
on automata that are simply outside the paper's header-initialization
discipline.  All three knobs are off by default and gated behind
``probability > 0`` checks, so the rng draw sequence — and with it every
pinned seed — is unchanged for the classic configurations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..p4a.bitvec import Bits
from ..p4a.syntax import (
    ACCEPT,
    REJECT,
    Assign,
    BVLit,
    ExactPattern,
    Expr,
    Extract,
    Goto,
    HeaderRef,
    Op,
    P4Automaton,
    Select,
    SelectCase,
    Slice,
    State,
    Transition,
    WILDCARD,
)
from ..p4a.typing import check_automaton


class SynthesisError(RuntimeError):
    """Raised when synthesis cannot satisfy its own invariants."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape bounds for the generator.

    ``max_total_bits`` bounds the sum of all declared header widths — the
    knob that keeps symbolic checks of synthesized pairs in the
    milliseconds-to-seconds range.
    """

    min_states: int = 2
    max_states: int = 5
    min_header_bits: int = 2
    max_header_bits: int = 4
    #: Soft cap on the sum of declared header widths: scratch extracts stop
    #: once it is reached and goto headers shrink to fit; a select header may
    #: overshoot by at most its own (small) width when case counts force it.
    max_total_bits: int = 20
    max_cases: int = 3
    wildcard_probability: float = 0.5
    second_extract_probability: float = 0.25
    assign_probability: float = 0.25
    goto_probability: float = 0.3
    #: Probability that one surplus select case becomes a bounded self-loop
    #: back to its own state (the loop body extracts >= 1 bit, so packet
    #: exhaustion bounds every run).  The rng is only consulted when nonzero,
    #: keeping the draw sequence — and therefore every existing seed —
    #: bit-identical under the default configurations.
    loop_probability: float = 0.0
    #: Probability that a select examines only a slice of its header
    #: (bounded lookahead on a sub-field instead of the whole value).
    lookahead_probability: float = 0.0
    #: Probability that a select branches on a header extracted by an
    #: *earlier* state — a store-carried guard, the shape that breaks the
    #: classic cascade's store-independence invariant.
    store_guard_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.min_states < 1 or self.max_states < self.min_states:
            raise SynthesisError("invalid state bounds")
        if self.min_header_bits < 1 or self.max_header_bits < self.min_header_bits:
            raise SynthesisError("invalid header-width bounds")
        if self.max_cases < 1:
            raise SynthesisError("max_cases must be >= 1")
        for knob in ("loop_probability", "lookahead_probability",
                     "store_guard_probability"):
            if not 0.0 <= getattr(self, knob) <= 1.0:
                raise SynthesisError(f"{knob} must be a probability")


#: Default configuration: mini-sized automata (seconds with the pure-Python
#: solver even across hundreds of pairs).
MINI_CONFIG = GeneratorConfig()

#: Larger automata for the ``full``-tagged synthetic scenarios.
FULL_CONFIG = GeneratorConfig(
    min_states=5,
    max_states=8,
    min_header_bits=2,
    max_header_bits=6,
    max_total_bits=40,
    max_cases=4,
)

#: Campaign envelopes: the mini/full shape bounds plus the extended guard
#: repertoire (bounded self-loops, slice lookahead, store-carried guards).
#: Kept separate from :data:`MINI_CONFIG`/:data:`FULL_CONFIG` so the pinned
#: synthetic scenarios never change shape under the same seed.
CAMPAIGN_MINI_CONFIG = replace(
    MINI_CONFIG,
    loop_probability=0.2,
    lookahead_probability=0.25,
    store_guard_probability=0.15,
)

CAMPAIGN_FULL_CONFIG = replace(
    FULL_CONFIG,
    loop_probability=0.2,
    lookahead_probability=0.25,
    store_guard_probability=0.15,
)


def _select_width(
    rng: random.Random, config: GeneratorConfig, required: int, budget: int
) -> int:
    """A width for a branched-on header: within budget where possible, but
    always with room for ``required`` exact cases, one spare value (guard
    flips need a fresh value) and the implicit-reject fall-through."""
    minimum = max(2, (required + 1).bit_length())
    drawn = rng.randint(config.min_header_bits, config.max_header_bits)
    return max(minimum, min(drawn, budget))


def generate_automaton(
    rng: random.Random,
    config: GeneratorConfig = MINI_CONFIG,
    name: str = "synth",
) -> Tuple[P4Automaton, str]:
    """Draw one well-typed select cascade; returns ``(automaton, start)``.

    Guarantees beyond well-typedness: state ``q0`` is the start, every state
    is reachable from it, every state can reach ``accept``, every ``select``
    has pairwise distinct exact patterns, and at most ``2**width - 2`` cases
    ever occupy a ``width``-bit select (so a fresh non-matching value always
    exists).  Under the default knobs every select examines the header
    extracted last in its own state; the campaign knobs additionally draw
    bounded self-loops, slice-lookahead guards and store-carried guards
    (branching on a header extracted by an earlier state).  Every extension
    still extracts at least one bit per state, so runs terminate by packet
    exhaustion and :func:`repro.p4a.typing.check_automaton` passes.
    """
    num_states = rng.randint(config.min_states, config.max_states)
    state_names = [f"q{i}" for i in range(num_states)]

    # A spanning skeleton keeps every state reachable: each state j > 0 gets
    # one designated parent i < j whose transition must include an edge to j.
    children: Dict[int, List[int]] = {i: [] for i in range(num_states)}
    for j in range(1, num_states):
        children[rng.randrange(j)].append(j)

    headers: Dict[str, int] = {}
    total_bits = 0

    def declare(prefix: str, index: int, width: int) -> str:
        nonlocal total_bits
        header = f"{prefix}{index}"
        headers[header] = width
        total_bits += width
        return header

    states: Dict[str, State] = {}
    # Definite-assignment dataflow: ``incoming[j]`` is the intersection of
    # (headers definitely assigned entering i) ∪ (headers assigned in i)
    # over every recorded edge i -> j.  All state-to-state edges point
    # forward in index order (self-loops only re-run assignments, so they
    # cannot shrink the set), which lets the sets be completed for state i
    # before state i is built.
    incoming: Dict[int, set] = {}
    for i in range(num_states):
        definite = incoming.get(i, set())
        required = [state_names[j] for j in children[i]]
        # Goto can carry at most one required child edge.
        use_goto = len(required) <= 1 and rng.random() < config.goto_probability
        budget_left = max(1, config.max_total_bits - total_bits)

        ops: List[Op] = []
        if use_goto:
            width = min(
                rng.randint(config.min_header_bits, config.max_header_bits),
                budget_left,
            )
            selected = declare("h", i, max(1, width))
            ops.append(Extract(selected))
            if required:
                target = required[0]
            elif i == num_states - 1:
                target = ACCEPT
            else:
                target = rng.choice(state_names[i + 1 :] + [ACCEPT, REJECT])
            transition: Transition = Goto(target)
        else:
            extra = rng.randint(0, max(0, config.max_cases - len(required) - 1))
            num_cases = max(1, len(required) + extra)
            width = _select_width(rng, config, num_cases, budget_left)
            selected = declare("h", i, width)
            ops.append(Extract(selected))

            # Extended guard shapes, all gated so the rng is untouched when
            # the knobs sit at their 0.0 defaults.  A select needs at least
            # ``num_cases + 2`` representable values (spare for guard flips
            # plus the implicit reject), hence the minimum guard width.
            minimum_guard = max(2, (num_cases + 1).bit_length())
            guard_expr: Expr = HeaderRef(selected)
            guard_width = width
            if config.store_guard_probability > 0 and i > 0:
                earlier = [
                    h for h, w in headers.items()
                    if h != selected and w >= minimum_guard and h in definite
                ]
                if earlier and rng.random() < config.store_guard_probability:
                    guard_header = rng.choice(earlier)
                    guard_expr = HeaderRef(guard_header)
                    guard_width = headers[guard_header]
            if (config.lookahead_probability > 0
                    and guard_width > minimum_guard
                    and rng.random() < config.lookahead_probability):
                slice_width = rng.randint(minimum_guard, guard_width - 1)
                lo = rng.randint(0, guard_width - slice_width)
                guard_expr = Slice(guard_expr, lo, lo + slice_width - 1)
                guard_width = slice_width

            # Distinct exact values; the width guarantees at least two values
            # stay unused (one for guard flips, one for the implicit reject).
            values = rng.sample(range(1 << guard_width), num_cases)
            pool = state_names[i + 1 :] + [ACCEPT, REJECT]
            targets = list(required)
            while len(targets) < num_cases:
                targets.append(rng.choice(pool))
            rng.shuffle(targets)  # permutes, so required children stay present
            cases = [
                SelectCase((ExactPattern(Bits.from_int(value, guard_width)),), target)
                for value, target in zip(values, targets)
            ]
            if (config.loop_probability > 0
                    and rng.random() < config.loop_probability):
                # A bounded self-loop: retarget one case that carries no
                # required child edge back to this state.  Each pass through
                # the loop extracts >= 1 fresh bit, so runs stay finite.
                loopable = [
                    k for k, case in enumerate(cases)
                    if case.target not in required
                ]
                if loopable:
                    k = rng.choice(loopable)
                    cases[k] = SelectCase(cases[k].patterns, state_names[i])
            if rng.random() < config.wildcard_probability:
                cases.append(SelectCase((WILDCARD,), rng.choice(pool)))
            transition = Select((guard_expr,), tuple(cases))

        # Optional scratch extract *before* the selected header so the select
        # still examines the last extracted header.  Optional assignment to a
        # previously declared header (never the one being branched on).
        if rng.random() < config.second_extract_probability and total_bits < config.max_total_bits:
            scratch = declare("x", i, rng.randint(1, max(1, min(
                config.max_header_bits, config.max_total_bits - total_bits))))
            ops.insert(0, Extract(scratch))
        assignable = [h for h in headers if h != selected]
        if assignable and rng.random() < config.assign_probability:
            target_header = rng.choice(assignable)
            ops.append(Assign(
                target_header,
                BVLit(Bits.from_int(
                    rng.randrange(1 << headers[target_header]),
                    headers[target_header],
                )),
            ))

        states[state_names[i]] = State(state_names[i], tuple(ops), transition)

        # Record this state's contribution to its successors' definite sets.
        # (`_ensure_accept_reachable` below only retargets final edges, so
        # the edge set used here is final for state-to-state flow.)
        assigned = definite | {op.header for op in ops}
        if isinstance(transition, Goto):
            targets = [transition.target]
        else:
            targets = [case.target for case in transition.cases]
        for target in targets:
            if target in (ACCEPT, REJECT) or target == state_names[i]:
                continue
            j = state_names.index(target)
            incoming[j] = assigned if j not in incoming else incoming[j] & assigned

    _ensure_accept_reachable(states, state_names)

    automaton = P4Automaton(name, headers, states)
    check_automaton(automaton)
    return automaton, state_names[0]


def _ensure_accept_reachable(states: Dict[str, State], order: List[str]) -> None:
    """Rewrite final-only dead ends so every state can reach ``accept``.

    Walking in reverse topological order, a state that cannot reach accept
    can only have final targets (its state targets come later and are already
    fixed); pointing one of its edges at ``accept`` fixes it without touching
    the spanning skeleton, which only pins state-to-state edges.
    """
    reaches: Dict[str, bool] = {ACCEPT: True, REJECT: False}
    for name in reversed(order):
        state = states[name]
        transition = state.transition
        if isinstance(transition, Goto):
            if not reaches.get(transition.target, False):
                if transition.target in (ACCEPT, REJECT):
                    transition = Goto(ACCEPT)
                # A state target that cannot reach accept is impossible here:
                # later states are processed first and always end up reaching.
        else:
            targets = [case.target for case in transition.cases]
            if not any(reaches.get(target, False) for target in targets):
                cases = list(transition.cases)
                index = next(
                    (k for k, case in enumerate(cases)
                     if case.target in (ACCEPT, REJECT)),
                    0,
                )
                cases[index] = SelectCase(cases[index].patterns, ACCEPT)
                transition = Select(transition.exprs, tuple(cases))
        states[name] = State(state.name, state.ops, transition)
        reaches[name] = True
