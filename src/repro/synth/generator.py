"""Seeded generation of random well-typed P4 automata.

The generator draws *select cascades*: acyclic automata whose states appear
in a fixed topological order, each extracting one or two freshly declared
headers and then either jumping unconditionally or branching on the value of
the **last header extracted in that state**.  The shape is deliberately
restricted — it is the shape of every real parser in the scenario catalog —
and it buys three invariants the rest of :mod:`repro.synth` leans on:

* **well-typedness by construction** (and double-checked through
  :func:`repro.p4a.typing.check_automaton` before anything is returned);
* **store independence**: every header examined by a ``select`` is extracted
  in the same state, so acceptance depends only on the packet.  A concrete
  witness found under all-zero initial stores therefore refutes language
  equivalence outright;
* **direct packet control**: the bits feeding every branch are a known slice
  of the bits consumed by that state, which lets
  :func:`repro.synth.transforms.path_packets` enumerate one packet per
  control path without a solver.

Every draw is driven by a caller-supplied :class:`random.Random`, so a seed
fully determines the automaton; :class:`GeneratorConfig` bounds the number of
states, the per-header widths and the total extracted bits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..p4a.bitvec import Bits
from ..p4a.syntax import (
    ACCEPT,
    REJECT,
    Assign,
    BVLit,
    ExactPattern,
    Extract,
    Goto,
    HeaderRef,
    Op,
    P4Automaton,
    Select,
    SelectCase,
    State,
    Transition,
    WILDCARD,
)
from ..p4a.typing import check_automaton


class SynthesisError(RuntimeError):
    """Raised when synthesis cannot satisfy its own invariants."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape bounds for the generator.

    ``max_total_bits`` bounds the sum of all declared header widths — the
    knob that keeps symbolic checks of synthesized pairs in the
    milliseconds-to-seconds range.
    """

    min_states: int = 2
    max_states: int = 5
    min_header_bits: int = 2
    max_header_bits: int = 4
    #: Soft cap on the sum of declared header widths: scratch extracts stop
    #: once it is reached and goto headers shrink to fit; a select header may
    #: overshoot by at most its own (small) width when case counts force it.
    max_total_bits: int = 20
    max_cases: int = 3
    wildcard_probability: float = 0.5
    second_extract_probability: float = 0.25
    assign_probability: float = 0.25
    goto_probability: float = 0.3

    def __post_init__(self) -> None:
        if self.min_states < 1 or self.max_states < self.min_states:
            raise SynthesisError("invalid state bounds")
        if self.min_header_bits < 1 or self.max_header_bits < self.min_header_bits:
            raise SynthesisError("invalid header-width bounds")
        if self.max_cases < 1:
            raise SynthesisError("max_cases must be >= 1")


#: Default configuration: mini-sized automata (seconds with the pure-Python
#: solver even across hundreds of pairs).
MINI_CONFIG = GeneratorConfig()

#: Larger automata for the ``full``-tagged synthetic scenarios.
FULL_CONFIG = GeneratorConfig(
    min_states=5,
    max_states=8,
    min_header_bits=2,
    max_header_bits=6,
    max_total_bits=40,
    max_cases=4,
)


def _select_width(
    rng: random.Random, config: GeneratorConfig, required: int, budget: int
) -> int:
    """A width for a branched-on header: within budget where possible, but
    always with room for ``required`` exact cases, one spare value (guard
    flips need a fresh value) and the implicit-reject fall-through."""
    minimum = max(2, (required + 1).bit_length())
    drawn = rng.randint(config.min_header_bits, config.max_header_bits)
    return max(minimum, min(drawn, budget))


def generate_automaton(
    rng: random.Random,
    config: GeneratorConfig = MINI_CONFIG,
    name: str = "synth",
) -> Tuple[P4Automaton, str]:
    """Draw one well-typed select cascade; returns ``(automaton, start)``.

    Guarantees beyond well-typedness: state ``q0`` is the start, every state
    is reachable from it, every state can reach ``accept``, every ``select``
    examines the header extracted last in its own state with pairwise
    distinct exact patterns, and at most ``2**width - 2`` cases ever occupy a
    ``width``-bit select (so a fresh non-matching value always exists).
    """
    num_states = rng.randint(config.min_states, config.max_states)
    state_names = [f"q{i}" for i in range(num_states)]

    # A spanning skeleton keeps every state reachable: each state j > 0 gets
    # one designated parent i < j whose transition must include an edge to j.
    children: Dict[int, List[int]] = {i: [] for i in range(num_states)}
    for j in range(1, num_states):
        children[rng.randrange(j)].append(j)

    headers: Dict[str, int] = {}
    total_bits = 0

    def declare(prefix: str, index: int, width: int) -> str:
        nonlocal total_bits
        header = f"{prefix}{index}"
        headers[header] = width
        total_bits += width
        return header

    states: Dict[str, State] = {}
    for i in range(num_states):
        required = [state_names[j] for j in children[i]]
        # Goto can carry at most one required child edge.
        use_goto = len(required) <= 1 and rng.random() < config.goto_probability
        budget_left = max(1, config.max_total_bits - total_bits)

        ops: List[Op] = []
        if use_goto:
            width = min(
                rng.randint(config.min_header_bits, config.max_header_bits),
                budget_left,
            )
            selected = declare("h", i, max(1, width))
            ops.append(Extract(selected))
            if required:
                target = required[0]
            elif i == num_states - 1:
                target = ACCEPT
            else:
                target = rng.choice(state_names[i + 1 :] + [ACCEPT, REJECT])
            transition: Transition = Goto(target)
        else:
            extra = rng.randint(0, max(0, config.max_cases - len(required) - 1))
            num_cases = max(1, len(required) + extra)
            width = _select_width(rng, config, num_cases, budget_left)
            selected = declare("h", i, width)
            ops.append(Extract(selected))

            # Distinct exact values; the width guarantees at least two values
            # stay unused (one for guard flips, one for the implicit reject).
            values = rng.sample(range(1 << width), num_cases)
            pool = state_names[i + 1 :] + [ACCEPT, REJECT]
            targets = list(required)
            while len(targets) < num_cases:
                targets.append(rng.choice(pool))
            rng.shuffle(targets)  # permutes, so required children stay present
            cases = [
                SelectCase((ExactPattern(Bits.from_int(value, width)),), target)
                for value, target in zip(values, targets)
            ]
            if rng.random() < config.wildcard_probability:
                cases.append(SelectCase((WILDCARD,), rng.choice(pool)))
            transition = Select((HeaderRef(selected),), tuple(cases))

        # Optional scratch extract *before* the selected header so the select
        # still examines the last extracted header.  Optional assignment to a
        # previously declared header (never the one being branched on).
        if rng.random() < config.second_extract_probability and total_bits < config.max_total_bits:
            scratch = declare("x", i, rng.randint(1, max(1, min(
                config.max_header_bits, config.max_total_bits - total_bits))))
            ops.insert(0, Extract(scratch))
        assignable = [h for h in headers if h != selected]
        if assignable and rng.random() < config.assign_probability:
            target_header = rng.choice(assignable)
            ops.append(Assign(
                target_header,
                BVLit(Bits.from_int(
                    rng.randrange(1 << headers[target_header]),
                    headers[target_header],
                )),
            ))

        states[state_names[i]] = State(state_names[i], tuple(ops), transition)

    _ensure_accept_reachable(states, state_names)

    automaton = P4Automaton(name, headers, states)
    check_automaton(automaton)
    return automaton, state_names[0]


def _ensure_accept_reachable(states: Dict[str, State], order: List[str]) -> None:
    """Rewrite final-only dead ends so every state can reach ``accept``.

    Walking in reverse topological order, a state that cannot reach accept
    can only have final targets (its state targets come later and are already
    fixed); pointing one of its edges at ``accept`` fixes it without touching
    the spanning skeleton, which only pins state-to-state edges.
    """
    reaches: Dict[str, bool] = {ACCEPT: True, REJECT: False}
    for name in reversed(order):
        state = states[name]
        transition = state.transition
        if isinstance(transition, Goto):
            if not reaches.get(transition.target, False):
                if transition.target in (ACCEPT, REJECT):
                    transition = Goto(ACCEPT)
                # A state target that cannot reach accept is impossible here:
                # later states are processed first and always end up reaching.
        else:
            targets = [case.target for case in transition.cases]
            if not any(reaches.get(target, False) for target in targets):
                cases = list(transition.cases)
                index = next(
                    (k for k, case in enumerate(cases)
                     if case.target in (ACCEPT, REJECT)),
                    0,
                )
                cases[index] = SelectCase(cases[index].patterns, ACCEPT)
                transition = Select(transition.exprs, tuple(cases))
        states[name] = State(state.name, state.ops, transition)
        reaches[name] = True
