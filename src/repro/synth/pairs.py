"""Self-labeling synthesized automaton pairs.

:func:`synthesize_pair` turns one seed into one :class:`SynthesizedPair`: a
generated base automaton on the left, a transformed copy on the right, and a
ground-truth verdict that is correct by construction —

* ``equivalent`` pairs apply only equivalence-preserving rewrites
  (:data:`~repro.synth.transforms.EQUIVALENCE_TRANSFORMS`);
* ``not_equivalent`` pairs additionally apply one verdict-breaking mutation
  and carry the concrete witness packet that confirmed the break (replayable
  through :func:`repro.p4a.semantics.accepts` with default stores).

Everything is a pure function of ``(seed, config)``: the same call returns
structurally equal automata every time, which is what lets the ``synthetic``
scenario-registry rows, the ``repro synth`` CLI and the CI smoke agree on
what they checked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..p4a.bitvec import Bits
from ..p4a.semantics import accepts
from ..p4a.syntax import P4Automaton
from .generator import (
    CAMPAIGN_FULL_CONFIG,
    CAMPAIGN_MINI_CONFIG,
    FULL_CONFIG,
    MINI_CONFIG,
    GeneratorConfig,
    SynthesisError,
    generate_automaton,
)
from .transforms import (
    TransformStep,
    apply_breaking_mutation,
    apply_equivalence_chain,
)

#: Verdict labels, matching the scenario registry's vocabulary.
EQUIVALENT = "equivalent"
NOT_EQUIVALENT = "not_equivalent"


@dataclass(frozen=True)
class SynthesizedPair:
    """One synthesized workload with its ground-truth label."""

    name: str
    seed: int
    verdict: str
    left: P4Automaton
    left_start: str
    right: P4Automaton
    right_start: str
    #: Names of the applied rewrites, mutation (if any) last.
    transforms: Tuple[str, ...]
    #: A packet accepted by exactly one side; ``None`` on equivalent pairs.
    witness: Optional[Bits]
    #: The replayable ``(name, step_seed)`` chain behind ``transforms``:
    #: :func:`repro.synth.transforms.replay_chain` applied to ``left`` from
    #: ``left_start`` re-derives ``right`` exactly.  Default kept for
    #: hand-built pairs in tests.
    chain: Tuple[TransformStep, ...] = ()

    @property
    def expected_equivalent(self) -> bool:
        return self.verdict == EQUIVALENT

    def automata(self) -> Tuple[P4Automaton, str, P4Automaton, str]:
        return self.left, self.left_start, self.right, self.right_start

    def replay_witness(self) -> bool:
        """Re-run the stored witness; ``True`` iff it still diverges."""
        if self.witness is None:
            return False
        return (
            accepts(self.left, self.left_start, self.witness)
            != accepts(self.right, self.right_start, self.witness)
        )

    def structure(self) -> Tuple[int, int]:
        """``(states, header_bits)`` summed over both sides."""
        return (
            len(self.left.states) + len(self.right.states),
            self.left.total_header_bits() + self.right.total_header_bits(),
        )

    def as_dict(self) -> Dict[str, object]:
        states, header_bits = self.structure()
        return {
            "name": self.name,
            "seed": self.seed,
            "verdict": self.verdict,
            "states": states,
            "header_bits": header_bits,
            "transforms": list(self.transforms),
            "witness": self.witness.to_bitstring() if self.witness is not None else None,
        }


def synthesize_pair(
    seed: int,
    config: GeneratorConfig = MINI_CONFIG,
    verdict: Optional[str] = None,
    max_rewrites: int = 4,
) -> SynthesizedPair:
    """One deterministic pair from one seed.

    ``verdict`` pins the label; left unset, the seed decides.  Broken pairs
    regenerate from a derived seed until a mutation is confirmed by a
    concrete witness, so the label is sound whichever mutation lands.
    """
    rng = random.Random(seed)
    if verdict is None:
        verdict = EQUIVALENT if rng.random() < 0.5 else NOT_EQUIVALENT
    if verdict not in (EQUIVALENT, NOT_EQUIVALENT):
        raise SynthesisError(f"unknown verdict {verdict!r}")

    for attempt in range(32):
        base, start = generate_automaton(rng, config, name=f"synth{seed}")
        if verdict == EQUIVALENT:
            rewrites = rng.randint(1, max_rewrites)
            right, right_start, applied = apply_equivalence_chain(
                base, start, rng, rewrites
            )
            right.name = f"synth{seed}_rw"
            return SynthesizedPair(
                name=f"pair{seed}",
                seed=seed,
                verdict=EQUIVALENT,
                left=base,
                left_start=start,
                right=right,
                right_start=right_start,
                transforms=tuple(name for name, _ in applied),
                witness=None,
                chain=applied,
            )
        # Broken pair: a few camouflage rewrites, then one confirmed mutation.
        rewrites = rng.randint(0, max(0, max_rewrites - 2))
        staged, staged_start, applied = apply_equivalence_chain(
            base, start, rng, rewrites
        )
        broken = apply_breaking_mutation(base, start, staged, staged_start, rng)
        if broken is None:
            continue  # vanishingly rare: every mutation attempt was latent
        mutant, mutation, witness = broken
        mutant.name = f"synth{seed}_mut"
        return SynthesizedPair(
            name=f"pair{seed}",
            seed=seed,
            verdict=NOT_EQUIVALENT,
            left=base,
            left_start=start,
            right=mutant,
            right_start=staged_start,
            transforms=tuple(name for name, _ in applied) + (mutation[0],),
            witness=witness,
            chain=applied + (mutation,),
        )
    raise SynthesisError(
        f"seed {seed}: no confirmable breaking mutation in 32 generations"
    )


def synthesize_batch(
    count: int,
    seed: int,
    config: GeneratorConfig = MINI_CONFIG,
) -> List[SynthesizedPair]:
    """``count`` deterministic pairs, alternating expected verdicts.

    Pair ``i`` uses the derived seed ``seed + i`` with a pinned verdict
    (even = equivalent, odd = broken), so growing ``count`` extends a batch
    without changing the pairs already in it.
    """
    if count < 0:
        raise SynthesisError(f"count must be >= 0, got {count}")
    return [
        synthesize_pair(
            seed + index,
            config=config,
            verdict=EQUIVALENT if index % 2 == 0 else NOT_EQUIVALENT,
        )
        for index in range(count)
    ]


def config_for_size(size: str) -> GeneratorConfig:
    """The generator configuration backing a registry size tag."""
    if size == "mini":
        return MINI_CONFIG
    if size == "full":
        return FULL_CONFIG
    raise SynthesisError(f"unknown size {size!r}; known: mini, full")


def campaign_config_for_size(size: str) -> GeneratorConfig:
    """The extended-shape campaign configuration for a registry size tag.

    Same state/width envelope as :func:`config_for_size`, plus bounded
    self-loops, slice lookahead and store-carried guards.  Deliberately not
    used by the pinned ``synthetic`` scenarios, whose shapes must stay
    seed-stable.
    """
    if size == "mini":
        return CAMPAIGN_MINI_CONFIG
    if size == "full":
        return CAMPAIGN_FULL_CONFIG
    raise SynthesisError(f"unknown size {size!r}; known: mini, full")
