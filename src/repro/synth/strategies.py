"""Hypothesis strategies over the synthesis subsystem.

The strategies wrap the seeded generator: Hypothesis draws a seed (and
optionally shape bounds) and the generator turns it into a well-typed
automaton or a self-labeled pair.  Shrinking therefore happens in seed/bound
space — Hypothesis minimizes towards small seeds and tight shapes rather
than structurally minimal automata, which is the standard trade-off for
generator-backed strategies and keeps every drawn value inside the
generator's invariants (see :mod:`repro.synth.generator`).

A failing example always prints as a ``(seed, config)`` pair, so
``synthesize_pair(seed, config)`` reproduces it outside Hypothesis.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from hypothesis import strategies as st

from ..p4a.syntax import P4Automaton
from .generator import MINI_CONFIG, GeneratorConfig, generate_automaton
from .pairs import EQUIVALENT, NOT_EQUIVALENT, SynthesizedPair, synthesize_pair

#: Seeds stay small so shrunk counterexamples are easy to quote in a test.
seeds = st.integers(min_value=0, max_value=2**20)


@st.composite
def generator_configs(draw) -> GeneratorConfig:
    """Shape bounds within the mini envelope (checks stay fast)."""
    min_states = draw(st.integers(1, 3))
    min_bits = draw(st.integers(1, 2))
    return GeneratorConfig(
        min_states=min_states,
        max_states=draw(st.integers(min_states, 5)),
        min_header_bits=min_bits,
        max_header_bits=draw(st.integers(max(2, min_bits), 4)),
        max_total_bits=draw(st.integers(8, 20)),
        max_cases=draw(st.integers(1, 3)),
    )


@st.composite
def automata(
    draw, config: Optional[GeneratorConfig] = None
) -> Tuple[P4Automaton, str]:
    """A well-typed select cascade as ``(automaton, start)``."""
    if config is None:
        config = draw(generator_configs())
    seed = draw(seeds)
    return generate_automaton(random.Random(seed), config)


@st.composite
def synthesized_pairs(
    draw,
    verdict: Optional[str] = None,
    config: GeneratorConfig = MINI_CONFIG,
) -> SynthesizedPair:
    """A self-labeled pair; ``verdict`` pins the label, ``None`` mixes both."""
    if verdict is None:
        verdict = draw(st.sampled_from((EQUIVALENT, NOT_EQUIVALENT)))
    return synthesize_pair(draw(seeds), config=config, verdict=verdict)


def equivalent_pairs(config: GeneratorConfig = MINI_CONFIG):
    """Pairs whose ground truth is ``equivalent`` (by construction)."""
    return synthesized_pairs(verdict=EQUIVALENT, config=config)


def broken_pairs(config: GeneratorConfig = MINI_CONFIG):
    """Pairs whose ground truth is ``not_equivalent`` (witness-confirmed)."""
    return synthesized_pairs(verdict=NOT_EQUIVALENT, config=config)
